//! Bounded reorder tolerance for almost-sorted event streams.
//!
//! Merged multi-source traces are rarely delivered in a perfect total
//! order: network transports and per-node buffers let an event arrive a
//! few positions late. The streaming analyzer, however, requires its
//! input sorted by [`Event::order_key`]. A [`ReorderBuffer`] sits between
//! the two: it holds arriving events in a min-heap and releases one only
//! once the sequence-number high-water mark has advanced past the event
//! by the configured window — so any event at most `window` sequence
//! numbers late is re-sorted into place, and anything later than that is
//! rejected and counted rather than silently corrupting the order.
//!
//! The buffer's state is snapshottable ([`ReorderBuffer::snapshot`]) so a
//! checkpointed analysis can persist the not-yet-released tail and
//! restore it on resume.

use crate::event::Event;
use crate::ids::ProcessorId;
use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A heap entry ordered by [`Event::order_key`].
#[derive(Debug, Clone, PartialEq, Eq)]
struct Keyed(Event);

impl PartialOrd for Keyed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Keyed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.order_key().cmp(&other.0.order_key())
    }
}

/// A bounded buffer that re-sorts events arriving slightly out of order.
///
/// `window` is measured in sequence numbers: an event is held until some
/// admitted event's `seq` exceeds it by at least the window, at which
/// point no admissible future event can sort before it and it is safe to
/// release. Events that arrive *too* late — ordering strictly before the
/// last released event — are rejected and counted ([`rejected`]); a
/// window of `0` releases everything immediately (pass-through).
///
/// Peak memory is bounded by how out-of-order the input actually is, not
/// by the window: a sorted stream through any window holds at most the
/// events whose seq is within `window` of the high-water mark.
///
/// [`rejected`]: ReorderBuffer::rejected
#[derive(Debug)]
pub struct ReorderBuffer {
    window: u64,
    heap: BinaryHeap<Reverse<Keyed>>,
    /// Highest sequence number admitted so far.
    max_seq: Option<u64>,
    /// Order key of the last released event; admissions must not sort
    /// before it.
    released: Option<(Time, u64, ProcessorId)>,
    rejected: u64,
    reordered: u64,
}

impl ReorderBuffer {
    /// A buffer tolerating events up to `window` sequence numbers late.
    pub fn new(window: u64) -> Self {
        ReorderBuffer {
            window,
            heap: BinaryHeap::new(),
            max_seq: None,
            released: None,
            rejected: 0,
            reordered: 0,
        }
    }

    /// The configured sequence window.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Offers one event. Returns `false` — and counts the event as
    /// rejected — if it arrived beyond the tolerance: its order key
    /// sorts strictly before an event already released.
    pub fn push(&mut self, event: Event) -> bool {
        if let Some(released) = self.released {
            if event.order_key() < released {
                self.rejected += 1;
                return false;
            }
        }
        if self.max_seq.is_some_and(|m| event.seq < m) {
            self.reordered += 1;
        }
        self.max_seq = Some(self.max_seq.map_or(event.seq, |m| m.max(event.seq)));
        self.heap.push(Reverse(Keyed(event)));
        true
    }

    /// Releases the next event whose sequence number the high-water mark
    /// has passed by at least the window, or `None` if every buffered
    /// event might still be overtaken. Call repeatedly after each
    /// [`push`](ReorderBuffer::push) to drain whatever has become safe.
    pub fn pop_ready(&mut self) -> Option<Event> {
        let max = self.max_seq?;
        let ready = {
            let Reverse(Keyed(head)) = self.heap.peek()?;
            head.seq.saturating_add(self.window) <= max
        };
        if !ready {
            return None;
        }
        self.release()
    }

    /// Releases the buffer's minimum unconditionally — the end-of-stream
    /// drain. Alternate with `None`-checks: `while let Some(e) =
    /// buf.pop_flush() { ... }` empties the buffer in order.
    pub fn pop_flush(&mut self) -> Option<Event> {
        self.release()
    }

    fn release(&mut self) -> Option<Event> {
        let Reverse(Keyed(event)) = self.heap.pop()?;
        self.released = Some(event.order_key());
        Some(event)
    }

    /// Events currently held back.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Events rejected for arriving beyond the window.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Events that arrived out of order but within the window and were
    /// re-sorted into place.
    pub fn reordered(&self) -> u64 {
        self.reordered
    }

    /// Serializable image of the buffer's full state, for checkpoints.
    pub fn snapshot(&self) -> ReorderSnapshot {
        let mut buffered: Vec<Event> = self.heap.iter().map(|Reverse(Keyed(e))| *e).collect();
        buffered.sort_by_key(Event::order_key);
        ReorderSnapshot {
            window: self.window,
            buffered,
            max_seq: self.max_seq,
            released: self.released,
            rejected: self.rejected,
            reordered: self.reordered,
        }
    }

    /// Rebuilds a buffer from a [`ReorderBuffer::snapshot`] image.
    pub fn restore(snapshot: &ReorderSnapshot) -> Self {
        ReorderBuffer {
            window: snapshot.window,
            heap: snapshot
                .buffered
                .iter()
                .map(|e| Reverse(Keyed(*e)))
                .collect(),
            max_seq: snapshot.max_seq,
            released: snapshot.released,
            rejected: snapshot.rejected,
            reordered: snapshot.reordered,
        }
    }
}

/// Serializable image of a [`ReorderBuffer`], embedded in analysis
/// checkpoints so a resumed run restores the held-back tail exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReorderSnapshot {
    /// The configured sequence window.
    pub window: u64,
    /// Held-back events, sorted by order key.
    pub buffered: Vec<Event>,
    /// Highest sequence number admitted so far.
    pub max_seq: Option<u64>,
    /// Order key of the last released event.
    pub released: Option<(Time, u64, ProcessorId)>,
    /// Events rejected for arriving beyond the window.
    pub rejected: u64,
    /// Events re-sorted within the window.
    pub reordered: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::ids::StatementId;

    fn ev(seq: u64) -> Event {
        Event::new(
            Time::from_nanos(seq * 10),
            ProcessorId(0),
            seq,
            EventKind::Statement {
                stmt: StatementId(seq as u32),
            },
        )
    }

    /// Drives `input` through a buffer, draining greedily, then flushes.
    fn run(window: u64, input: &[u64]) -> (Vec<u64>, u64, u64) {
        let mut buf = ReorderBuffer::new(window);
        let mut out = Vec::new();
        for &seq in input {
            buf.push(ev(seq));
            while let Some(e) = buf.pop_ready() {
                out.push(e.seq);
            }
        }
        while let Some(e) = buf.pop_flush() {
            out.push(e.seq);
        }
        (out, buf.rejected(), buf.reordered())
    }

    #[test]
    fn sorted_input_passes_through_unchanged() {
        let input: Vec<u64> = (0..20).collect();
        let (out, rejected, reordered) = run(4, &input);
        assert_eq!(out, input);
        assert_eq!((rejected, reordered), (0, 0));
    }

    #[test]
    fn late_events_within_the_window_are_resorted() {
        let (out, rejected, reordered) = run(4, &[0, 1, 3, 2, 4, 6, 5, 7]);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(rejected, 0);
        assert_eq!(reordered, 2);
    }

    #[test]
    fn events_beyond_the_window_are_rejected_and_counted() {
        // Seq 0 arrives after the high-water mark reached 10 with a
        // window of 2, so 0..=8 were already released.
        let (out, rejected, _) = run(2, &[3, 4, 5, 6, 7, 8, 9, 10, 0]);
        assert_eq!(out, vec![3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(rejected, 1);
    }

    #[test]
    fn window_zero_is_pass_through() {
        let mut buf = ReorderBuffer::new(0);
        buf.push(ev(5));
        assert_eq!(buf.pop_ready().map(|e| e.seq), Some(5));
        assert_eq!(buf.pop_ready(), None);
    }

    #[test]
    fn events_are_held_until_the_watermark_passes() {
        let mut buf = ReorderBuffer::new(8);
        buf.push(ev(0));
        // The watermark (0) has not passed 0 + 8 yet.
        assert_eq!(buf.pop_ready(), None);
        buf.push(ev(8));
        assert_eq!(buf.pop_ready().map(|e| e.seq), Some(0));
        assert_eq!(buf.pop_ready(), None);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn snapshot_round_trips_mid_stream() {
        let mut buf = ReorderBuffer::new(4);
        let mut out = Vec::new();
        for seq in [0, 2, 1, 5, 7, 6, 3] {
            buf.push(ev(seq));
            while let Some(e) = buf.pop_ready() {
                out.push(e.seq);
            }
        }
        let snap = buf.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: ReorderSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);

        let mut restored = ReorderBuffer::restore(&back);
        let mut direct_tail = Vec::new();
        while let Some(e) = buf.pop_flush() {
            direct_tail.push(e.seq);
        }
        let mut restored_tail = Vec::new();
        while let Some(e) = restored.pop_flush() {
            restored_tail.push(e.seq);
        }
        assert_eq!(direct_tail, restored_tail);
        assert_eq!(buf.rejected(), restored.rejected());
        assert_eq!(buf.reordered(), restored.reordered());
    }
}
