//! Trace events.
//!
//! An event marks the *completion* of one observable action on one
//! processor, stamped with the time at which the recording instrumentation
//! fired. Synchronization actions follow the paper's instrumentation scheme
//! (§4.2.2): an `advance` is recorded after the advance operation completes;
//! an `await` produces **two** events, `awaitB` at entry and `awaitE` after
//! the awaited advance has occurred.

use crate::ids::{
    BarrierId, LockId, LoopId, ProcessorId, SemId, StatementId, SyncTag, SyncVarId, TaskId,
};
use crate::time::Time;
use core::fmt;
use serde::{Deserialize, Serialize};

/// The longest pattern (in events) a [`EventKind::Repeat`] record may
/// describe. The suppressor never looks further back than this, so an
/// expander keeping this many logical events of per-processor history
/// can always resolve a record's pattern.
pub const REPEAT_MAX_PATTERN: usize = 16;

/// What an event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variant fields are named after the id types they hold
pub enum EventKind {
    /// Start of the traced program region on the emitting processor.
    ProgramBegin,
    /// End of the traced program region on the emitting processor.
    ProgramEnd,
    /// Entry into a loop construct (emitted once, by the dispatching
    /// processor).
    LoopBegin { loop_id: LoopId },
    /// Exit from a loop construct, after its terminating barrier.
    LoopEnd { loop_id: LoopId },
    /// Start of one loop iteration on the executing processor.
    IterationBegin { loop_id: LoopId, iter: u64 },
    /// End of one loop iteration on the executing processor.
    IterationEnd { loop_id: LoopId, iter: u64 },
    /// Execution of one (instrumented) program statement.
    Statement { stmt: StatementId },
    /// `advance(A, i)` completed: tag `i` is now marked in `A`.
    Advance { var: SyncVarId, tag: SyncTag },
    /// `await(A, i)` began (the paper's `awaitB`).
    AwaitBegin { var: SyncVarId, tag: SyncTag },
    /// `await(A, i)` completed (the paper's `awaitE`): tag `i` had been
    /// advanced, possibly after a wait.
    AwaitEnd { var: SyncVarId, tag: SyncTag },
    /// Arrival at a barrier.
    BarrierEnter { barrier: BarrierId },
    /// Release from a barrier (all participants arrived).
    BarrierExit { barrier: BarrierId },
    /// Lock acquisition completed: the emitting processor holds `lock`.
    /// The k-th acquire of a lock (trace order) is enabled by its
    /// (k-1)-th release, so a blocked acquire is approximated like an
    /// await whose matching release plays the advance's role.
    LockAcquire { lock: LockId },
    /// Lock release completed. Releases are recorded *before* the lock is
    /// actually surrendered, so an acquire's enabling release always
    /// precedes it in the measured total order.
    LockRelease { lock: LockId },
    /// Semaphore P (decrement) completed on `sem`. The k-th P (0-indexed,
    /// arrival order) is enabled by the k-th V; a semaphore's initial
    /// permits are traced as leading V events.
    SemAcquire { sem: SemId },
    /// Semaphore V (increment) completed on `sem`, recorded before the
    /// permit becomes visible to waiters.
    SemRelease { sem: SemId },
    /// Task-episode fork marker. Each episode carries two forks: the
    /// first (arrival order) is the parent's spawn, the second is the
    /// child's begin, causally anchored to the spawn.
    TaskFork { task: TaskId },
    /// Task-episode join marker. The first join (arrival order) is the
    /// child's end, the second is the parent's join-return, which blocks
    /// on the child's end like an await on an advance.
    TaskJoin { task: TaskId },
    /// A counted run-length record standing in for `len * count`
    /// suppressed events on the carrying processor (see QUERIES.md).
    ///
    /// The pattern is the `len` logical events that immediately precede
    /// this record on the same processor; occurrence `r` (1..=count) at
    /// pattern position `j` reproduces pattern event `j` with `time +=
    /// r*dt_ns`, `seq += r*dseq`, and its integer field (iteration number
    /// or sync tag) shifted by `r*dfield`. The record's own `(time, seq)`
    /// are those of the first suppressed event (pattern position 0 at
    /// `r = 1`), so the record occupies exactly that event's slot in the
    /// stream's total order.
    Repeat {
        /// Pattern length in events.
        len: u32,
        /// Number of suppressed pattern occurrences.
        count: u32,
        /// Per-occurrence time stride, nanoseconds.
        dt_ns: u64,
        /// Per-occurrence sequence-number stride.
        dseq: u64,
        /// Per-occurrence shift of each event's integer field.
        dfield: i64,
    },
}

impl EventKind {
    /// True for the three advance/await synchronization kinds.
    #[inline]
    pub fn is_sync(&self) -> bool {
        matches!(
            self,
            EventKind::Advance { .. } | EventKind::AwaitBegin { .. } | EventKind::AwaitEnd { .. }
        )
    }

    /// True for barrier kinds.
    #[inline]
    pub fn is_barrier(&self) -> bool {
        matches!(
            self,
            EventKind::BarrierEnter { .. } | EventKind::BarrierExit { .. }
        )
    }

    /// True for lock acquire/release kinds.
    #[inline]
    pub fn is_lock(&self) -> bool {
        matches!(
            self,
            EventKind::LockAcquire { .. } | EventKind::LockRelease { .. }
        )
    }

    /// True for semaphore P/V kinds.
    #[inline]
    pub fn is_sem(&self) -> bool {
        matches!(
            self,
            EventKind::SemAcquire { .. } | EventKind::SemRelease { .. }
        )
    }

    /// True for fork/join task-episode kinds.
    #[inline]
    pub fn is_task(&self) -> bool {
        matches!(
            self,
            EventKind::TaskFork { .. } | EventKind::TaskJoin { .. }
        )
    }

    /// True for every lock/semaphore/task episode kind — the sync-episode
    /// families added on top of the paper's advance/await vocabulary.
    #[inline]
    pub fn is_episode(&self) -> bool {
        self.is_lock() || self.is_sem() || self.is_task()
    }

    /// The lock this event touches, if any.
    #[inline]
    pub fn lock_id(&self) -> Option<LockId> {
        match self {
            EventKind::LockAcquire { lock } | EventKind::LockRelease { lock } => Some(*lock),
            _ => None,
        }
    }

    /// The semaphore this event touches, if any.
    #[inline]
    pub fn sem_id(&self) -> Option<SemId> {
        match self {
            EventKind::SemAcquire { sem } | EventKind::SemRelease { sem } => Some(*sem),
            _ => None,
        }
    }

    /// The task episode this event belongs to, if any.
    #[inline]
    pub fn task_id(&self) -> Option<TaskId> {
        match self {
            EventKind::TaskFork { task } | EventKind::TaskJoin { task } => Some(*task),
            _ => None,
        }
    }

    /// True for structural markers (program/loop/iteration boundaries).
    #[inline]
    pub fn is_marker(&self) -> bool {
        matches!(
            self,
            EventKind::ProgramBegin
                | EventKind::ProgramEnd
                | EventKind::LoopBegin { .. }
                | EventKind::LoopEnd { .. }
                | EventKind::IterationBegin { .. }
                | EventKind::IterationEnd { .. }
        )
    }

    /// The synchronization variable this event touches, if any.
    #[inline]
    pub fn sync_var(&self) -> Option<SyncVarId> {
        match self {
            EventKind::Advance { var, .. }
            | EventKind::AwaitBegin { var, .. }
            | EventKind::AwaitEnd { var, .. } => Some(*var),
            _ => None,
        }
    }

    /// The synchronization tag this event carries, if any.
    #[inline]
    pub fn sync_tag(&self) -> Option<SyncTag> {
        match self {
            EventKind::Advance { tag, .. }
            | EventKind::AwaitBegin { tag, .. }
            | EventKind::AwaitEnd { tag, .. } => Some(*tag),
            _ => None,
        }
    }

    /// A short mnemonic for table/debug output.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            EventKind::ProgramBegin => "progB",
            EventKind::ProgramEnd => "progE",
            EventKind::LoopBegin { .. } => "loopB",
            EventKind::LoopEnd { .. } => "loopE",
            EventKind::IterationBegin { .. } => "iterB",
            EventKind::IterationEnd { .. } => "iterE",
            EventKind::Statement { .. } => "stmt",
            EventKind::Advance { .. } => "advance",
            EventKind::AwaitBegin { .. } => "awaitB",
            EventKind::AwaitEnd { .. } => "awaitE",
            EventKind::BarrierEnter { .. } => "barEnter",
            EventKind::BarrierExit { .. } => "barExit",
            EventKind::LockAcquire { .. } => "lockA",
            EventKind::LockRelease { .. } => "lockR",
            EventKind::SemAcquire { .. } => "semP",
            EventKind::SemRelease { .. } => "semV",
            EventKind::TaskFork { .. } => "taskF",
            EventKind::TaskJoin { .. } => "taskJ",
            EventKind::Repeat { .. } => "repeat",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::ProgramBegin | EventKind::ProgramEnd => write!(f, "{}", self.mnemonic()),
            EventKind::LoopBegin { loop_id } | EventKind::LoopEnd { loop_id } => {
                write!(f, "{}({loop_id})", self.mnemonic())
            }
            EventKind::IterationBegin { loop_id, iter }
            | EventKind::IterationEnd { loop_id, iter } => {
                write!(f, "{}({loop_id},i{iter})", self.mnemonic())
            }
            EventKind::Statement { stmt } => write!(f, "stmt({stmt})"),
            EventKind::Advance { var, tag }
            | EventKind::AwaitBegin { var, tag }
            | EventKind::AwaitEnd { var, tag } => {
                write!(f, "{}({var},{tag})", self.mnemonic())
            }
            EventKind::BarrierEnter { barrier } | EventKind::BarrierExit { barrier } => {
                write!(f, "{}({barrier})", self.mnemonic())
            }
            EventKind::LockAcquire { lock } | EventKind::LockRelease { lock } => {
                write!(f, "{}({lock})", self.mnemonic())
            }
            EventKind::SemAcquire { sem } | EventKind::SemRelease { sem } => {
                write!(f, "{}({sem})", self.mnemonic())
            }
            EventKind::TaskFork { task } | EventKind::TaskJoin { task } => {
                write!(f, "{}({task})", self.mnemonic())
            }
            EventKind::Repeat {
                len,
                count,
                dt_ns,
                dseq,
                dfield,
            } => {
                write!(f, "repeat({len}x{count},dt{dt_ns},ds{dseq},df{dfield})")
            }
        }
    }
}

/// One trace event.
///
/// `seq` is a global emission sequence number assigned by the producer. It
/// provides a stable total-order tie-break for events with equal timestamps
/// and makes analysis deterministic; it carries no semantic meaning beyond
/// that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Timestamp (measured or approximated, depending on which trace this
    /// event belongs to).
    pub time: Time,
    /// The processor that emitted the event.
    pub proc: ProcessorId,
    /// Producer-assigned global sequence number (total-order tie-break).
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Creates an event; `seq` is usually assigned by [`crate::Trace`]
    /// builders.
    pub fn new(time: Time, proc: ProcessorId, seq: u64, kind: EventKind) -> Self {
        Event {
            time,
            proc,
            seq,
            kind,
        }
    }

    /// Reproduces this event shifted by `r` repeat-record strides: time
    /// advances by `r*dt_ns`, the sequence number by `r*dseq`, and the
    /// event's integer field (iteration number or synchronization tag),
    /// when it has one, by `r*dfield`. Lock/semaphore/task object ids are
    /// identities, not progressing counters, and never shift — a repeated
    /// lock pattern re-touches the same lock. All arithmetic wraps; the
    /// suppressor and the expander both use this exact function, which
    /// is what makes suppress-then-expand an identity.
    pub fn repeat_shifted(&self, r: u64, dt_ns: u64, dseq: u64, dfield: i64) -> Event {
        let df = (r as i64).wrapping_mul(dfield);
        let kind = match self.kind {
            EventKind::IterationBegin { loop_id, iter } => EventKind::IterationBegin {
                loop_id,
                iter: iter.wrapping_add(df as u64),
            },
            EventKind::IterationEnd { loop_id, iter } => EventKind::IterationEnd {
                loop_id,
                iter: iter.wrapping_add(df as u64),
            },
            EventKind::Advance { var, tag } => EventKind::Advance {
                var,
                tag: SyncTag(tag.0.wrapping_add(df)),
            },
            EventKind::AwaitBegin { var, tag } => EventKind::AwaitBegin {
                var,
                tag: SyncTag(tag.0.wrapping_add(df)),
            },
            EventKind::AwaitEnd { var, tag } => EventKind::AwaitEnd {
                var,
                tag: SyncTag(tag.0.wrapping_add(df)),
            },
            other => other,
        };
        Event {
            time: Time::from_nanos(self.time.as_nanos().wrapping_add(r.wrapping_mul(dt_ns))),
            proc: self.proc,
            seq: self.seq.wrapping_add(r.wrapping_mul(dseq)),
            kind,
        }
    }

    /// The total-order key used throughout the analyses: time, then
    /// emission sequence, then processor. Emission sequence before
    /// processor matters for same-time ties: a producer emits causally
    /// later events with larger `seq` (e.g. barrier exits after all
    /// enters), and the total order must respect that regardless of which
    /// processors are involved.
    #[inline]
    pub fn order_key(&self) -> (Time, u64, ProcessorId) {
        (self.time, self.seq, self.proc)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {} {}]", self.time, self.proc, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        let adv = EventKind::Advance {
            var: SyncVarId(0),
            tag: SyncTag(3),
        };
        let awb = EventKind::AwaitBegin {
            var: SyncVarId(0),
            tag: SyncTag(3),
        };
        let awe = EventKind::AwaitEnd {
            var: SyncVarId(0),
            tag: SyncTag(3),
        };
        let stmt = EventKind::Statement {
            stmt: StatementId(1),
        };
        let bar = EventKind::BarrierEnter {
            barrier: BarrierId(0),
        };

        assert!(adv.is_sync() && awb.is_sync() && awe.is_sync());
        assert!(!stmt.is_sync() && !bar.is_sync());
        assert!(bar.is_barrier());
        assert!(EventKind::ProgramBegin.is_marker());
        assert!(EventKind::IterationEnd {
            loop_id: LoopId(0),
            iter: 2
        }
        .is_marker());
        assert!(!stmt.is_marker());
    }

    #[test]
    fn episode_predicates_and_accessors() {
        let acq = EventKind::LockAcquire { lock: LockId(2) };
        let rel = EventKind::LockRelease { lock: LockId(2) };
        let p = EventKind::SemAcquire { sem: SemId(1) };
        let v = EventKind::SemRelease { sem: SemId(1) };
        let fork = EventKind::TaskFork { task: TaskId(0) };
        let join = EventKind::TaskJoin { task: TaskId(0) };

        assert!(acq.is_lock() && rel.is_lock());
        assert!(p.is_sem() && v.is_sem());
        assert!(fork.is_task() && join.is_task());
        for k in [acq, rel, p, v, fork, join] {
            assert!(k.is_episode());
            assert!(!k.is_sync() && !k.is_barrier() && !k.is_marker());
        }
        assert!(!EventKind::ProgramBegin.is_episode());

        assert_eq!(acq.lock_id(), Some(LockId(2)));
        assert_eq!(p.sem_id(), Some(SemId(1)));
        assert_eq!(join.task_id(), Some(TaskId(0)));
        assert_eq!(acq.sem_id(), None);
        assert_eq!(acq.sync_var(), None);

        assert_eq!(acq.to_string(), "lockA(K2)");
        assert_eq!(v.to_string(), "semV(M1)");
        assert_eq!(fork.to_string(), "taskF(T0)");

        // Episode ids are identities: repeat shifting leaves them alone.
        let e = Event::new(Time::from_nanos(10), ProcessorId(0), 1, acq);
        let shifted = e.repeat_shifted(3, 100, 2, 5);
        assert_eq!(shifted.kind, acq);
        assert_eq!(shifted.time, Time::from_nanos(310));
        assert_eq!(shifted.seq, 7);
    }

    #[test]
    fn sync_accessors() {
        let adv = EventKind::Advance {
            var: SyncVarId(7),
            tag: SyncTag(-1),
        };
        assert_eq!(adv.sync_var(), Some(SyncVarId(7)));
        assert_eq!(adv.sync_tag(), Some(SyncTag(-1)));
        assert_eq!(EventKind::ProgramEnd.sync_var(), None);
        assert_eq!(EventKind::ProgramEnd.sync_tag(), None);
    }

    #[test]
    fn display_is_compact() {
        let e = Event::new(
            Time::from_micros(2),
            ProcessorId(1),
            9,
            EventKind::AwaitEnd {
                var: SyncVarId(0),
                tag: SyncTag(4),
            },
        );
        assert_eq!(e.to_string(), "[2.000us P1 awaitE(A0,#4)]");
    }

    #[test]
    fn order_key_breaks_ties_deterministically() {
        let t = Time::from_nanos(5);
        let a = Event::new(t, ProcessorId(0), 1, EventKind::ProgramBegin);
        let b = Event::new(t, ProcessorId(1), 0, EventKind::ProgramBegin);
        // Equal time: lower emission sequence wins, even on a higher
        // processor id.
        assert!(b.order_key() < a.order_key());
        let c = Event::new(t, ProcessorId(0), 2, EventKind::ProgramEnd);
        assert!(a.order_key() < c.order_key());
    }

    #[test]
    fn serde_round_trip() {
        let e = Event::new(
            Time::from_nanos(123),
            ProcessorId(3),
            42,
            EventKind::Advance {
                var: SyncVarId(1),
                tag: SyncTag(10),
            },
        );
        let json = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
