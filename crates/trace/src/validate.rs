//! Trace validation and synchronization-event pairing.
//!
//! Event-based perturbation analysis is only sound on traces whose
//! synchronization events can be paired unambiguously (§4.2.2: events must
//! carry "a unique value identifying the pair"). [`pair_sync_events`]
//! builds that pairing and, en route, rejects malformed traces with typed
//! errors — missing advances, duplicate tags, unmatched awaits, ill-formed
//! barrier episodes, or a broken total order.

use crate::event::{Event, EventKind};
use crate::ids::{BarrierId, LockId, ProcessorId, SemId, SyncTag, SyncVarId, TaskId};
use crate::trace::Trace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Validation failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)] // variant fields are named after the id types they hold
pub enum TraceError {
    /// The event array is not sorted by `(time, proc, seq)`.
    NotTotallyOrdered { position: usize },
    /// Two `advance` events carry the same `(var, tag)`.
    DuplicateAdvance { var: SyncVarId, tag: SyncTag },
    /// An `advance` carries a pre-advanced (negative) tag, which no
    /// operation may produce.
    NegativeAdvanceTag { var: SyncVarId, tag: SyncTag },
    /// An `awaitE` appeared with no preceding `awaitB` for the same
    /// `(var, tag)` on the same processor.
    UnmatchedAwaitEnd {
        proc: ProcessorId,
        var: SyncVarId,
        tag: SyncTag,
    },
    /// An `awaitB` was never completed by an `awaitE` on its processor.
    UnmatchedAwaitBegin {
        proc: ProcessorId,
        var: SyncVarId,
        tag: SyncTag,
    },
    /// Two `awaitB` events nested on one processor (an await began while
    /// another was still pending).
    NestedAwait {
        proc: ProcessorId,
        var: SyncVarId,
        tag: SyncTag,
    },
    /// An `awaitE` on a non-pre-advanced tag has no `advance` partner
    /// anywhere in the trace.
    MissingAdvance { var: SyncVarId, tag: SyncTag },
    /// An `awaitE` was recorded before its partner `advance` in the total
    /// order — causally impossible.
    AwaitBeforeAdvance { var: SyncVarId, tag: SyncTag },
    /// A barrier episode has a different number of enters and exits.
    BarrierArityMismatch {
        barrier: BarrierId,
        enters: usize,
        exits: usize,
    },
    /// A barrier exit was recorded before every participant entered.
    BarrierExitBeforeLastEnter { barrier: BarrierId },
    /// A processor exited a barrier it never entered (or exited twice).
    BarrierProtocol {
        barrier: BarrierId,
        proc: ProcessorId,
    },
    /// A lock acquire completed while another processor still held the
    /// lock, a release came from a non-holder, or a release hit a free
    /// lock — a mutual-exclusion protocol violation.
    LockProtocol { lock: LockId, proc: ProcessorId },
    /// A lock was still held when the trace ended.
    LockHeldAtEnd { lock: LockId, proc: ProcessorId },
    /// A semaphore P completed with no enabling V recorded before it.
    /// V events are recorded before the permit becomes visible, so the
    /// k-th P (arrival order) requires at least k+1 preceding V's.
    SemUnderflow { sem: SemId, proc: ProcessorId },
    /// A task episode broke the fork,fork,join,join shape: a join with
    /// no open forks, a third fork, a join-return on a processor other
    /// than the spawning one, or an episode left open at trace end.
    TaskProtocol { task: TaskId, proc: ProcessorId },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::NotTotallyOrdered { position } => {
                write!(f, "trace is not totally ordered at event index {position}")
            }
            TraceError::DuplicateAdvance { var, tag } => {
                write!(f, "duplicate advance on {var} {tag}")
            }
            TraceError::NegativeAdvanceTag { var, tag } => {
                write!(
                    f,
                    "advance on {var} carries reserved pre-advanced tag {tag}"
                )
            }
            TraceError::UnmatchedAwaitEnd { proc, var, tag } => {
                write!(
                    f,
                    "awaitE on {proc} for {var} {tag} without matching awaitB"
                )
            }
            TraceError::UnmatchedAwaitBegin { proc, var, tag } => {
                write!(f, "awaitB on {proc} for {var} {tag} never completed")
            }
            TraceError::NestedAwait { proc, var, tag } => {
                write!(f, "nested awaitB on {proc} for {var} {tag}")
            }
            TraceError::MissingAdvance { var, tag } => {
                write!(
                    f,
                    "awaitE for {var} {tag} has no advance partner in the trace"
                )
            }
            TraceError::AwaitBeforeAdvance { var, tag } => {
                write!(
                    f,
                    "awaitE for {var} {tag} precedes its advance in the total order"
                )
            }
            TraceError::BarrierArityMismatch {
                barrier,
                enters,
                exits,
            } => {
                write!(f, "{barrier}: {enters} enters but {exits} exits")
            }
            TraceError::BarrierExitBeforeLastEnter { barrier } => {
                write!(f, "{barrier}: an exit precedes the last enter")
            }
            TraceError::BarrierProtocol { barrier, proc } => {
                write!(f, "{barrier}: {proc} violated the enter/exit protocol")
            }
            TraceError::LockProtocol { lock, proc } => {
                write!(f, "{lock}: {proc} violated the acquire/release protocol")
            }
            TraceError::LockHeldAtEnd { lock, proc } => {
                write!(f, "{lock}: still held by {proc} at trace end")
            }
            TraceError::SemUnderflow { sem, proc } => {
                write!(f, "{sem}: P on {proc} with no enabling V recorded")
            }
            TraceError::TaskProtocol { task, proc } => {
                write!(f, "{task}: {proc} violated the fork/join protocol")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// One paired await: the `awaitB`/`awaitE` event indices on a processor and
/// the index of the partner `advance` (absent for pre-advanced tags).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AwaitPair {
    /// Processor that executed the await.
    pub proc: ProcessorId,
    /// Index of the `awaitB` event in the trace.
    pub begin: usize,
    /// Index of the `awaitE` event in the trace.
    pub end: usize,
    /// Index of the partner `advance` event, if the tag required one.
    pub advance: Option<usize>,
}

/// One barrier episode: all enter/exit event indices for a barrier id.
///
/// A trace may contain several episodes of the same [`BarrierId`] (a loop
/// executed repeatedly); episodes are split greedily: an episode closes when
/// the number of exits equals the number of enters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarrierEpisode {
    /// The barrier id.
    pub barrier: BarrierId,
    /// Enter event indices, in total order.
    pub enters: Vec<usize>,
    /// Exit event indices, in total order.
    pub exits: Vec<usize>,
}

/// The synchronization-episode family a blocked event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EpisodeFamily {
    /// Mutual-exclusion lock: acquire blocked on the previous release.
    Lock,
    /// Counting semaphore: the k-th P blocked on the k-th V.
    Sem,
    /// Fork/join task: the parent's join-return blocked on the child end.
    Task,
}

impl fmt::Display for EpisodeFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EpisodeFamily::Lock => "lock",
            EpisodeFamily::Sem => "sem",
            EpisodeFamily::Task => "task",
        })
    }
}

/// One resolved lock/semaphore/task episode: the blocked-completion event
/// (lock acquire, semaphore P, or the parent's join-return) and the event
/// that enabled it, when one exists. This is the episode analogue of
/// [`AwaitPair`]: the dependency plays the advance's role in the §4.2.3
/// approximation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpisodePair {
    /// Which episode family the pair belongs to.
    pub family: EpisodeFamily,
    /// Raw id of the lock/semaphore/task object.
    pub object: u32,
    /// Processor that executed the blocked event.
    pub proc: ProcessorId,
    /// Index of the blocked-completion event in the trace.
    pub event: usize,
    /// Index of the enabling event (the previous release, the k-th V, or
    /// the child-end join), if the blocked event had to synchronize. The
    /// first acquire of a free lock has no dependency.
    pub dep: Option<usize>,
}

/// The synchronization structure of a validated trace.
#[derive(Debug, Clone, Default)]
pub struct SyncIndex {
    /// `(var, tag)` → index of the advance event.
    pub advances: BTreeMap<(SyncVarId, SyncTag), usize>,
    /// All await pairs, ordered by `awaitB` position.
    pub awaits: Vec<AwaitPair>,
    /// All barrier episodes, ordered by first enter.
    pub barriers: Vec<BarrierEpisode>,
    /// All lock/semaphore/task episode pairs, ordered by blocked event.
    pub episodes: Vec<EpisodePair>,
    /// Task child-begin anchoring: `(child_begin_fork, parent_spawn_fork)`
    /// index pairs, one per task episode. The child's first event is
    /// causally anchored to the parent's spawn, not to the child
    /// processor's previous event.
    pub task_spawns: Vec<(usize, usize)>,
}

impl SyncIndex {
    /// Looks up the await pair whose `awaitE` is at trace index `end`.
    pub fn await_by_end(&self, end: usize) -> Option<&AwaitPair> {
        self.awaits.iter().find(|p| p.end == end)
    }

    /// Looks up the episode pair whose blocked event is at trace index
    /// `event`.
    pub fn episode_by_event(&self, event: usize) -> Option<&EpisodePair> {
        self.episodes.iter().find(|p| p.event == event)
    }
}

/// Validates a trace's synchronization structure and returns the pairing.
///
/// Checks, in order: total-order invariant; advance tag legality and
/// uniqueness; awaitB/awaitE pairing per processor (no nesting, no orphan
/// ends, no dangling begins); existence of each await's partner advance;
/// barrier episode well-formedness.
///
/// This function does **not** require the partner advance *event* to
/// precede the `awaitE` event in the total order: in a measured trace the
/// waiter resumes when the advance *operation* completes, while the
/// advance event is only recorded after the advance instrumentation (α)
/// runs, so a measured `awaitE` may legitimately carry an earlier
/// timestamp than its advance event — one of the event reorderings
/// perturbation analysis exists to repair. Use [`pair_sync_events_strict`]
/// for traces where that skew cannot occur (actual and approximated
/// traces).
pub fn pair_sync_events(trace: &Trace) -> Result<SyncIndex, TraceError> {
    pair_sync_events_impl(trace, false)
}

/// Like [`pair_sync_events`], but additionally requires every `awaitE` to
/// follow its partner `advance` event in the total order — the causality
/// condition instrumentation-free (actual) and approximated traces must
/// satisfy.
pub fn pair_sync_events_strict(trace: &Trace) -> Result<SyncIndex, TraceError> {
    pair_sync_events_impl(trace, true)
}

fn pair_sync_events_impl(trace: &Trace, strict: bool) -> Result<SyncIndex, TraceError> {
    let events = trace.events();
    if let Some(pos) = first_order_violation(events) {
        return Err(TraceError::NotTotallyOrdered { position: pos });
    }

    let mut index = SyncIndex::default();
    // Per-processor pending awaitB, to pair with the next awaitE.
    let mut pending: BTreeMap<ProcessorId, (SyncVarId, SyncTag, usize)> = BTreeMap::new();

    for (i, e) in events.iter().enumerate() {
        match e.kind {
            EventKind::Advance { var, tag } => {
                if tag.is_pre_advanced() {
                    return Err(TraceError::NegativeAdvanceTag { var, tag });
                }
                if index.advances.insert((var, tag), i).is_some() {
                    return Err(TraceError::DuplicateAdvance { var, tag });
                }
            }
            EventKind::AwaitBegin { var, tag } => {
                if pending.contains_key(&e.proc) {
                    return Err(TraceError::NestedAwait {
                        proc: e.proc,
                        var,
                        tag,
                    });
                }
                pending.insert(e.proc, (var, tag, i));
            }
            EventKind::AwaitEnd { var, tag } => match pending.remove(&e.proc) {
                Some((bvar, btag, begin)) if bvar == var && btag == tag => {
                    index.awaits.push(AwaitPair {
                        proc: e.proc,
                        begin,
                        end: i,
                        advance: None,
                    });
                }
                _ => {
                    return Err(TraceError::UnmatchedAwaitEnd {
                        proc: e.proc,
                        var,
                        tag,
                    })
                }
            },
            _ => {}
        }
    }

    if let Some((&proc, &(var, tag, _))) = pending.iter().next() {
        return Err(TraceError::UnmatchedAwaitBegin { proc, var, tag });
    }

    // Resolve each await's advance partner and check causality.
    for pair in &mut index.awaits {
        let (var, tag) = match events[pair.end].kind {
            EventKind::AwaitEnd { var, tag } => (var, tag),
            _ => unreachable!("await pair indexes an awaitE"),
        };
        if tag.is_pre_advanced() {
            continue;
        }
        let adv = *index
            .advances
            .get(&(var, tag))
            .ok_or(TraceError::MissingAdvance { var, tag })?;
        if strict && events[adv].order_key() > events[pair.end].order_key() {
            return Err(TraceError::AwaitBeforeAdvance { var, tag });
        }
        pair.advance = Some(adv);
    }

    index.barriers = collect_barriers(events)?;
    (index.episodes, index.task_spawns) = collect_episodes(events)?;
    Ok(index)
}

/// Scans the (totally ordered) events once, validating the lock, semaphore
/// and fork/join protocols and pairing every blocked event with the event
/// that enabled it.
///
/// The instrumentation convention that makes strict, single-pass pairing
/// sound: releases, V's and forks are recorded *before* the resource is
/// surrendered (mirroring §4.2.2, where the advance event is recorded as
/// part of the advance operation), so an enabling event always precedes
/// the event it unblocks in the measured total order.
/// Paired episodes plus `(fork, join)` task-spawn index pairs.
type EpisodeScan = (Vec<EpisodePair>, Vec<(usize, usize)>);

fn collect_episodes(events: &[Event]) -> Result<EpisodeScan, TraceError> {
    // Lock: holder + index of the last release (the next acquire's dep).
    struct LockState {
        holder: Option<ProcessorId>,
        last_release: Option<usize>,
    }
    // Semaphore: V event indices in arrival order, and P's consumed.
    #[derive(Default)]
    struct SemState {
        releases: Vec<usize>,
        acquired: usize,
    }
    // Task: arrival-order fork/join event indices of the open episode.
    #[derive(Default)]
    struct TaskState {
        forks: Vec<usize>,
        joins: Vec<usize>,
    }
    let mut locks: BTreeMap<LockId, LockState> = BTreeMap::new();
    let mut sems: BTreeMap<SemId, SemState> = BTreeMap::new();
    let mut tasks: BTreeMap<TaskId, TaskState> = BTreeMap::new();
    let mut episodes = Vec::new();
    let mut spawns = Vec::new();

    for (i, e) in events.iter().enumerate() {
        match e.kind {
            EventKind::LockAcquire { lock } => {
                let st = locks.entry(lock).or_insert(LockState {
                    holder: None,
                    last_release: None,
                });
                if st.holder.is_some() {
                    // A completed acquire while another holder exists
                    // breaks mutual exclusion.
                    return Err(TraceError::LockProtocol { lock, proc: e.proc });
                }
                st.holder = Some(e.proc);
                episodes.push(EpisodePair {
                    family: EpisodeFamily::Lock,
                    object: lock.0,
                    proc: e.proc,
                    event: i,
                    dep: st.last_release,
                });
            }
            EventKind::LockRelease { lock } => {
                let st = locks
                    .get_mut(&lock)
                    .ok_or(TraceError::LockProtocol { lock, proc: e.proc })?;
                if st.holder != Some(e.proc) {
                    return Err(TraceError::LockProtocol { lock, proc: e.proc });
                }
                st.holder = None;
                st.last_release = Some(i);
            }
            EventKind::SemAcquire { sem } => {
                let st = sems.entry(sem).or_default();
                // The k-th P (0-indexed) is enabled by the k-th V, which
                // must already be on record.
                let Some(&dep) = st.releases.get(st.acquired) else {
                    return Err(TraceError::SemUnderflow { sem, proc: e.proc });
                };
                st.acquired += 1;
                episodes.push(EpisodePair {
                    family: EpisodeFamily::Sem,
                    object: sem.0,
                    proc: e.proc,
                    event: i,
                    dep: Some(dep),
                });
            }
            EventKind::SemRelease { sem } => {
                sems.entry(sem).or_default().releases.push(i);
            }
            EventKind::TaskFork { task } => {
                let st = tasks.entry(task).or_default();
                if st.forks.len() == 2 || !st.joins.is_empty() {
                    return Err(TraceError::TaskProtocol { task, proc: e.proc });
                }
                st.forks.push(i);
            }
            EventKind::TaskJoin { task } => {
                let st = tasks
                    .get_mut(&task)
                    .ok_or(TraceError::TaskProtocol { task, proc: e.proc })?;
                if st.forks.len() != 2 {
                    return Err(TraceError::TaskProtocol { task, proc: e.proc });
                }
                st.joins.push(i);
                if st.joins.len() == 2 {
                    let (spawn, begin) = (st.forks[0], st.forks[1]);
                    let (end, ret) = (st.joins[0], st.joins[1]);
                    // The child runs begin..end; the parent spawns and
                    // joins. Roles are by arrival order, so the processors
                    // must pair crosswise.
                    if events[spawn].proc != events[ret].proc
                        || events[begin].proc != events[end].proc
                    {
                        return Err(TraceError::TaskProtocol { task, proc: e.proc });
                    }
                    spawns.push((begin, spawn));
                    episodes.push(EpisodePair {
                        family: EpisodeFamily::Task,
                        object: task.0,
                        proc: events[ret].proc,
                        event: ret,
                        dep: Some(end),
                    });
                    // The id is reusable by a later episode.
                    tasks.remove(&task);
                }
            }
            _ => {}
        }
    }

    if let Some((&lock, st)) = locks.iter().find(|(_, st)| st.holder.is_some()) {
        return Err(TraceError::LockHeldAtEnd {
            lock,
            proc: st.holder.expect("holder checked"),
        });
    }
    if let Some((&task, st)) = tasks.iter().next() {
        let at = *st
            .joins
            .last()
            .or(st.forks.last())
            .expect("open episode has events");
        return Err(TraceError::TaskProtocol {
            task,
            proc: events[at].proc,
        });
    }

    episodes.sort_by_key(|p| p.event);
    Ok((episodes, spawns))
}

fn first_order_violation(events: &[Event]) -> Option<usize> {
    events
        .windows(2)
        .position(|w| w[0].order_key() > w[1].order_key())
        .map(|p| p + 1)
}

fn collect_barriers(events: &[Event]) -> Result<Vec<BarrierEpisode>, TraceError> {
    // Open episode per barrier id: (enters, exits, procs-entered, procs-exited)
    struct Open {
        enters: Vec<usize>,
        exits: Vec<usize>,
        entered: Vec<ProcessorId>,
        exited: Vec<ProcessorId>,
    }
    let mut open: BTreeMap<BarrierId, Open> = BTreeMap::new();
    let mut done: Vec<BarrierEpisode> = Vec::new();

    for (i, e) in events.iter().enumerate() {
        match e.kind {
            EventKind::BarrierEnter { barrier } => {
                let ep = open.entry(barrier).or_insert_with(|| Open {
                    enters: Vec::new(),
                    exits: Vec::new(),
                    entered: Vec::new(),
                    exited: Vec::new(),
                });
                // A processor re-entering before the episode closed would
                // mean two overlapping episodes of the same barrier.
                if ep.entered.contains(&e.proc) {
                    return Err(TraceError::BarrierProtocol {
                        barrier,
                        proc: e.proc,
                    });
                }
                ep.enters.push(i);
                ep.entered.push(e.proc);
            }
            EventKind::BarrierExit { barrier } => {
                let ep = match open.get_mut(&barrier) {
                    Some(ep) => ep,
                    None => {
                        return Err(TraceError::BarrierProtocol {
                            barrier,
                            proc: e.proc,
                        })
                    }
                };
                if !ep.entered.contains(&e.proc) || ep.exited.contains(&e.proc) {
                    return Err(TraceError::BarrierProtocol {
                        barrier,
                        proc: e.proc,
                    });
                }
                // No exit may precede the last enter of the episode. Exits
                // are only legal once every participant has entered; since
                // participants are implicit, we check against enters seen so
                // far when the episode closes (below) — here we record.
                ep.exits.push(i);
                ep.exited.push(e.proc);
                if ep.exits.len() == ep.enters.len() {
                    let ep = open.remove(&barrier).expect("episode is open");
                    // Every exit must order after the last enter.
                    let last_enter = *ep.enters.last().expect("episode has enters");
                    let first_exit = *ep.exits.first().expect("episode has exits");
                    if events[first_exit].order_key() < events[last_enter].order_key() {
                        return Err(TraceError::BarrierExitBeforeLastEnter { barrier });
                    }
                    done.push(BarrierEpisode {
                        barrier,
                        enters: ep.enters,
                        exits: ep.exits,
                    });
                }
            }
            _ => {}
        }
    }

    if let Some((&barrier, ep)) = open.iter().next() {
        return Err(TraceError::BarrierArityMismatch {
            barrier,
            enters: ep.enters.len(),
            exits: ep.exits.len(),
        });
    }

    done.sort_by_key(|ep| ep.enters[0]);
    Ok(done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;
    use crate::trace::TraceKind;

    fn e(ns: u64, proc: u16, seq: u64, kind: EventKind) -> Event {
        Event::new(Time::from_nanos(ns), ProcessorId(proc), seq, kind)
    }

    fn adv(var: u32, tag: i64) -> EventKind {
        EventKind::Advance {
            var: SyncVarId(var),
            tag: SyncTag(tag),
        }
    }
    fn awb(var: u32, tag: i64) -> EventKind {
        EventKind::AwaitBegin {
            var: SyncVarId(var),
            tag: SyncTag(tag),
        }
    }
    fn awe(var: u32, tag: i64) -> EventKind {
        EventKind::AwaitEnd {
            var: SyncVarId(var),
            tag: SyncTag(tag),
        }
    }

    #[test]
    fn pairs_simple_advance_await() {
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![
                e(10, 0, 0, adv(0, 0)),
                e(20, 1, 1, awb(0, 0)),
                e(25, 1, 2, awe(0, 0)),
            ],
        );
        let idx = pair_sync_events(&t).unwrap();
        assert_eq!(idx.awaits.len(), 1);
        let p = idx.awaits[0];
        assert_eq!(p.proc, ProcessorId(1));
        assert_eq!((p.begin, p.end), (1, 2));
        assert_eq!(p.advance, Some(0));
    }

    #[test]
    fn pre_advanced_tag_needs_no_advance() {
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![e(1, 0, 0, awb(0, -1)), e(2, 0, 1, awe(0, -1))],
        );
        let idx = pair_sync_events(&t).unwrap();
        assert_eq!(idx.awaits[0].advance, None);
    }

    #[test]
    fn detects_missing_advance() {
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![e(1, 0, 0, awb(0, 5)), e(2, 0, 1, awe(0, 5))],
        );
        assert_eq!(
            pair_sync_events(&t).unwrap_err(),
            TraceError::MissingAdvance {
                var: SyncVarId(0),
                tag: SyncTag(5)
            }
        );
    }

    #[test]
    fn strict_mode_detects_await_before_advance() {
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![
                e(1, 1, 0, awb(0, 0)),
                e(2, 1, 1, awe(0, 0)),
                e(3, 0, 2, adv(0, 0)),
            ],
        );
        assert_eq!(
            pair_sync_events_strict(&t).unwrap_err(),
            TraceError::AwaitBeforeAdvance {
                var: SyncVarId(0),
                tag: SyncTag(0)
            }
        );
        // The lenient pairing accepts the same trace: in a measured trace
        // the advance *event* may trail the advance *operation* by α.
        let idx = pair_sync_events(&t).unwrap();
        assert_eq!(idx.awaits[0].advance, Some(2));
    }

    #[test]
    fn detects_duplicate_advance() {
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![e(1, 0, 0, adv(0, 3)), e(2, 1, 1, adv(0, 3))],
        );
        assert_eq!(
            pair_sync_events(&t).unwrap_err(),
            TraceError::DuplicateAdvance {
                var: SyncVarId(0),
                tag: SyncTag(3)
            }
        );
    }

    #[test]
    fn rejects_negative_advance_tag() {
        let t = Trace::from_events(TraceKind::Measured, vec![e(1, 0, 0, adv(0, -2))]);
        assert_eq!(
            pair_sync_events(&t).unwrap_err(),
            TraceError::NegativeAdvanceTag {
                var: SyncVarId(0),
                tag: SyncTag(-2)
            }
        );
    }

    #[test]
    fn detects_unmatched_await_end() {
        let t = Trace::from_events(TraceKind::Measured, vec![e(1, 0, 0, awe(0, 0))]);
        assert!(matches!(
            pair_sync_events(&t).unwrap_err(),
            TraceError::UnmatchedAwaitEnd { .. }
        ));
    }

    #[test]
    fn detects_dangling_await_begin() {
        let t = Trace::from_events(TraceKind::Measured, vec![e(1, 0, 0, awb(0, 0))]);
        assert!(matches!(
            pair_sync_events(&t).unwrap_err(),
            TraceError::UnmatchedAwaitBegin { .. }
        ));
    }

    #[test]
    fn detects_nested_await() {
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![e(1, 0, 0, awb(0, 0)), e(2, 0, 1, awb(0, 1))],
        );
        assert!(matches!(
            pair_sync_events(&t).unwrap_err(),
            TraceError::NestedAwait { .. }
        ));
    }

    #[test]
    fn mismatched_await_pair_is_unmatched_end() {
        // awaitB on tag 0 followed by awaitE on tag 1: the end does not
        // match the pending begin.
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![e(1, 0, 0, awb(0, 0)), e(2, 0, 1, awe(0, 1))],
        );
        assert!(matches!(
            pair_sync_events(&t).unwrap_err(),
            TraceError::UnmatchedAwaitEnd { .. }
        ));
    }

    #[test]
    fn barrier_episode_collects() {
        let b = BarrierId(0);
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![
                e(1, 0, 0, EventKind::BarrierEnter { barrier: b }),
                e(2, 1, 1, EventKind::BarrierEnter { barrier: b }),
                e(3, 0, 2, EventKind::BarrierExit { barrier: b }),
                e(3, 1, 3, EventKind::BarrierExit { barrier: b }),
            ],
        );
        let idx = pair_sync_events(&t).unwrap();
        assert_eq!(idx.barriers.len(), 1);
        assert_eq!(idx.barriers[0].enters, vec![0, 1]);
        assert_eq!(idx.barriers[0].exits, vec![2, 3]);
    }

    #[test]
    fn barrier_exit_before_last_enter_rejected() {
        // P0 exits while P2 has yet to enter the same episode: infeasible.
        let b = BarrierId(0);
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![
                e(1, 0, 0, EventKind::BarrierEnter { barrier: b }),
                e(2, 1, 1, EventKind::BarrierEnter { barrier: b }),
                e(3, 0, 2, EventKind::BarrierExit { barrier: b }),
                e(4, 2, 3, EventKind::BarrierEnter { barrier: b }),
                e(5, 1, 4, EventKind::BarrierExit { barrier: b }),
                e(6, 2, 5, EventKind::BarrierExit { barrier: b }),
            ],
        );
        assert_eq!(
            pair_sync_events(&t).unwrap_err(),
            TraceError::BarrierExitBeforeLastEnter { barrier: b }
        );
    }

    #[test]
    fn disjoint_single_proc_episodes_are_two_episodes() {
        // A processor entering and exiting alone closes an episode; a later
        // solo enter/exit is a second episode, not an error (participant
        // sets are implicit in the trace).
        let b = BarrierId(0);
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![
                e(1, 0, 0, EventKind::BarrierEnter { barrier: b }),
                e(2, 0, 1, EventKind::BarrierExit { barrier: b }),
                e(3, 1, 2, EventKind::BarrierEnter { barrier: b }),
                e(4, 1, 3, EventKind::BarrierExit { barrier: b }),
            ],
        );
        let idx = pair_sync_events(&t).unwrap();
        assert_eq!(idx.barriers.len(), 2);
    }

    #[test]
    fn barrier_arity_mismatch_rejected() {
        let b = BarrierId(1);
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![
                e(1, 0, 0, EventKind::BarrierEnter { barrier: b }),
                e(2, 1, 1, EventKind::BarrierEnter { barrier: b }),
                e(3, 0, 2, EventKind::BarrierExit { barrier: b }),
            ],
        );
        assert_eq!(
            pair_sync_events(&t).unwrap_err(),
            TraceError::BarrierArityMismatch {
                barrier: b,
                enters: 2,
                exits: 1
            }
        );
    }

    #[test]
    fn barrier_exit_without_enter_rejected() {
        let b = BarrierId(0);
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![e(1, 0, 0, EventKind::BarrierExit { barrier: b })],
        );
        assert!(matches!(
            pair_sync_events(&t).unwrap_err(),
            TraceError::BarrierProtocol { .. }
        ));
    }

    #[test]
    fn two_sequential_episodes_of_same_barrier() {
        let b = BarrierId(0);
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![
                e(1, 0, 0, EventKind::BarrierEnter { barrier: b }),
                e(2, 1, 1, EventKind::BarrierEnter { barrier: b }),
                e(3, 0, 2, EventKind::BarrierExit { barrier: b }),
                e(3, 1, 3, EventKind::BarrierExit { barrier: b }),
                e(5, 0, 4, EventKind::BarrierEnter { barrier: b }),
                e(6, 1, 5, EventKind::BarrierEnter { barrier: b }),
                e(7, 0, 6, EventKind::BarrierExit { barrier: b }),
                e(7, 1, 7, EventKind::BarrierExit { barrier: b }),
            ],
        );
        let idx = pair_sync_events(&t).unwrap();
        assert_eq!(idx.barriers.len(), 2);
    }

    #[test]
    fn empty_trace_is_valid() {
        let idx = pair_sync_events(&Trace::new(TraceKind::Actual)).unwrap();
        assert!(idx.awaits.is_empty());
        assert!(idx.advances.is_empty());
        assert!(idx.barriers.is_empty());
        assert!(idx.episodes.is_empty());
        assert!(idx.task_spawns.is_empty());
    }

    fn acq(lock: u32) -> EventKind {
        EventKind::LockAcquire { lock: LockId(lock) }
    }
    fn rel(lock: u32) -> EventKind {
        EventKind::LockRelease { lock: LockId(lock) }
    }
    fn sem_p(sem: u32) -> EventKind {
        EventKind::SemAcquire { sem: SemId(sem) }
    }
    fn sem_v(sem: u32) -> EventKind {
        EventKind::SemRelease { sem: SemId(sem) }
    }
    fn fork(task: u32) -> EventKind {
        EventKind::TaskFork { task: TaskId(task) }
    }
    fn join(task: u32) -> EventKind {
        EventKind::TaskJoin { task: TaskId(task) }
    }

    #[test]
    fn lock_episodes_pair_acquire_with_previous_release() {
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![
                e(10, 0, 0, acq(0)),
                e(20, 0, 1, rel(0)),
                e(30, 1, 2, acq(0)),
                e(40, 1, 3, rel(0)),
            ],
        );
        let idx = pair_sync_events(&t).unwrap();
        assert_eq!(idx.episodes.len(), 2);
        assert_eq!(idx.episodes[0].family, EpisodeFamily::Lock);
        assert_eq!(idx.episodes[0].dep, None);
        assert_eq!(idx.episodes[1].dep, Some(1));
        assert_eq!(idx.episodes[1].proc, ProcessorId(1));
        assert_eq!(idx.episode_by_event(2), Some(&idx.episodes[1]));
    }

    #[test]
    fn lock_protocol_violations_rejected() {
        // Acquire while held by another processor.
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![e(1, 0, 0, acq(0)), e(2, 1, 1, acq(0))],
        );
        assert_eq!(
            pair_sync_events(&t).unwrap_err(),
            TraceError::LockProtocol {
                lock: LockId(0),
                proc: ProcessorId(1)
            }
        );
        // Release by a non-holder.
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![e(1, 0, 0, acq(0)), e(2, 1, 1, rel(0))],
        );
        assert!(matches!(
            pair_sync_events(&t).unwrap_err(),
            TraceError::LockProtocol { .. }
        ));
        // Release of a free lock.
        let t = Trace::from_events(TraceKind::Measured, vec![e(1, 0, 0, rel(0))]);
        assert!(matches!(
            pair_sync_events(&t).unwrap_err(),
            TraceError::LockProtocol { .. }
        ));
        // Held at trace end.
        let t = Trace::from_events(TraceKind::Measured, vec![e(1, 0, 0, acq(0))]);
        assert_eq!(
            pair_sync_events(&t).unwrap_err(),
            TraceError::LockHeldAtEnd {
                lock: LockId(0),
                proc: ProcessorId(0)
            }
        );
    }

    #[test]
    fn sem_episodes_pair_kth_p_with_kth_v() {
        // Two leading V's (initial permits), then three P/V rounds.
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![
                e(1, 0, 0, sem_v(0)),
                e(2, 0, 1, sem_v(0)),
                e(3, 1, 2, sem_p(0)),
                e(4, 2, 3, sem_p(0)),
                e(5, 1, 4, sem_v(0)),
                e(6, 2, 5, sem_p(0)),
            ],
        );
        let idx = pair_sync_events(&t).unwrap();
        assert_eq!(idx.episodes.len(), 3);
        assert_eq!(idx.episodes[0].dep, Some(0));
        assert_eq!(idx.episodes[1].dep, Some(1));
        assert_eq!(idx.episodes[2].dep, Some(4));
        assert!(idx.episodes.iter().all(|p| p.family == EpisodeFamily::Sem));
    }

    #[test]
    fn sem_underflow_rejected() {
        let t = Trace::from_events(TraceKind::Measured, vec![e(1, 0, 0, sem_p(3))]);
        assert_eq!(
            pair_sync_events(&t).unwrap_err(),
            TraceError::SemUnderflow {
                sem: SemId(3),
                proc: ProcessorId(0)
            }
        );
    }

    #[test]
    fn task_episode_pairs_join_return_with_child_end() {
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![
                e(10, 0, 0, fork(5)), // parent spawn
                e(15, 1, 1, fork(5)), // child begin
                e(40, 1, 2, join(5)), // child end
                e(45, 0, 3, join(5)), // parent join-return
            ],
        );
        let idx = pair_sync_events(&t).unwrap();
        assert_eq!(idx.episodes.len(), 1);
        let p = idx.episodes[0];
        assert_eq!(p.family, EpisodeFamily::Task);
        assert_eq!(p.event, 3);
        assert_eq!(p.dep, Some(2));
        assert_eq!(p.proc, ProcessorId(0));
        assert_eq!(idx.task_spawns, vec![(1, 0)]);
    }

    #[test]
    fn task_id_reusable_after_episode_closes() {
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![
                e(10, 0, 0, fork(0)),
                e(15, 1, 1, fork(0)),
                e(20, 1, 2, join(0)),
                e(25, 0, 3, join(0)),
                e(30, 0, 4, fork(0)),
                e(35, 2, 5, fork(0)),
                e(40, 2, 6, join(0)),
                e(45, 0, 7, join(0)),
            ],
        );
        let idx = pair_sync_events(&t).unwrap();
        assert_eq!(idx.episodes.len(), 2);
        assert_eq!(idx.task_spawns, vec![(1, 0), (5, 4)]);
    }

    #[test]
    fn task_protocol_violations_rejected() {
        // Join with no open episode.
        let t = Trace::from_events(TraceKind::Measured, vec![e(1, 0, 0, join(0))]);
        assert!(matches!(
            pair_sync_events(&t).unwrap_err(),
            TraceError::TaskProtocol { .. }
        ));
        // Third fork on an open episode.
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![
                e(1, 0, 0, fork(0)),
                e(2, 1, 1, fork(0)),
                e(3, 2, 2, fork(0)),
            ],
        );
        assert!(matches!(
            pair_sync_events(&t).unwrap_err(),
            TraceError::TaskProtocol { .. }
        ));
        // Join-return on a processor other than the spawner.
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![
                e(1, 0, 0, fork(0)),
                e(2, 1, 1, fork(0)),
                e(3, 1, 2, join(0)),
                e(4, 2, 3, join(0)),
            ],
        );
        assert!(matches!(
            pair_sync_events(&t).unwrap_err(),
            TraceError::TaskProtocol { .. }
        ));
        // Episode left open at trace end.
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![e(1, 0, 0, fork(0)), e(2, 1, 1, fork(0))],
        );
        assert!(matches!(
            pair_sync_events(&t).unwrap_err(),
            TraceError::TaskProtocol { .. }
        ));
    }
}
