//! Trace validation and synchronization-event pairing.
//!
//! Event-based perturbation analysis is only sound on traces whose
//! synchronization events can be paired unambiguously (§4.2.2: events must
//! carry "a unique value identifying the pair"). [`pair_sync_events`]
//! builds that pairing and, en route, rejects malformed traces with typed
//! errors — missing advances, duplicate tags, unmatched awaits, ill-formed
//! barrier episodes, or a broken total order.

use crate::event::{Event, EventKind};
use crate::ids::{BarrierId, ProcessorId, SyncTag, SyncVarId};
use crate::trace::Trace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Validation failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)] // variant fields are named after the id types they hold
pub enum TraceError {
    /// The event array is not sorted by `(time, proc, seq)`.
    NotTotallyOrdered { position: usize },
    /// Two `advance` events carry the same `(var, tag)`.
    DuplicateAdvance { var: SyncVarId, tag: SyncTag },
    /// An `advance` carries a pre-advanced (negative) tag, which no
    /// operation may produce.
    NegativeAdvanceTag { var: SyncVarId, tag: SyncTag },
    /// An `awaitE` appeared with no preceding `awaitB` for the same
    /// `(var, tag)` on the same processor.
    UnmatchedAwaitEnd {
        proc: ProcessorId,
        var: SyncVarId,
        tag: SyncTag,
    },
    /// An `awaitB` was never completed by an `awaitE` on its processor.
    UnmatchedAwaitBegin {
        proc: ProcessorId,
        var: SyncVarId,
        tag: SyncTag,
    },
    /// Two `awaitB` events nested on one processor (an await began while
    /// another was still pending).
    NestedAwait {
        proc: ProcessorId,
        var: SyncVarId,
        tag: SyncTag,
    },
    /// An `awaitE` on a non-pre-advanced tag has no `advance` partner
    /// anywhere in the trace.
    MissingAdvance { var: SyncVarId, tag: SyncTag },
    /// An `awaitE` was recorded before its partner `advance` in the total
    /// order — causally impossible.
    AwaitBeforeAdvance { var: SyncVarId, tag: SyncTag },
    /// A barrier episode has a different number of enters and exits.
    BarrierArityMismatch {
        barrier: BarrierId,
        enters: usize,
        exits: usize,
    },
    /// A barrier exit was recorded before every participant entered.
    BarrierExitBeforeLastEnter { barrier: BarrierId },
    /// A processor exited a barrier it never entered (or exited twice).
    BarrierProtocol {
        barrier: BarrierId,
        proc: ProcessorId,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::NotTotallyOrdered { position } => {
                write!(f, "trace is not totally ordered at event index {position}")
            }
            TraceError::DuplicateAdvance { var, tag } => {
                write!(f, "duplicate advance on {var} {tag}")
            }
            TraceError::NegativeAdvanceTag { var, tag } => {
                write!(
                    f,
                    "advance on {var} carries reserved pre-advanced tag {tag}"
                )
            }
            TraceError::UnmatchedAwaitEnd { proc, var, tag } => {
                write!(
                    f,
                    "awaitE on {proc} for {var} {tag} without matching awaitB"
                )
            }
            TraceError::UnmatchedAwaitBegin { proc, var, tag } => {
                write!(f, "awaitB on {proc} for {var} {tag} never completed")
            }
            TraceError::NestedAwait { proc, var, tag } => {
                write!(f, "nested awaitB on {proc} for {var} {tag}")
            }
            TraceError::MissingAdvance { var, tag } => {
                write!(
                    f,
                    "awaitE for {var} {tag} has no advance partner in the trace"
                )
            }
            TraceError::AwaitBeforeAdvance { var, tag } => {
                write!(
                    f,
                    "awaitE for {var} {tag} precedes its advance in the total order"
                )
            }
            TraceError::BarrierArityMismatch {
                barrier,
                enters,
                exits,
            } => {
                write!(f, "{barrier}: {enters} enters but {exits} exits")
            }
            TraceError::BarrierExitBeforeLastEnter { barrier } => {
                write!(f, "{barrier}: an exit precedes the last enter")
            }
            TraceError::BarrierProtocol { barrier, proc } => {
                write!(f, "{barrier}: {proc} violated the enter/exit protocol")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// One paired await: the `awaitB`/`awaitE` event indices on a processor and
/// the index of the partner `advance` (absent for pre-advanced tags).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AwaitPair {
    /// Processor that executed the await.
    pub proc: ProcessorId,
    /// Index of the `awaitB` event in the trace.
    pub begin: usize,
    /// Index of the `awaitE` event in the trace.
    pub end: usize,
    /// Index of the partner `advance` event, if the tag required one.
    pub advance: Option<usize>,
}

/// One barrier episode: all enter/exit event indices for a barrier id.
///
/// A trace may contain several episodes of the same [`BarrierId`] (a loop
/// executed repeatedly); episodes are split greedily: an episode closes when
/// the number of exits equals the number of enters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarrierEpisode {
    /// The barrier id.
    pub barrier: BarrierId,
    /// Enter event indices, in total order.
    pub enters: Vec<usize>,
    /// Exit event indices, in total order.
    pub exits: Vec<usize>,
}

/// The synchronization structure of a validated trace.
#[derive(Debug, Clone, Default)]
pub struct SyncIndex {
    /// `(var, tag)` → index of the advance event.
    pub advances: BTreeMap<(SyncVarId, SyncTag), usize>,
    /// All await pairs, ordered by `awaitB` position.
    pub awaits: Vec<AwaitPair>,
    /// All barrier episodes, ordered by first enter.
    pub barriers: Vec<BarrierEpisode>,
}

impl SyncIndex {
    /// Looks up the await pair whose `awaitE` is at trace index `end`.
    pub fn await_by_end(&self, end: usize) -> Option<&AwaitPair> {
        self.awaits.iter().find(|p| p.end == end)
    }
}

/// Validates a trace's synchronization structure and returns the pairing.
///
/// Checks, in order: total-order invariant; advance tag legality and
/// uniqueness; awaitB/awaitE pairing per processor (no nesting, no orphan
/// ends, no dangling begins); existence of each await's partner advance;
/// barrier episode well-formedness.
///
/// This function does **not** require the partner advance *event* to
/// precede the `awaitE` event in the total order: in a measured trace the
/// waiter resumes when the advance *operation* completes, while the
/// advance event is only recorded after the advance instrumentation (α)
/// runs, so a measured `awaitE` may legitimately carry an earlier
/// timestamp than its advance event — one of the event reorderings
/// perturbation analysis exists to repair. Use [`pair_sync_events_strict`]
/// for traces where that skew cannot occur (actual and approximated
/// traces).
pub fn pair_sync_events(trace: &Trace) -> Result<SyncIndex, TraceError> {
    pair_sync_events_impl(trace, false)
}

/// Like [`pair_sync_events`], but additionally requires every `awaitE` to
/// follow its partner `advance` event in the total order — the causality
/// condition instrumentation-free (actual) and approximated traces must
/// satisfy.
pub fn pair_sync_events_strict(trace: &Trace) -> Result<SyncIndex, TraceError> {
    pair_sync_events_impl(trace, true)
}

fn pair_sync_events_impl(trace: &Trace, strict: bool) -> Result<SyncIndex, TraceError> {
    let events = trace.events();
    if let Some(pos) = first_order_violation(events) {
        return Err(TraceError::NotTotallyOrdered { position: pos });
    }

    let mut index = SyncIndex::default();
    // Per-processor pending awaitB, to pair with the next awaitE.
    let mut pending: BTreeMap<ProcessorId, (SyncVarId, SyncTag, usize)> = BTreeMap::new();

    for (i, e) in events.iter().enumerate() {
        match e.kind {
            EventKind::Advance { var, tag } => {
                if tag.is_pre_advanced() {
                    return Err(TraceError::NegativeAdvanceTag { var, tag });
                }
                if index.advances.insert((var, tag), i).is_some() {
                    return Err(TraceError::DuplicateAdvance { var, tag });
                }
            }
            EventKind::AwaitBegin { var, tag } => {
                if pending.contains_key(&e.proc) {
                    return Err(TraceError::NestedAwait {
                        proc: e.proc,
                        var,
                        tag,
                    });
                }
                pending.insert(e.proc, (var, tag, i));
            }
            EventKind::AwaitEnd { var, tag } => match pending.remove(&e.proc) {
                Some((bvar, btag, begin)) if bvar == var && btag == tag => {
                    index.awaits.push(AwaitPair {
                        proc: e.proc,
                        begin,
                        end: i,
                        advance: None,
                    });
                }
                _ => {
                    return Err(TraceError::UnmatchedAwaitEnd {
                        proc: e.proc,
                        var,
                        tag,
                    })
                }
            },
            _ => {}
        }
    }

    if let Some((&proc, &(var, tag, _))) = pending.iter().next() {
        return Err(TraceError::UnmatchedAwaitBegin { proc, var, tag });
    }

    // Resolve each await's advance partner and check causality.
    for pair in &mut index.awaits {
        let (var, tag) = match events[pair.end].kind {
            EventKind::AwaitEnd { var, tag } => (var, tag),
            _ => unreachable!("await pair indexes an awaitE"),
        };
        if tag.is_pre_advanced() {
            continue;
        }
        let adv = *index
            .advances
            .get(&(var, tag))
            .ok_or(TraceError::MissingAdvance { var, tag })?;
        if strict && events[adv].order_key() > events[pair.end].order_key() {
            return Err(TraceError::AwaitBeforeAdvance { var, tag });
        }
        pair.advance = Some(adv);
    }

    index.barriers = collect_barriers(events)?;
    Ok(index)
}

fn first_order_violation(events: &[Event]) -> Option<usize> {
    events
        .windows(2)
        .position(|w| w[0].order_key() > w[1].order_key())
        .map(|p| p + 1)
}

fn collect_barriers(events: &[Event]) -> Result<Vec<BarrierEpisode>, TraceError> {
    // Open episode per barrier id: (enters, exits, procs-entered, procs-exited)
    struct Open {
        enters: Vec<usize>,
        exits: Vec<usize>,
        entered: Vec<ProcessorId>,
        exited: Vec<ProcessorId>,
    }
    let mut open: BTreeMap<BarrierId, Open> = BTreeMap::new();
    let mut done: Vec<BarrierEpisode> = Vec::new();

    for (i, e) in events.iter().enumerate() {
        match e.kind {
            EventKind::BarrierEnter { barrier } => {
                let ep = open.entry(barrier).or_insert_with(|| Open {
                    enters: Vec::new(),
                    exits: Vec::new(),
                    entered: Vec::new(),
                    exited: Vec::new(),
                });
                // A processor re-entering before the episode closed would
                // mean two overlapping episodes of the same barrier.
                if ep.entered.contains(&e.proc) {
                    return Err(TraceError::BarrierProtocol {
                        barrier,
                        proc: e.proc,
                    });
                }
                ep.enters.push(i);
                ep.entered.push(e.proc);
            }
            EventKind::BarrierExit { barrier } => {
                let ep = match open.get_mut(&barrier) {
                    Some(ep) => ep,
                    None => {
                        return Err(TraceError::BarrierProtocol {
                            barrier,
                            proc: e.proc,
                        })
                    }
                };
                if !ep.entered.contains(&e.proc) || ep.exited.contains(&e.proc) {
                    return Err(TraceError::BarrierProtocol {
                        barrier,
                        proc: e.proc,
                    });
                }
                // No exit may precede the last enter of the episode. Exits
                // are only legal once every participant has entered; since
                // participants are implicit, we check against enters seen so
                // far when the episode closes (below) — here we record.
                ep.exits.push(i);
                ep.exited.push(e.proc);
                if ep.exits.len() == ep.enters.len() {
                    let ep = open.remove(&barrier).expect("episode is open");
                    // Every exit must order after the last enter.
                    let last_enter = *ep.enters.last().expect("episode has enters");
                    let first_exit = *ep.exits.first().expect("episode has exits");
                    if events[first_exit].order_key() < events[last_enter].order_key() {
                        return Err(TraceError::BarrierExitBeforeLastEnter { barrier });
                    }
                    done.push(BarrierEpisode {
                        barrier,
                        enters: ep.enters,
                        exits: ep.exits,
                    });
                }
            }
            _ => {}
        }
    }

    if let Some((&barrier, ep)) = open.iter().next() {
        return Err(TraceError::BarrierArityMismatch {
            barrier,
            enters: ep.enters.len(),
            exits: ep.exits.len(),
        });
    }

    done.sort_by_key(|ep| ep.enters[0]);
    Ok(done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;
    use crate::trace::TraceKind;

    fn e(ns: u64, proc: u16, seq: u64, kind: EventKind) -> Event {
        Event::new(Time::from_nanos(ns), ProcessorId(proc), seq, kind)
    }

    fn adv(var: u32, tag: i64) -> EventKind {
        EventKind::Advance {
            var: SyncVarId(var),
            tag: SyncTag(tag),
        }
    }
    fn awb(var: u32, tag: i64) -> EventKind {
        EventKind::AwaitBegin {
            var: SyncVarId(var),
            tag: SyncTag(tag),
        }
    }
    fn awe(var: u32, tag: i64) -> EventKind {
        EventKind::AwaitEnd {
            var: SyncVarId(var),
            tag: SyncTag(tag),
        }
    }

    #[test]
    fn pairs_simple_advance_await() {
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![
                e(10, 0, 0, adv(0, 0)),
                e(20, 1, 1, awb(0, 0)),
                e(25, 1, 2, awe(0, 0)),
            ],
        );
        let idx = pair_sync_events(&t).unwrap();
        assert_eq!(idx.awaits.len(), 1);
        let p = idx.awaits[0];
        assert_eq!(p.proc, ProcessorId(1));
        assert_eq!((p.begin, p.end), (1, 2));
        assert_eq!(p.advance, Some(0));
    }

    #[test]
    fn pre_advanced_tag_needs_no_advance() {
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![e(1, 0, 0, awb(0, -1)), e(2, 0, 1, awe(0, -1))],
        );
        let idx = pair_sync_events(&t).unwrap();
        assert_eq!(idx.awaits[0].advance, None);
    }

    #[test]
    fn detects_missing_advance() {
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![e(1, 0, 0, awb(0, 5)), e(2, 0, 1, awe(0, 5))],
        );
        assert_eq!(
            pair_sync_events(&t).unwrap_err(),
            TraceError::MissingAdvance {
                var: SyncVarId(0),
                tag: SyncTag(5)
            }
        );
    }

    #[test]
    fn strict_mode_detects_await_before_advance() {
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![
                e(1, 1, 0, awb(0, 0)),
                e(2, 1, 1, awe(0, 0)),
                e(3, 0, 2, adv(0, 0)),
            ],
        );
        assert_eq!(
            pair_sync_events_strict(&t).unwrap_err(),
            TraceError::AwaitBeforeAdvance {
                var: SyncVarId(0),
                tag: SyncTag(0)
            }
        );
        // The lenient pairing accepts the same trace: in a measured trace
        // the advance *event* may trail the advance *operation* by α.
        let idx = pair_sync_events(&t).unwrap();
        assert_eq!(idx.awaits[0].advance, Some(2));
    }

    #[test]
    fn detects_duplicate_advance() {
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![e(1, 0, 0, adv(0, 3)), e(2, 1, 1, adv(0, 3))],
        );
        assert_eq!(
            pair_sync_events(&t).unwrap_err(),
            TraceError::DuplicateAdvance {
                var: SyncVarId(0),
                tag: SyncTag(3)
            }
        );
    }

    #[test]
    fn rejects_negative_advance_tag() {
        let t = Trace::from_events(TraceKind::Measured, vec![e(1, 0, 0, adv(0, -2))]);
        assert_eq!(
            pair_sync_events(&t).unwrap_err(),
            TraceError::NegativeAdvanceTag {
                var: SyncVarId(0),
                tag: SyncTag(-2)
            }
        );
    }

    #[test]
    fn detects_unmatched_await_end() {
        let t = Trace::from_events(TraceKind::Measured, vec![e(1, 0, 0, awe(0, 0))]);
        assert!(matches!(
            pair_sync_events(&t).unwrap_err(),
            TraceError::UnmatchedAwaitEnd { .. }
        ));
    }

    #[test]
    fn detects_dangling_await_begin() {
        let t = Trace::from_events(TraceKind::Measured, vec![e(1, 0, 0, awb(0, 0))]);
        assert!(matches!(
            pair_sync_events(&t).unwrap_err(),
            TraceError::UnmatchedAwaitBegin { .. }
        ));
    }

    #[test]
    fn detects_nested_await() {
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![e(1, 0, 0, awb(0, 0)), e(2, 0, 1, awb(0, 1))],
        );
        assert!(matches!(
            pair_sync_events(&t).unwrap_err(),
            TraceError::NestedAwait { .. }
        ));
    }

    #[test]
    fn mismatched_await_pair_is_unmatched_end() {
        // awaitB on tag 0 followed by awaitE on tag 1: the end does not
        // match the pending begin.
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![e(1, 0, 0, awb(0, 0)), e(2, 0, 1, awe(0, 1))],
        );
        assert!(matches!(
            pair_sync_events(&t).unwrap_err(),
            TraceError::UnmatchedAwaitEnd { .. }
        ));
    }

    #[test]
    fn barrier_episode_collects() {
        let b = BarrierId(0);
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![
                e(1, 0, 0, EventKind::BarrierEnter { barrier: b }),
                e(2, 1, 1, EventKind::BarrierEnter { barrier: b }),
                e(3, 0, 2, EventKind::BarrierExit { barrier: b }),
                e(3, 1, 3, EventKind::BarrierExit { barrier: b }),
            ],
        );
        let idx = pair_sync_events(&t).unwrap();
        assert_eq!(idx.barriers.len(), 1);
        assert_eq!(idx.barriers[0].enters, vec![0, 1]);
        assert_eq!(idx.barriers[0].exits, vec![2, 3]);
    }

    #[test]
    fn barrier_exit_before_last_enter_rejected() {
        // P0 exits while P2 has yet to enter the same episode: infeasible.
        let b = BarrierId(0);
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![
                e(1, 0, 0, EventKind::BarrierEnter { barrier: b }),
                e(2, 1, 1, EventKind::BarrierEnter { barrier: b }),
                e(3, 0, 2, EventKind::BarrierExit { barrier: b }),
                e(4, 2, 3, EventKind::BarrierEnter { barrier: b }),
                e(5, 1, 4, EventKind::BarrierExit { barrier: b }),
                e(6, 2, 5, EventKind::BarrierExit { barrier: b }),
            ],
        );
        assert_eq!(
            pair_sync_events(&t).unwrap_err(),
            TraceError::BarrierExitBeforeLastEnter { barrier: b }
        );
    }

    #[test]
    fn disjoint_single_proc_episodes_are_two_episodes() {
        // A processor entering and exiting alone closes an episode; a later
        // solo enter/exit is a second episode, not an error (participant
        // sets are implicit in the trace).
        let b = BarrierId(0);
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![
                e(1, 0, 0, EventKind::BarrierEnter { barrier: b }),
                e(2, 0, 1, EventKind::BarrierExit { barrier: b }),
                e(3, 1, 2, EventKind::BarrierEnter { barrier: b }),
                e(4, 1, 3, EventKind::BarrierExit { barrier: b }),
            ],
        );
        let idx = pair_sync_events(&t).unwrap();
        assert_eq!(idx.barriers.len(), 2);
    }

    #[test]
    fn barrier_arity_mismatch_rejected() {
        let b = BarrierId(1);
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![
                e(1, 0, 0, EventKind::BarrierEnter { barrier: b }),
                e(2, 1, 1, EventKind::BarrierEnter { barrier: b }),
                e(3, 0, 2, EventKind::BarrierExit { barrier: b }),
            ],
        );
        assert_eq!(
            pair_sync_events(&t).unwrap_err(),
            TraceError::BarrierArityMismatch {
                barrier: b,
                enters: 2,
                exits: 1
            }
        );
    }

    #[test]
    fn barrier_exit_without_enter_rejected() {
        let b = BarrierId(0);
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![e(1, 0, 0, EventKind::BarrierExit { barrier: b })],
        );
        assert!(matches!(
            pair_sync_events(&t).unwrap_err(),
            TraceError::BarrierProtocol { .. }
        ));
    }

    #[test]
    fn two_sequential_episodes_of_same_barrier() {
        let b = BarrierId(0);
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![
                e(1, 0, 0, EventKind::BarrierEnter { barrier: b }),
                e(2, 1, 1, EventKind::BarrierEnter { barrier: b }),
                e(3, 0, 2, EventKind::BarrierExit { barrier: b }),
                e(3, 1, 3, EventKind::BarrierExit { barrier: b }),
                e(5, 0, 4, EventKind::BarrierEnter { barrier: b }),
                e(6, 1, 5, EventKind::BarrierEnter { barrier: b }),
                e(7, 0, 6, EventKind::BarrierExit { barrier: b }),
                e(7, 1, 7, EventKind::BarrierExit { barrier: b }),
            ],
        );
        let idx = pair_sync_events(&t).unwrap();
        assert_eq!(idx.barriers.len(), 2);
    }

    #[test]
    fn empty_trace_is_valid() {
        let idx = pair_sync_events(&Trace::new(TraceKind::Actual)).unwrap();
        assert!(idx.awaits.is_empty());
        assert!(idx.advances.is_empty());
        assert!(idx.barriers.is_empty());
    }
}
