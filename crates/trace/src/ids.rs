//! Identifier newtypes shared across the workspace.
//!
//! The paper's formal model instruments a program `P = S1..Sn` at points
//! `I1..In`; an event records the execution of a statement, so a trace is a
//! time-ordered sequence of `{t(e), eid}` pairs. The identifiers here name
//! statements, processors, loops, synchronization variables, and barriers
//! unambiguously across program model, simulator, native executor, and
//! analysis.

use core::fmt;
use serde::{Deserialize, Serialize};

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident($inner:ty), $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub $inner);

        impl $name {
            /// The raw index value.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$inner> for $name {
            #[inline]
            fn from(v: $inner) -> Self {
                $name(v)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_newtype!(
    /// A (virtual) processor / thread of execution. On the Alliant FX/80
    /// these are the computational elements CE0..CE7.
    ProcessorId(u16),
    "P"
);

id_newtype!(
    /// A source statement; one trace event is emitted per execution of an
    /// instrumented statement.
    StatementId(u32),
    "S"
);

id_newtype!(
    /// A loop construct in the program model.
    LoopId(u32),
    "L"
);

id_newtype!(
    /// An advance/await synchronization variable (the paper's `A`).
    SyncVarId(u32),
    "A"
);

id_newtype!(
    /// A barrier; DOACROSS loop ends synchronize through one.
    BarrierId(u32),
    "B"
);

id_newtype!(
    /// A mutual-exclusion lock (e.g. the `ppa-sync` TTAS spinlock). Lock
    /// episodes pair the k-th acquire with the (k-1)-th release.
    LockId(u32),
    "K"
);

id_newtype!(
    /// A counting semaphore (the `ppa-sync` semaphore). P/V episodes pair
    /// the k-th P with the k-th V in arrival order.
    SemId(u32),
    "M"
);

id_newtype!(
    /// A fork/join task episode: parent fork, child begin, child end,
    /// parent join-return share one task id.
    TaskId(u32),
    "T"
);

/// The unique value identifying one advance/await pair (the paper's `i`).
///
/// For constant-distance DOACROSS dependencies the tag is the loop
/// iteration index; `await(A, i - d)` in iteration `i < d` names a tag that
/// no iteration ever advances. Such tags are *pre-advanced*: the await is
/// satisfied immediately. Tags are therefore signed.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SyncTag(pub i64);

impl SyncTag {
    /// Tags below zero are never produced by an `advance`; an `await` on one
    /// is satisfied without synchronization. This encodes the DOACROSS
    /// convention that iteration `i` with `i - d < 0` has no predecessor.
    #[inline]
    pub const fn is_pre_advanced(self) -> bool {
        self.0 < 0
    }
}

impl From<i64> for SyncTag {
    #[inline]
    fn from(v: i64) -> Self {
        SyncTag(v)
    }
}

impl fmt::Display for SyncTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(ProcessorId(3).to_string(), "P3");
        assert_eq!(StatementId(12).to_string(), "S12");
        assert_eq!(LoopId(4).to_string(), "L4");
        assert_eq!(SyncVarId(0).to_string(), "A0");
        assert_eq!(BarrierId(1).to_string(), "B1");
        assert_eq!(LockId(2).to_string(), "K2");
        assert_eq!(SemId(3).to_string(), "M3");
        assert_eq!(TaskId(4).to_string(), "T4");
        assert_eq!(SyncTag(-2).to_string(), "#-2");
    }

    #[test]
    fn pre_advanced_convention() {
        assert!(SyncTag(-1).is_pre_advanced());
        assert!(!SyncTag(0).is_pre_advanced());
        assert!(!SyncTag(7).is_pre_advanced());
    }

    #[test]
    fn ids_order_by_index() {
        assert!(ProcessorId(1) < ProcessorId(2));
        assert_eq!(StatementId(5).index(), 5);
        assert_eq!(ProcessorId::from(9u16), ProcessorId(9));
    }
}
