//! Trace serialization: JSON-lines and CSV.
//!
//! JSONL is the lossless interchange format (one event per line, plus a
//! header line carrying the trace kind); CSV is a flat export for plotting
//! tools. Writers accept any `io::Write` and buffer internally.

use crate::event::Event;
use crate::trace::{Trace, TraceKind};
use serde::{Deserialize, Serialize};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

#[derive(Serialize, Deserialize)]
pub(crate) struct Header {
    pub(crate) format: String,
    pub(crate) kind: TraceKind,
    pub(crate) events: usize,
}

pub(crate) const FORMAT_NAME: &str = "ppa-trace-v1";

/// Errors from trace I/O.
#[derive(Debug)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed JSON or CSV content.
    Parse { line: usize, message: String },
    /// The header line is missing or names an unknown format.
    BadHeader(String),
    /// The input ended before delivering the event count its header
    /// declared (file truncated mid-stream). Headers with an advisory
    /// count of `0` (e.g. shards) are exempt.
    Truncated { expected: usize, got: usize },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            IoError::BadHeader(msg) => write!(f, "bad trace header: {msg}"),
            IoError::Truncated { expected, got } => write!(
                f,
                "truncated trace: header declares {expected} events but input ended after {got}"
            ),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Writes a trace as JSONL: a header line, then one event per line.
pub fn write_jsonl<W: Write>(trace: &Trace, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    let header = Header {
        format: FORMAT_NAME.to_string(),
        kind: trace.kind(),
        events: trace.len(),
    };
    serde_json::to_writer(&mut w, &header).map_err(|e| IoError::Parse {
        line: 0,
        message: e.to_string(),
    })?;
    w.write_all(b"\n")?;
    for e in trace.iter() {
        serde_json::to_writer(&mut w, e).map_err(|err| IoError::Parse {
            line: 0,
            message: err.to_string(),
        })?;
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a JSONL trace written by [`write_jsonl`].
pub fn read_jsonl<R: Read>(reader: R) -> Result<Trace, IoError> {
    let mut lines = BufReader::new(reader).lines();
    let header_line = lines
        .next()
        .ok_or_else(|| IoError::BadHeader("empty input".to_string()))??;
    let header: Header =
        serde_json::from_str(&header_line).map_err(|e| IoError::BadHeader(e.to_string()))?;
    if header.format != FORMAT_NAME {
        return Err(IoError::BadHeader(format!(
            "unknown format {:?}",
            header.format
        )));
    }

    let mut events = Vec::with_capacity(header.events);
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let event: Event = serde_json::from_str(&line).map_err(|e| IoError::Parse {
            line: i + 2,
            message: e.to_string(),
        })?;
        events.push(event);
    }
    if header.events > 0 && events.len() < header.events {
        return Err(IoError::Truncated {
            expected: header.events,
            got: events.len(),
        });
    }
    Ok(Trace::from_events(header.kind, events))
}

/// Writes a flat CSV export: `time_ns,proc,seq,kind,detail`.
pub fn write_csv<W: Write>(trace: &Trace, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "time_ns,proc,seq,kind,detail")?;
    for e in trace.iter() {
        writeln!(
            w,
            "{},{},{},{},\"{}\"",
            e.time.as_nanos(),
            e.proc.0,
            e.seq,
            e.kind.mnemonic(),
            e.kind
        )?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::ids::{ProcessorId, StatementId, SyncTag, SyncVarId};
    use crate::time::Time;

    fn sample_trace() -> Trace {
        Trace::from_events(
            TraceKind::Measured,
            vec![
                Event::new(
                    Time::from_nanos(5),
                    ProcessorId(0),
                    0,
                    EventKind::Statement {
                        stmt: StatementId(3),
                    },
                ),
                Event::new(
                    Time::from_nanos(9),
                    ProcessorId(1),
                    1,
                    EventKind::Advance {
                        var: SyncVarId(0),
                        tag: SyncTag(2),
                    },
                ),
            ],
        )
    }

    #[test]
    fn jsonl_round_trip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(t, back);
        assert_eq!(back.kind(), TraceKind::Measured);
    }

    #[test]
    fn rejects_empty_input() {
        assert!(matches!(read_jsonl(&b""[..]), Err(IoError::BadHeader(_))));
    }

    #[test]
    fn rejects_unknown_format() {
        let input = br#"{"format":"other","kind":"Measured","events":0}"#;
        assert!(matches!(read_jsonl(&input[..]), Err(IoError::BadHeader(_))));
    }

    #[test]
    fn rejects_garbage_event_line() {
        let mut buf = Vec::new();
        write_jsonl(&Trace::new(TraceKind::Actual), &mut buf).unwrap();
        buf.extend_from_slice(b"{not json}\n");
        match read_jsonl(buf.as_slice()) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn skips_blank_lines() {
        let mut buf = Vec::new();
        write_jsonl(&sample_trace(), &mut buf).unwrap();
        buf.extend_from_slice(b"\n\n");
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn rejects_truncated_input() {
        let mut buf = Vec::new();
        write_jsonl(&sample_trace(), &mut buf).unwrap();
        // Drop the last event line entirely: the header still declares 2.
        let newlines: Vec<usize> = (0..buf.len()).filter(|&i| buf[i] == b'\n').collect();
        buf.truncate(newlines[newlines.len() - 2] + 1);
        match read_jsonl(buf.as_slice()) {
            Err(IoError::Truncated { expected, got }) => {
                assert_eq!((expected, got), (2, 1));
            }
            other => panic!("expected truncation error, got {other:?}"),
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut buf = Vec::new();
        write_csv(&sample_trace(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "time_ns,proc,seq,kind,detail");
        assert!(lines[1].starts_with("5,0,0,stmt,"));
        assert!(lines[2].contains("advance"));
    }
}
