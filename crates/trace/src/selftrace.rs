//! Self-trace export: the pipeline's own spans as a ppa trace.
//!
//! `ppa-obs` records the pipeline's execution as [`SpanEvent`]s; this
//! module closes the dogfood loop by exporting a drained [`SpanLog`]
//! in two shapes:
//!
//! - **A native ppa trace** ([`write_self_trace`]): every stage span
//!   becomes an `awaitB`/`awaitE` pair — the paper's shape for "a
//!   region of time on a processor" — so `ppa analyze` and `ppa check`
//!   run unmodified on a trace of their own execution. Written through
//!   [`AnyTraceWriter`], so both JSONL and `ppa-trace-bin-v1` work.
//! - **Chrome trace-event JSON** ([`write_chrome_trace`]) for
//!   chrome://tracing and Perfetto.
//!
//! ## Encoding (ppa format)
//!
//! The trace model has no "span" primitive, and the invariant linter
//! enforces real-trace rules: awaits must not nest per processor, and
//! every non-pre-advanced `awaitE` needs a matching `advance`. Spans
//! *do* nest per thread, so threads cannot map 1:1 onto processors.
//! Instead each span lands on a synthetic **lane**:
//!
//! ```text
//! processor = thread * DEPTH_LANES + min(depth, DEPTH_LANES - 1)
//! ```
//!
//! Same-depth spans on one thread are always disjoint intervals (RAII
//! guards are LIFO per thread), so each lane sees strictly sequential
//! `awaitB`/`awaitE` pairs — no nesting. Spans deeper than
//! [`DEPTH_LANES`]` - 1` are skipped (and counted) rather than clamped
//! onto a shallower lane, where they *would* nest. The sync variable
//! is the stage index ([`ppa_obs::Stage::index`]); the tag is the negated span
//! id (`-(id+1)`), which is unique and pre-advanced by the workspace
//! convention ([`SyncTag::is_pre_advanced`]) — so the pair needs no
//! `advance` event. Events are ordered by time (stable across lanes)
//! and re-sequenced `0..n`, satisfying the total-order and
//! seq-contiguity lint rules by construction.

use crate::codec::{AnyTraceWriter, TraceFormat};
use crate::event::{Event, EventKind};
use crate::ids::{ProcessorId, SyncTag, SyncVarId};
use crate::io::IoError;
use crate::time::Time;
use crate::trace::TraceKind;
use ppa_obs::{SpanEvent, SpanLog};
use std::io::Write;

/// Depth lanes per thread in the ppa export. Deeper spans are skipped
/// (see module docs); the real pipeline nests at most ~4 deep.
pub const DEPTH_LANES: u16 = 8;

/// What a self-trace export did: events written and spans it could not
/// represent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SelfTraceSummary {
    /// Spans exported (two trace events each in the ppa format).
    pub spans: usize,
    /// Spans skipped: nested deeper than [`DEPTH_LANES`]` - 1`, or on a
    /// lane index past [`ProcessorId`]'s range.
    pub skipped: usize,
    /// Spans the recorder itself dropped at its buffer cap (copied
    /// from [`SpanLog::dropped`]).
    pub dropped: u64,
}

/// Converts a span log to totally ordered ppa trace events (the
/// encoding in the module docs). Returns the events and the count of
/// unrepresentable (skipped) spans.
pub fn spans_to_events(log: &SpanLog) -> (Vec<Event>, usize) {
    let mut skipped = 0usize;
    // Per-lane event lists; each is time-sorted because drained spans
    // arrive sorted by start and same-lane intervals are disjoint.
    let mut lanes: Vec<(u16, Vec<(u64, EventKind)>)> = Vec::new();
    let mut lane_index: std::collections::HashMap<u16, usize> = std::collections::HashMap::new();
    for span in &log.events {
        let Some(lane) = lane_of(span) else {
            skipped += 1;
            continue;
        };
        let var = SyncVarId(span.stage.index() as u32);
        let tag = SyncTag(-(span.id as i64) - 1);
        let idx = *lane_index.entry(lane).or_insert_with(|| {
            lanes.push((lane, Vec::new()));
            lanes.len() - 1
        });
        lanes[idx]
            .1
            .push((span.start_ns, EventKind::AwaitBegin { var, tag }));
        lanes[idx]
            .1
            .push((span.end_ns, EventKind::AwaitEnd { var, tag }));
    }
    // Lanes in processor order so ties interleave deterministically.
    lanes.sort_by_key(|(lane, _)| *lane);
    let mut events: Vec<(u64, u16, EventKind)> = lanes
        .into_iter()
        .flat_map(|(lane, list)| list.into_iter().map(move |(t, k)| (t, lane, k)))
        .collect();
    // Stable: preserves each lane's B/E alternation across time ties.
    events.sort_by_key(|(t, _, _)| *t);
    let events = events
        .into_iter()
        .enumerate()
        .map(|(seq, (t, lane, kind))| {
            Event::new(Time::from_nanos(t), ProcessorId(lane), seq as u64, kind)
        })
        .collect();
    (events, skipped)
}

fn lane_of(span: &SpanEvent) -> Option<u16> {
    if span.depth >= DEPTH_LANES {
        return None;
    }
    u16::try_from(span.thread as u64 * DEPTH_LANES as u64 + span.depth as u64).ok()
}

/// Writes `log` as a ppa trace of kind [`TraceKind::Measured`] in the
/// given on-disk format.
pub fn write_self_trace<W: Write>(
    writer: W,
    log: &SpanLog,
    format: TraceFormat,
) -> Result<SelfTraceSummary, IoError> {
    let (events, skipped) = spans_to_events(log);
    let mut out = AnyTraceWriter::new(writer, format, TraceKind::Measured, events.len())?;
    for event in &events {
        out.write_event(event)?;
    }
    out.finish()?;
    Ok(SelfTraceSummary {
        spans: events.len() / 2,
        skipped,
        dropped: log.dropped,
    })
}

/// Writes `log` in the Chrome trace-event format (a JSON object with a
/// `traceEvents` array of complete events, `ph: "X"`), loadable in
/// chrome://tracing and Perfetto. Every span is representable here —
/// nothing is skipped — and parent/block/seq attribution rides in
/// `args`.
pub fn write_chrome_trace<W: Write>(
    mut writer: W,
    log: &SpanLog,
) -> std::io::Result<SelfTraceSummary> {
    writer.write_all(b"{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")?;
    for (i, span) in log.events.iter().enumerate() {
        if i > 0 {
            writer.write_all(b",")?;
        }
        // Timestamps are microseconds (fractional) in this format.
        write!(
            writer,
            "\n{{\"name\":\"{}\",\"cat\":\"ppa\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\
             \"pid\":0,\"tid\":{},\"args\":{{\"id\":{}",
            span.stage.name(),
            span.start_ns / 1_000,
            span.start_ns % 1_000,
            span.duration_ns() / 1_000,
            span.duration_ns() % 1_000,
            span.thread,
            span.id,
        )?;
        if let Some(parent) = span.parent {
            write!(writer, ",\"parent\":{parent}")?;
        }
        if let Some(block) = span.block {
            write!(writer, ",\"block\":{block}")?;
        }
        if let Some(seq) = span.seq {
            write!(writer, ",\"seq\":{seq}")?;
        }
        writer.write_all(b"}}")?;
    }
    writer.write_all(b"\n]}\n")?;
    writer.flush()?;
    Ok(SelfTraceSummary {
        spans: log.events.len(),
        skipped: 0,
        dropped: log.dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_obs::{Stage, STAGE_COUNT};

    fn span(
        id: u64,
        thread: u32,
        depth: u16,
        stage: Stage,
        start_ns: u64,
        end_ns: u64,
    ) -> SpanEvent {
        SpanEvent {
            id,
            parent: None,
            thread,
            depth,
            stage,
            start_ns,
            end_ns,
            block: None,
            seq: None,
        }
    }

    fn sample_log() -> SpanLog {
        SpanLog {
            events: vec![
                span(0, 0, 0, Stage::Run, 0, 1000),
                span(1, 0, 1, Stage::Decode, 10, 400),
                span(2, 0, 2, Stage::CrcVerify, 20, 100),
                span(3, 1, 0, Stage::Decode, 15, 300),
                span(4, 0, 1, Stage::AnalyzePush, 400, 900),
            ],
            dropped: 0,
            stage_ns: [0; STAGE_COUNT],
        }
    }

    #[test]
    fn export_is_totally_ordered_and_pairs_per_lane() {
        let (events, skipped) = spans_to_events(&sample_log());
        assert_eq!(skipped, 0);
        assert_eq!(events.len(), 10);
        // Strictly increasing order key, contiguous seqs from 0.
        for (i, w) in events.windows(2).enumerate() {
            assert!(w[0].order_key() < w[1].order_key(), "order at {i}");
        }
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
        // Per lane: awaits alternate B, E with matching var/tag.
        let mut open: std::collections::HashMap<ProcessorId, (SyncVarId, SyncTag)> =
            std::collections::HashMap::new();
        for e in &events {
            match e.kind {
                EventKind::AwaitBegin { var, tag } => {
                    assert!(tag.is_pre_advanced());
                    assert!(open.insert(e.proc, (var, tag)).is_none(), "nested awaitB");
                }
                EventKind::AwaitEnd { var, tag } => {
                    assert_eq!(open.remove(&e.proc), Some((var, tag)), "unmatched awaitE");
                }
                ref other => panic!("unexpected kind {other:?}"),
            }
        }
        assert!(open.is_empty(), "unclosed awaits");
    }

    #[test]
    fn too_deep_spans_are_skipped_not_clamped() {
        let mut log = sample_log();
        log.events
            .push(span(9, 0, DEPTH_LANES, Stage::Decode, 30, 40));
        let (events, skipped) = spans_to_events(&log);
        assert_eq!(skipped, 1);
        assert_eq!(events.len(), 10);
    }

    #[test]
    fn self_trace_round_trips_through_both_formats() {
        for format in [TraceFormat::Jsonl, TraceFormat::Binary] {
            let mut bytes = Vec::new();
            let summary = write_self_trace(&mut bytes, &sample_log(), format).unwrap();
            assert_eq!(summary.spans, 5);
            let reader = crate::AnyTraceReader::open(std::io::Cursor::new(bytes)).unwrap();
            assert_eq!(reader.kind(), TraceKind::Measured);
            let events: Vec<Event> = reader.map(|e| e.unwrap()).collect();
            assert_eq!(events, spans_to_events(&sample_log()).0);
        }
    }

    #[test]
    fn chrome_export_is_wellformed_json() {
        let mut log = sample_log();
        log.events[1].parent = Some(0);
        log.events[1].block = Some(3);
        log.events[1].seq = Some(4096);
        let mut bytes = Vec::new();
        write_chrome_trace(&mut bytes, &log).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let value: serde_json::Value = serde_json::from_str(&text).unwrap();
        let events = value["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 5);
        assert_eq!(events[0]["ph"].as_str(), Some("X"));
        assert_eq!(events[1]["name"].as_str(), Some("decode"));
        assert_eq!(events[1]["args"]["block"].as_u64(), Some(3));
        assert_eq!(events[1]["args"]["parent"].as_u64(), Some(0));
        // 10 ns = 0.010 us.
        assert_eq!(events[1]["ts"].as_f64(), Some(0.010));
    }

    #[test]
    fn empty_log_exports_empty_but_valid_artifacts() {
        let log = SpanLog::default();
        for format in [TraceFormat::Jsonl, TraceFormat::Binary] {
            let mut bytes = Vec::new();
            write_self_trace(&mut bytes, &log, format).unwrap();
            let reader = crate::AnyTraceReader::open(std::io::Cursor::new(bytes)).unwrap();
            assert_eq!(reader.count(), 0);
        }
        let mut bytes = Vec::new();
        write_chrome_trace(&mut bytes, &log).unwrap();
        let value: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&bytes).unwrap()).unwrap();
        assert_eq!(value["traceEvents"].as_array().unwrap().len(), 0);
    }
}
