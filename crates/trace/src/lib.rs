//! # ppa-trace — event and trace model for perturbation analysis
//!
//! Foundation crate of the *Event-Based Performance Perturbation* (Malony,
//! PPoPP '91) reproduction. It defines the vocabulary every other crate
//! speaks:
//!
//! - [`Time`]/[`Span`] — nanosecond timestamps and durations, with
//!   [`ClockRate`] to map simulator cycles to wall time;
//! - [`Event`]/[`EventKind`] — statement executions, advance/await
//!   synchronization events (`advance`, `awaitB`, `awaitE`), barrier
//!   enter/exit, and structural markers;
//! - [`Trace`] — a totally ordered event sequence with
//!   [`TraceKind`] provenance (*actual*, *measured*, or *approximated*);
//! - [`OverheadSpec`] — the measured instrumentation and synchronization
//!   costs that perturbation analysis takes as input;
//! - [`pair_sync_events`] — validation and advance/await/barrier pairing,
//!   the precondition for event-based analysis;
//! - JSONL/CSV trace I/O and a fluent [`TraceBuilder`] for tests.
//!
//! The central idea of the paper, restated in this crate's types: an
//! instrumented run yields a [`TraceKind::Measured`] trace whose times (and
//! possibly event order) are perturbed; perturbation analysis maps it to a
//! [`TraceKind::Approximated`] trace that should resemble the
//! [`TraceKind::Actual`] one.

#![warn(missing_docs)]

mod buffer;
mod builder;
pub mod codec;
mod event;
mod gap;
mod ids;
mod io;
mod overhead;
mod reorder;
pub mod selftrace;
mod stream;
mod time;
mod trace;
mod validate;

pub use buffer::{apply_buffers, BoundedBuffer, OverflowPolicy};
pub use builder::TraceBuilder;
pub use codec::{
    crc32, crc32_chain, read_binary, read_binary_parallel, read_trace, read_trace_parallel,
    write_binary, write_trace, AnyTraceReader, AnyTraceWriter, BinaryTraceReader,
    BinaryTraceWriter, BlockSummary, ParallelBinaryReader, TraceFormat, BINARY_FORMAT_NAME,
    BINARY_MAGIC, DEFAULT_BLOCK_EVENTS,
};
pub use event::{Event, EventKind, REPEAT_MAX_PATTERN};
pub use gap::{GapCause, TraceGap};
pub use ids::{
    BarrierId, LockId, LoopId, ProcessorId, SemId, StatementId, SyncTag, SyncVarId, TaskId,
};
pub use io::{read_jsonl, write_csv, write_jsonl, IoError};
pub use overhead::OverheadSpec;
pub use reorder::{ReorderBuffer, ReorderSnapshot};
pub use selftrace::{
    spans_to_events, write_chrome_trace, write_self_trace, SelfTraceSummary, DEPTH_LANES,
};
pub use stream::{
    split_by_processor, MergedStreams, Shard, StreamProbes, TraceStreamReader, TraceStreamWriter,
};
pub use time::{ClockRate, Span, Time};
pub use trace::{merge_streams, Trace, TraceKind};
pub use validate::{
    pair_sync_events, pair_sync_events_strict, AwaitPair, BarrierEpisode, EpisodeFamily,
    EpisodePair, SyncIndex, TraceError,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_kind() -> impl Strategy<Value = EventKind> {
        prop_oneof![
            (0u32..8).prop_map(|s| EventKind::Statement {
                stmt: StatementId(s)
            }),
            Just(EventKind::ProgramBegin),
            (0u32..4, 0u64..16).prop_map(|(l, i)| EventKind::IterationBegin {
                loop_id: LoopId(l),
                iter: i
            }),
        ]
    }

    fn arb_event() -> impl Strategy<Value = Event> {
        (0u64..10_000, 0u16..8, 0u64..1_000, arb_kind())
            .prop_map(|(t, p, s, k)| Event::new(Time::from_nanos(t), ProcessorId(p), s, k))
    }

    proptest! {
        /// `Trace::from_events` always yields a total order and never loses
        /// or duplicates events.
        #[test]
        fn from_events_is_an_ordered_permutation(events in proptest::collection::vec(arb_event(), 0..200)) {
            let trace = Trace::from_events(TraceKind::Measured, events.clone());
            prop_assert!(trace.is_totally_ordered());
            prop_assert_eq!(trace.len(), events.len());

            let mut expected = events;
            expected.sort_by_key(Event::order_key);
            prop_assert_eq!(trace.events(), expected.as_slice());
        }

        /// Merging per-processor streams equals sorting the concatenation.
        #[test]
        fn merge_equals_global_sort(events in proptest::collection::vec(arb_event(), 0..200)) {
            // Split events into per-processor streams, each sorted.
            let mut streams: std::collections::BTreeMap<ProcessorId, Vec<Event>> = Default::default();
            for e in &events {
                streams.entry(e.proc).or_default().push(*e);
            }
            let streams: Vec<Vec<Event>> = streams
                .into_values()
                .map(|mut v| { v.sort_by_key(Event::order_key); v })
                .collect();

            let merged = merge_streams(TraceKind::Measured, streams);
            let direct = Trace::from_events(TraceKind::Measured, events);
            prop_assert_eq!(merged.events(), direct.events());
        }

        /// JSONL round-trips arbitrary traces losslessly.
        #[test]
        fn jsonl_round_trips(events in proptest::collection::vec(arb_event(), 0..64)) {
            let trace = Trace::from_events(TraceKind::Approximated, events);
            let mut buf = Vec::new();
            write_jsonl(&trace, &mut buf).unwrap();
            let back = read_jsonl(buf.as_slice()).unwrap();
            prop_assert_eq!(trace, back);
        }

        /// `ppa-trace-bin-v1` round-trips arbitrary traces losslessly,
        /// through both the serial and the block-parallel decoder.
        #[test]
        fn binary_round_trips(events in proptest::collection::vec(arb_event(), 0..64)) {
            let trace = Trace::from_events(TraceKind::Approximated, events);
            let mut buf = Vec::new();
            write_binary(&trace, &mut buf).unwrap();
            let back = read_binary(buf.as_slice()).unwrap();
            prop_assert_eq!(&trace, &back);
            let parallel = read_binary_parallel(buf.as_slice(), 4).unwrap();
            prop_assert_eq!(&trace, &parallel);
        }

        /// Decoding a trace from its binary encoding equals decoding it
        /// from its JSONL encoding, through the auto-detecting reader.
        #[test]
        fn binary_decode_equals_jsonl_decode(events in proptest::collection::vec(arb_event(), 0..64)) {
            let trace = Trace::from_events(TraceKind::Measured, events);
            let (mut jl, mut bin) = (Vec::new(), Vec::new());
            write_jsonl(&trace, &mut jl).unwrap();
            write_binary(&trace, &mut bin).unwrap();
            let from_jl = read_trace(jl.as_slice()).unwrap();
            let from_bin = read_trace(bin.as_slice()).unwrap();
            prop_assert_eq!(from_jl, from_bin);
        }

        /// For any single corrupted block, lenient decode yields exactly
        /// the serial decode minus that block's events, and the loss is
        /// fully accounted by one gap — through both binary decoders.
        #[test]
        fn lenient_decode_is_strict_decode_minus_the_corrupted_block(
            events in proptest::collection::vec(arb_event(), 48..160),
            per_block in 8usize..24,
            target in 0usize..1000,
            at in 0usize..10_000,
        ) {
            let trace = Trace::from_events(TraceKind::Measured, events);
            let mut buf = Vec::new();
            let mut w = BinaryTraceWriter::with_block_events(
                &mut buf,
                trace.kind(),
                trace.len(),
                per_block,
                StreamProbes::default(),
            )
            .unwrap();
            for e in trace.iter() {
                w.write_event(e).unwrap();
            }
            w.finish().unwrap();

            // Walk the frames to find the target block's payload bounds.
            let blocks = trace.len().div_ceil(per_block);
            let target = target % blocks;
            let mut offset = 18; // header
            let mut payload_span = (0usize, 0usize);
            let mut counts = Vec::with_capacity(blocks);
            for i in 0..blocks {
                let payload_len =
                    u32::from_le_bytes(buf[offset..offset + 4].try_into().unwrap()) as usize;
                let count =
                    u32::from_le_bytes(buf[offset + 4..offset + 8].try_into().unwrap()) as usize;
                counts.push(count);
                if i == target {
                    payload_span = (offset + 44, payload_len);
                }
                offset += 44 + payload_len;
            }
            // Corrupt one payload byte: always a CRC mismatch.
            buf[payload_span.0 + at % payload_span.1] ^= 0xff;

            let survivors: Vec<Event> = trace
                .events()
                .iter()
                .enumerate()
                .filter(|(i, _)| i / per_block != target)
                .map(|(_, e)| *e)
                .collect();

            let mut serial = BinaryTraceReader::new(buf.as_slice()).unwrap();
            serial.set_lenient(true);
            let got: Vec<Event> = serial.by_ref().map(|e| e.unwrap()).collect();
            prop_assert_eq!(&got, &survivors);
            prop_assert_eq!(serial.gaps().len(), 1);
            prop_assert_eq!(serial.gaps()[0].block, target + 1);
            prop_assert_eq!(serial.events_lost(), counts[target] as u64);
            prop_assert_eq!(got.len() + counts[target], trace.len());

            let mut parallel = ParallelBinaryReader::new(buf.as_slice(), 4).unwrap();
            parallel.set_lenient(true);
            let got: Vec<Event> = parallel.by_ref().map(|e| e.unwrap()).collect();
            prop_assert_eq!(&got, &survivors);
            prop_assert_eq!(parallel.events_lost(), counts[target] as u64);
        }

        /// A dropped (whole, excised) block leaves exactly the other
        /// blocks' events, with the loss accounted as a truncation gap.
        #[test]
        fn lenient_decode_accounts_a_dropped_block(
            events in proptest::collection::vec(arb_event(), 48..160),
            per_block in 8usize..24,
            target in 0usize..1000,
        ) {
            let trace = Trace::from_events(TraceKind::Measured, events);
            let mut buf = Vec::new();
            let mut w = BinaryTraceWriter::with_block_events(
                &mut buf,
                trace.kind(),
                trace.len(),
                per_block,
                StreamProbes::default(),
            )
            .unwrap();
            for e in trace.iter() {
                w.write_event(e).unwrap();
            }
            w.finish().unwrap();

            let blocks = trace.len().div_ceil(per_block);
            let target = target % blocks;
            let mut offset = 18;
            let mut excised = (0usize, 0usize);
            let mut dropped_count = 0usize;
            for i in 0..blocks {
                let payload_len =
                    u32::from_le_bytes(buf[offset..offset + 4].try_into().unwrap()) as usize;
                let count =
                    u32::from_le_bytes(buf[offset + 4..offset + 8].try_into().unwrap()) as usize;
                if i == target {
                    excised = (offset, 44 + payload_len);
                    dropped_count = count;
                }
                offset += 44 + payload_len;
            }
            buf.drain(excised.0..excised.0 + excised.1);

            let survivors: Vec<Event> = trace
                .events()
                .iter()
                .enumerate()
                .filter(|(i, _)| i / per_block != target)
                .map(|(_, e)| *e)
                .collect();

            let mut r = BinaryTraceReader::new(buf.as_slice()).unwrap();
            r.set_lenient(true);
            let got: Vec<Event> = r.by_ref().map(|e| e.unwrap()).collect();
            prop_assert_eq!(&got, &survivors);
            prop_assert_eq!(r.events_lost(), dropped_count as u64);
            prop_assert_eq!(got.len() + dropped_count, trace.len());
        }

        /// Seeking with `set_skip_events` yields exactly the suffix, for
        /// every skip point and both binary decoders.
        #[test]
        fn skip_events_yields_the_exact_suffix(
            events in proptest::collection::vec(arb_event(), 16..96),
            per_block in 4usize..16,
            skip in 0usize..96,
        ) {
            let trace = Trace::from_events(TraceKind::Measured, events);
            let skip = skip % (trace.len() + 1);
            let mut buf = Vec::new();
            let mut w = BinaryTraceWriter::with_block_events(
                &mut buf,
                trace.kind(),
                trace.len(),
                per_block,
                StreamProbes::default(),
            )
            .unwrap();
            for e in trace.iter() {
                w.write_event(e).unwrap();
            }
            w.finish().unwrap();

            let expected = &trace.events()[skip..];
            let mut r = BinaryTraceReader::new(buf.as_slice()).unwrap();
            r.set_skip_events(skip as u64);
            let got: Vec<Event> = r.map(|e| e.unwrap()).collect();
            prop_assert_eq!(got.as_slice(), expected);

            let mut r = ParallelBinaryReader::new(buf.as_slice(), 3).unwrap();
            r.set_skip_events(skip as u64);
            let got: Vec<Event> = r.map(|e| e.unwrap()).collect();
            prop_assert_eq!(got.as_slice(), expected);
        }

        /// Rebasing preserves all pairwise gaps.
        #[test]
        fn rebase_preserves_gaps(events in proptest::collection::vec(arb_event(), 1..100)) {
            let trace = Trace::from_events(TraceKind::Actual, events);
            let total_before = trace.total_time();
            let rebased = trace.rebase_to_zero();
            prop_assert_eq!(rebased.start_time(), Some(Time::ZERO));
            prop_assert_eq!(rebased.total_time(), total_before);
        }

        /// Windowing laws: a window and its complement partition the
        /// trace, and windowing is idempotent.
        #[test]
        fn window_partitions_the_trace(
            events in proptest::collection::vec(arb_event(), 0..150),
            cut in 0u64..10_000,
        ) {
            let trace = Trace::from_events(TraceKind::Measured, events);
            let cut = Time::from_nanos(cut);
            let lo = trace.window(Time::ZERO, cut);
            let hi = trace.window(cut, Time::MAX);
            prop_assert_eq!(lo.len() + hi.len(), trace.len());
            prop_assert!(lo.iter().all(|e| e.time < cut));
            prop_assert!(hi.iter().all(|e| e.time >= cut));
            // Idempotence.
            let again = lo.window(Time::ZERO, cut);
            prop_assert_eq!(lo.events(), again.events());
        }

        /// Per-processor filters partition the trace.
        #[test]
        fn proc_filters_partition(events in proptest::collection::vec(arb_event(), 0..150)) {
            let trace = Trace::from_events(TraceKind::Actual, events);
            let total: usize = trace
                .processors()
                .into_iter()
                .map(|p| trace.filter_proc(p).len())
                .sum();
            prop_assert_eq!(total, trace.len());
        }

        /// Bounded buffers never exceed capacity and account every drop.
        #[test]
        fn buffers_account_everything(
            events in proptest::collection::vec(arb_event(), 0..200),
            capacity in 1usize..64,
        ) {
            let trace = Trace::from_events(TraceKind::Measured, events);
            for policy in [OverflowPolicy::DropNewest, OverflowPolicy::DropOldest] {
                let (kept, dropped) = apply_buffers(&trace, capacity, policy);
                prop_assert_eq!(kept.len() as u64 + dropped, trace.len() as u64);
                // No processor keeps more than the capacity.
                let mut per_proc: std::collections::BTreeMap<ProcessorId, usize> =
                    Default::default();
                for e in &kept {
                    *per_proc.entry(e.proc).or_default() += 1;
                }
                prop_assert!(per_proc.values().all(|&n| n <= capacity));
            }
        }

        /// Time arithmetic: (t + s) - s == t and (t + s) - t == s.
        #[test]
        fn time_span_inverse(t in 0u64..u32::MAX as u64, s in 0u64..u32::MAX as u64) {
            let time = Time::from_nanos(t);
            let span = Span::from_nanos(s);
            prop_assert_eq!((time + span) - span, time);
            prop_assert_eq!((time + span) - time, span);
        }
    }
}
