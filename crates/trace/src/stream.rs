//! Streaming trace I/O: bounded-memory JSONL reading and writing,
//! per-processor shard splitting, and k-way order-preserving merging.
//!
//! [`read_jsonl`](crate::read_jsonl)/[`write_jsonl`](crate::write_jsonl)
//! materialize whole traces; the types here process one event at a time so
//! a trace never has to fit in memory:
//!
//! - [`TraceStreamReader`] iterates the events of a JSONL trace without
//!   collecting them (the same format, errors, and line numbering as
//!   [`read_jsonl`](crate::read_jsonl));
//! - [`TraceStreamWriter`] emits the JSONL format incrementally and
//!   byte-identically to [`write_jsonl`](crate::write_jsonl);
//! - [`split_by_processor`] fans a stream out into one shard per
//!   processor, holding only the shard writers;
//! - [`MergedStreams`] performs a k-way merge of sorted event streams
//!   (e.g. shards) back into the global total order, holding one
//!   lookahead event per stream.
//!
//! Splitting then merging round-trips exactly: per-processor subsequences
//! preserve the total order, and the merge is stable (ties in
//! [`Event::order_key`] resolve in stream-index order).

use crate::event::Event;
use crate::ids::ProcessorId;
use crate::io::{Header, IoError, FORMAT_NAME};
use crate::trace::TraceKind;
use ppa_obs::{Counter, Registry};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Observability probes for streaming trace I/O.
///
/// Readers and writers carry one of these; the default
/// ([`StreamProbes::noop`]) is fully detached and costs one branch per
/// record, so unobserved streams pay essentially nothing. Attach real
/// metrics with [`StreamProbes::register`].
#[derive(Clone, Debug, Default)]
pub struct StreamProbes {
    /// Payload bytes processed (`ppa_stream_bytes_total`). For readers
    /// this counts consumed lines including their newline; for writers,
    /// bytes flushed to the underlying sink (header included).
    pub bytes: Counter,
    /// Events read or written (`ppa_stream_events_total`).
    pub events: Counter,
    /// Malformed or truncated records (`ppa_stream_parse_errors_total`).
    /// For the binary codec this includes CRC-mismatched blocks.
    pub parse_errors: Counter,
    /// Binary codec blocks framed or decoded (`ppa_stream_blocks_total`).
    /// JSONL streams never touch this counter.
    pub blocks: Counter,
    /// Damaged regions skipped by a lenient reader
    /// (`ppa_stream_gaps_total`). Strict readers never touch this
    /// counter — they abort on the first damaged record instead.
    pub gaps: Counter,
    /// Events swallowed by lenient-mode gaps
    /// (`ppa_stream_events_lost_total`); the sum of
    /// [`TraceGap::events`](crate::TraceGap::events) over all recorded
    /// gaps.
    pub events_lost: Counter,
}

impl StreamProbes {
    /// Detached probes: every record is discarded.
    pub fn noop() -> Self {
        StreamProbes::default()
    }

    /// Registers the stream metrics on `registry`, labelled with the
    /// transfer direction (conventionally `"read"` or `"write"`).
    pub fn register(registry: &Registry, dir: &str) -> Self {
        let labels = [("dir", dir)];
        StreamProbes {
            bytes: registry.counter_with(
                "ppa_stream_bytes_total",
                &labels,
                "Trace stream payload bytes processed.",
            ),
            events: registry.counter_with(
                "ppa_stream_events_total",
                &labels,
                "Trace stream events processed.",
            ),
            parse_errors: registry.counter_with(
                "ppa_stream_parse_errors_total",
                &labels,
                "Malformed or truncated trace records encountered.",
            ),
            blocks: registry.counter_with(
                "ppa_stream_blocks_total",
                &labels,
                "Binary trace codec blocks framed or decoded.",
            ),
            gaps: registry.counter_with(
                "ppa_stream_gaps_total",
                &labels,
                "Damaged trace regions skipped by lenient decoding.",
            ),
            events_lost: registry.counter_with(
                "ppa_stream_events_lost_total",
                &labels,
                "Events lost to damaged trace regions in lenient decoding.",
            ),
        }
    }
}

/// A `Write` adapter that counts bytes into a probe counter.
pub(crate) struct CountingWriter<W: Write> {
    inner: W,
    bytes: Counter,
}

impl<W: Write> CountingWriter<W> {
    /// Wraps `inner`, adding every written byte to `bytes`.
    pub(crate) fn new(inner: W, bytes: Counter) -> Self {
        CountingWriter { inner, bytes }
    }

    /// Unwraps the underlying writer.
    pub(crate) fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.bytes.add(n as u64);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Incremental writer for the JSONL trace format.
///
/// Produces output byte-identical to [`write_jsonl`](crate::write_jsonl)
/// when given the same kind, event count, and events, but needs only the
/// current event in memory. The header's event count is advisory (readers
/// use it to pre-size buffers); a writer that cannot know the final count
/// up front may pass `0`.
pub struct TraceStreamWriter<W: Write> {
    sink: BufWriter<CountingWriter<W>>,
    written: usize,
    events: Counter,
}

impl<W: Write> TraceStreamWriter<W> {
    /// Starts a stream of `kind` announcing `events` upcoming events.
    pub fn new(writer: W, kind: TraceKind, events: usize) -> Result<Self, IoError> {
        Self::with_probes(writer, kind, events, StreamProbes::noop())
    }

    /// Like [`TraceStreamWriter::new`], recording bytes and events into
    /// `probes` as the stream is written.
    pub fn with_probes(
        writer: W,
        kind: TraceKind,
        events: usize,
        probes: StreamProbes,
    ) -> Result<Self, IoError> {
        let mut sink = BufWriter::new(CountingWriter::new(writer, probes.bytes));
        let header = Header {
            format: FORMAT_NAME.to_string(),
            kind,
            events,
        };
        serde_json::to_writer(&mut sink, &header).map_err(|e| IoError::Parse {
            line: 0,
            message: e.to_string(),
        })?;
        sink.write_all(b"\n")?;
        Ok(TraceStreamWriter {
            sink,
            written: 0,
            events: probes.events,
        })
    }

    /// Appends one event line.
    pub fn write_event(&mut self, event: &Event) -> Result<(), IoError> {
        serde_json::to_writer(&mut self.sink, event).map_err(|e| IoError::Parse {
            line: 0,
            message: e.to_string(),
        })?;
        self.sink.write_all(b"\n")?;
        self.written += 1;
        self.events.inc();
        Ok(())
    }

    /// Resumes an interrupted stream: wraps a sink already positioned
    /// after `written` events (header included) and continues appending
    /// event lines *without* writing a new header. The checkpoint/resume
    /// pipeline truncates the partial output to its last flushed offset
    /// and hands the re-opened file here, so the resumed stream is
    /// byte-identical to an uninterrupted one.
    pub fn resume_with_probes(writer: W, written: usize, probes: StreamProbes) -> Self {
        TraceStreamWriter {
            sink: BufWriter::new(CountingWriter::new(writer, probes.bytes)),
            written,
            events: probes.events,
        }
    }

    /// How many events have been written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Flushes buffered bytes through to the underlying writer without
    /// consuming the stream. Checkpointing calls this before recording
    /// the output's byte offset, so a resume can truncate to a prefix
    /// that is actually on disk.
    pub fn flush(&mut self) -> Result<(), IoError> {
        self.sink.flush().map_err(IoError::Io)
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(self) -> Result<W, IoError> {
        self.sink
            .into_inner()
            .map(CountingWriter::into_inner)
            .map_err(|e| IoError::Io(e.into_error()))
    }
}

/// Incremental reader for the JSONL trace format.
///
/// Parses the header eagerly, then yields one event per call through the
/// [`Iterator`] implementation — the whole trace never resides in memory.
/// Accepts exactly what [`read_jsonl`](crate::read_jsonl) accepts: blank
/// lines are skipped, malformed lines yield [`IoError::Parse`] with the
/// same 1-based line number, a missing or foreign header yields
/// [`IoError::BadHeader`], and input that ends before delivering the
/// header's declared event count yields [`IoError::Truncated`] (headers
/// with an advisory count of `0` are exempt).
pub struct TraceStreamReader<R: Read> {
    input: BufReader<R>,
    /// Reused line buffer: one allocation for the whole stream instead of
    /// a fresh `String` per event.
    buf: String,
    kind: TraceKind,
    expected: usize,
    /// 1-based number of the last line consumed (the header is line 1).
    line: usize,
    /// Events successfully yielded so far (plus resumed-past positions
    /// consumed by [`TraceStreamReader::set_skip_events`]).
    seen: usize,
    failed: bool,
    /// Skip damaged lines instead of failing; see
    /// [`TraceStreamReader::set_lenient`].
    lenient: bool,
    /// Event lines still to consume without parsing (resume support).
    skip: u64,
    gaps: Vec<crate::gap::TraceGap>,
    /// Events swallowed by the gaps recorded so far.
    lost: u64,
    probes: StreamProbes,
}

/// Reads one line into the reused buffer, stripping the trailing
/// newline (and a preceding `\r`, matching [`BufRead::lines`]). Returns
/// the raw byte count consumed, `0` at end of input.
fn read_trimmed_line<R: Read>(
    input: &mut BufReader<R>,
    buf: &mut String,
) -> std::io::Result<usize> {
    buf.clear();
    let n = input.read_line(buf)?;
    if buf.ends_with('\n') {
        buf.pop();
        if buf.ends_with('\r') {
            buf.pop();
        }
    }
    Ok(n)
}

impl<R: Read> TraceStreamReader<R> {
    /// Opens a stream, reading and validating the header line.
    pub fn new(reader: R) -> Result<Self, IoError> {
        Self::with_probes(reader, StreamProbes::noop())
    }

    /// Like [`TraceStreamReader::new`], recording bytes, events, and
    /// parse errors into `probes` as the stream is consumed.
    pub fn with_probes(reader: R, probes: StreamProbes) -> Result<Self, IoError> {
        let mut input = BufReader::new(reader);
        let mut buf = String::new();
        let n = read_trimmed_line(&mut input, &mut buf)?;
        if n == 0 {
            return Err(IoError::BadHeader("empty input".to_string()));
        }
        probes.bytes.add(n as u64);
        let header: Header =
            serde_json::from_str(&buf).map_err(|e| IoError::BadHeader(e.to_string()))?;
        if header.format != FORMAT_NAME {
            return Err(IoError::BadHeader(format!(
                "unknown format {:?}",
                header.format
            )));
        }
        Ok(TraceStreamReader {
            input,
            buf,
            kind: header.kind,
            expected: header.events,
            line: 1,
            seen: 0,
            failed: false,
            lenient: false,
            skip: 0,
            gaps: Vec::new(),
            lost: 0,
            probes,
        })
    }

    /// The trace kind announced by the header.
    pub fn kind(&self) -> TraceKind {
        self.kind
    }

    /// The event count announced by the header (advisory).
    pub fn expected_events(&self) -> usize {
        self.expected
    }

    /// Switches the reader into lenient mode: a malformed line is
    /// recorded as a one-event [`TraceGap`](crate::TraceGap) and skipped,
    /// and input ending short of the header's declared count records a
    /// [`GapCause::TruncatedStream`](crate::GapCause::TruncatedStream)
    /// gap instead of erroring. I/O errors remain fatal.
    pub fn set_lenient(&mut self, lenient: bool) {
        self.lenient = lenient;
    }

    /// Consumes the next `n` event lines without parsing them, so a
    /// resumed run can seek past the stream positions a previous run
    /// already processed (including positions that previous run lost to
    /// lenient-mode gaps — which is why the skipped lines must not be
    /// parsed).
    pub fn set_skip_events(&mut self, n: u64) {
        self.skip = n;
    }

    /// The gaps lenient decoding has recorded so far.
    pub fn gaps(&self) -> &[crate::gap::TraceGap] {
        &self.gaps
    }

    /// Total events swallowed by the recorded gaps.
    pub fn events_lost(&self) -> u64 {
        self.lost
    }

    fn record_gap(&mut self, gap: crate::gap::TraceGap) {
        self.lost += gap.events;
        self.probes.gaps.inc();
        self.probes.events_lost.add(gap.events);
        self.gaps.push(gap);
    }
}

impl<R: Read> Iterator for TraceStreamReader<R> {
    type Item = Result<Event, IoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            match read_trimmed_line(&mut self.input, &mut self.buf) {
                Ok(0) => {
                    // End of input: if the header promised more events
                    // than we delivered (or leniently lost), the file was
                    // cut off mid-stream.
                    let accounted = self.seen + self.lost as usize;
                    if self.expected > 0 && accounted < self.expected {
                        self.probes.parse_errors.inc();
                        if self.lenient {
                            self.failed = true;
                            self.record_gap(crate::gap::TraceGap {
                                block: self.line + 1,
                                events: (self.expected - accounted) as u64,
                                first_seq: None,
                                last_seq: None,
                                first_time: None,
                                last_time: None,
                                cause: crate::gap::GapCause::TruncatedStream,
                            });
                            return None;
                        }
                        self.failed = true;
                        return Some(Err(IoError::Truncated {
                            expected: self.expected,
                            got: self.seen,
                        }));
                    }
                    return None;
                }
                Ok(n) => self.probes.bytes.add(n as u64),
                Err(e) => {
                    self.failed = true;
                    return Some(Err(IoError::Io(e)));
                }
            }
            self.line += 1;
            if self.buf.trim().is_empty() {
                continue;
            }
            if self.skip > 0 {
                // A resumed-past position: the line was consumed by a
                // previous run (delivered or recorded as lost) and must
                // not be parsed again.
                self.skip -= 1;
                self.seen += 1;
                continue;
            }
            return match serde_json::from_str(&self.buf) {
                Ok(event) => {
                    self.seen += 1;
                    self.probes.events.inc();
                    Some(Ok(event))
                }
                Err(e) => {
                    self.probes.parse_errors.inc();
                    if self.lenient {
                        self.record_gap(crate::gap::TraceGap {
                            block: self.line,
                            events: 1,
                            first_seq: None,
                            last_seq: None,
                            first_time: None,
                            last_time: None,
                            cause: crate::gap::GapCause::MalformedLine,
                        });
                        continue;
                    }
                    self.failed = true;
                    Some(Err(IoError::Parse {
                        line: self.line,
                        message: e.to_string(),
                    }))
                }
            };
        }
    }
}

/// One finished per-processor shard from [`split_by_processor`].
#[derive(Debug)]
pub struct Shard<W> {
    /// The flushed sink the shard was written to.
    pub sink: W,
    /// How many events the shard holds.
    pub events: usize,
}

/// Fans a sorted event stream out into one JSONL shard per processor.
///
/// `make_sink` is called once per processor, on first sight, to open that
/// shard's output; only the shard writers are held in memory. Each shard
/// receives the processor's events in stream order, so shards of a totally
/// ordered trace are themselves totally ordered and can be recombined with
/// [`MergedStreams`]. Returns the flushed sinks with per-shard counts.
///
/// Shard headers carry an advisory event count of `0` (unknowable in a
/// single pass); readers treat the count as a buffer-sizing hint only.
pub fn split_by_processor<I, W, F>(
    events: I,
    kind: TraceKind,
    mut make_sink: F,
) -> Result<BTreeMap<ProcessorId, Shard<W>>, IoError>
where
    I: IntoIterator<Item = Result<Event, IoError>>,
    W: Write,
    F: FnMut(ProcessorId) -> Result<W, IoError>,
{
    let mut shards: BTreeMap<ProcessorId, TraceStreamWriter<W>> = BTreeMap::new();
    for event in events {
        let event = event?;
        let shard = match shards.entry(event.proc) {
            std::collections::btree_map::Entry::Occupied(o) => o.into_mut(),
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(TraceStreamWriter::new(make_sink(event.proc)?, kind, 0)?)
            }
        };
        shard.write_event(&event)?;
    }
    let mut out = BTreeMap::new();
    for (proc, shard) in shards {
        let events = shard.written();
        out.insert(
            proc,
            Shard {
                sink: shard.finish()?,
                events,
            },
        );
    }
    Ok(out)
}

/// An entry in the merge heap: the head event of one stream.
struct Head {
    key: (crate::time::Time, u64, ProcessorId),
    stream: usize,
    event: Event,
}

impl PartialEq for Head {
    fn eq(&self, other: &Self) -> bool {
        (self.key, self.stream) == (other.key, other.stream)
    }
}
impl Eq for Head {}
impl PartialOrd for Head {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Head {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.key, self.stream).cmp(&(other.key, other.stream))
    }
}

/// K-way merge of sorted event streams into the global total order.
///
/// Holds exactly one lookahead event per live stream, so merging `k`
/// shards of an `n`-event trace takes `O(k)` memory and `O(n log k)`
/// time. Input streams must each be sorted by [`Event::order_key`].
///
/// # Tie-breaking
///
/// The merge order is fully deterministic. Events compare by
/// [`Event::order_key`] — `(time, seq, proc)` — so two events with equal
/// timestamps order by emission sequence first and processor id second,
/// regardless of which stream they arrive on. Only events whose *entire*
/// key ties (possible across independently produced streams) fall through
/// to the final tie-breaker: the lower stream index wins. This makes
/// merging per-processor shards of a trace reproduce the original trace
/// exactly (shard splitting preserves relative order).
pub struct MergedStreams<I: Iterator<Item = Result<Event, IoError>>> {
    streams: Vec<I>,
    heap: BinaryHeap<Reverse<Head>>,
    started: bool,
    pending_error: Option<IoError>,
}

impl<I: Iterator<Item = Result<Event, IoError>>> MergedStreams<I> {
    /// Prepares a merge over `streams`; no input is consumed until the
    /// first call to [`Iterator::next`].
    pub fn new(streams: Vec<I>) -> Self {
        MergedStreams {
            streams,
            heap: BinaryHeap::new(),
            started: false,
            pending_error: None,
        }
    }

    fn pull(&mut self, stream: usize) {
        match self.streams[stream].next() {
            Some(Ok(event)) => self.heap.push(Reverse(Head {
                key: event.order_key(),
                stream,
                event,
            })),
            // Surface the first error on the next pull; the stream is
            // dropped and later errors are subsumed.
            Some(Err(e)) if self.pending_error.is_none() => self.pending_error = Some(e),
            Some(Err(_)) | None => {}
        }
    }
}

impl<I: Iterator<Item = Result<Event, IoError>>> Iterator for MergedStreams<I> {
    type Item = Result<Event, IoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if !self.started {
            self.started = true;
            // The initial heap fill reads the head of every stream — the
            // bounded, I/O-heavy part of the k-way merge.
            let _span = ppa_obs::span_enter(ppa_obs::Stage::Merge);
            for i in 0..self.streams.len() {
                self.pull(i);
            }
        }
        if let Some(e) = self.pending_error.take() {
            return Some(Err(e));
        }
        let Reverse(head) = self.heap.pop()?;
        self.pull(head.stream);
        if let Some(e) = self.pending_error.take() {
            // Deliver errors as soon as discovered, ahead of buffered events.
            self.heap.push(Reverse(Head {
                key: head.key,
                stream: head.stream,
                event: head.event,
            }));
            return Some(Err(e));
        }
        Some(Ok(head.event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::io::{read_jsonl, write_jsonl};
    use crate::trace::Trace;

    fn sample() -> Trace {
        TraceBuilder::measured()
            .on(0)
            .at(10)
            .stmt(0)
            .at(40)
            .advance(0, 0)
            .at(90)
            .stmt(1)
            .on(1)
            .at(20)
            .stmt(2)
            .at(50)
            .await_begin(0, 0)
            .at(60)
            .await_end(0, 0)
            .on(2)
            .at(30)
            .stmt(3)
            .at(70)
            .stmt(4)
            .build()
    }

    #[test]
    fn writer_is_byte_identical_to_write_jsonl() {
        let t = sample();
        let mut batch = Vec::new();
        write_jsonl(&t, &mut batch).unwrap();

        let mut w = TraceStreamWriter::new(Vec::new(), t.kind(), t.len()).unwrap();
        for e in t.iter() {
            w.write_event(e).unwrap();
        }
        assert_eq!(w.written(), t.len());
        let streamed = w.finish().unwrap();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn reader_round_trips() {
        let t = sample();
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();

        let r = TraceStreamReader::new(buf.as_slice()).unwrap();
        assert_eq!(r.kind(), t.kind());
        assert_eq!(r.expected_events(), t.len());
        let events: Vec<Event> = r.map(|e| e.unwrap()).collect();
        assert_eq!(events, t.events());
    }

    #[test]
    fn reader_rejects_bad_header() {
        assert!(matches!(
            TraceStreamReader::new(&b""[..]),
            Err(IoError::BadHeader(_))
        ));
        let foreign = br#"{"format":"other","kind":"Measured","events":0}"#;
        assert!(matches!(
            TraceStreamReader::new(&foreign[..]),
            Err(IoError::BadHeader(_))
        ));
    }

    #[test]
    fn reader_reports_parse_errors_with_read_jsonl_line_numbers() {
        let mut buf = Vec::new();
        write_jsonl(&sample(), &mut buf).unwrap();
        buf.extend_from_slice(b"{not json}\n");
        let n = sample().len();

        let batch_line = match read_jsonl(buf.as_slice()) {
            Err(IoError::Parse { line, .. }) => line,
            other => panic!("expected parse error, got {other:?}"),
        };
        let mut r = TraceStreamReader::new(buf.as_slice()).unwrap();
        for _ in 0..n {
            r.next().unwrap().unwrap();
        }
        match r.next() {
            Some(Err(IoError::Parse { line, .. })) => assert_eq!(line, batch_line),
            other => panic!("expected parse error, got {other:?}"),
        }
        // A failed reader fuses.
        assert!(r.next().is_none());
    }

    #[test]
    fn reader_skips_blank_lines() {
        let mut buf = Vec::new();
        write_jsonl(&sample(), &mut buf).unwrap();
        buf.extend_from_slice(b"\n\n");
        let r = TraceStreamReader::new(buf.as_slice()).unwrap();
        assert_eq!(r.count(), sample().len());
    }

    #[test]
    fn split_then_merge_reproduces_the_trace() {
        let t = sample();
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();

        let reader = TraceStreamReader::new(buf.as_slice()).unwrap();
        let shards = split_by_processor(reader, t.kind(), |_proc| Ok(Vec::new())).unwrap();
        assert_eq!(shards.len(), 3);
        let total: usize = shards.values().map(|s| s.events).sum();
        assert_eq!(total, t.len());

        // Each shard is a valid single-processor trace.
        let readers: Vec<_> = shards
            .values()
            .map(|s| TraceStreamReader::new(s.sink.as_slice()).unwrap())
            .collect();
        let merged: Vec<Event> = MergedStreams::new(readers).map(|e| e.unwrap()).collect();
        assert_eq!(merged, t.events());
    }

    #[test]
    fn merge_is_stable_across_key_ties() {
        // Two streams with an identical order key; the lower stream index
        // must win, matching a stable global sort.
        let a = TraceBuilder::measured().on(0).at(10).stmt(0).build();
        let b = TraceBuilder::measured().on(0).at(10).stmt(1).build();
        let (mut ab, mut bb) = (Vec::new(), Vec::new());
        write_jsonl(&a, &mut ab).unwrap();
        write_jsonl(&b, &mut bb).unwrap();
        let merged: Vec<Event> = MergedStreams::new(vec![
            TraceStreamReader::new(ab.as_slice()).unwrap(),
            TraceStreamReader::new(bb.as_slice()).unwrap(),
        ])
        .map(|e| e.unwrap())
        .collect();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0], a.events()[0]);
        assert_eq!(merged[1], b.events()[0]);
    }

    #[test]
    fn reader_errors_on_truncated_input() {
        let t = sample();
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        // Cut the stream after the first two event lines; the header
        // still declares the full count.
        let newlines: Vec<usize> = (0..buf.len()).filter(|&i| buf[i] == b'\n').collect();
        buf.truncate(newlines[2] + 1);

        let mut r = TraceStreamReader::new(buf.as_slice()).unwrap();
        r.next().unwrap().unwrap();
        r.next().unwrap().unwrap();
        match r.next() {
            Some(Err(IoError::Truncated { expected, got })) => {
                assert_eq!((expected, got), (t.len(), 2));
            }
            other => panic!("expected truncation error, got {other:?}"),
        }
        // A truncated reader fuses like any other failure.
        assert!(r.next().is_none());
    }

    #[test]
    fn reader_accepts_advisory_zero_count_streams() {
        // Shard headers declare 0 events; ending early is not truncation.
        let mut w = TraceStreamWriter::new(Vec::new(), TraceKind::Measured, 0).unwrap();
        for e in sample().iter().take(2) {
            w.write_event(e).unwrap();
        }
        let buf = w.finish().unwrap();
        let r = TraceStreamReader::new(buf.as_slice()).unwrap();
        assert_eq!(r.filter_map(|e| e.ok()).count(), 2);
    }

    #[test]
    fn equal_timestamps_across_processors_merge_deterministically() {
        // Same timestamp on different processors: order_key falls back to
        // emission seq, then processor id — never stream arrival order.
        use crate::event::EventKind;
        use crate::ids::StatementId;
        use crate::time::Time;
        let t = Time::from_nanos(10);
        let ev = |proc: u16, seq: u64, stmt: u32| {
            Event::new(
                t,
                ProcessorId(proc),
                seq,
                EventKind::Statement {
                    stmt: StatementId(stmt),
                },
            )
        };
        // Stream 0 carries the *higher* seq; stream order must not matter.
        let streams = vec![
            vec![Ok(ev(0, 3, 0))].into_iter(),
            vec![Ok(ev(1, 1, 1))].into_iter(),
            vec![Ok(ev(2, 2, 2))].into_iter(),
        ];
        let merged: Vec<Event> = MergedStreams::new(streams).map(|e| e.unwrap()).collect();
        let seqs: Vec<u64> = merged.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);

        // Full-key ties (same time, seq, AND proc) resolve in stream-index
        // order: the documented final tie-breaker.
        let dup = ev(0, 5, 7);
        let streams = vec![vec![Ok(ev(0, 5, 8))].into_iter(), vec![Ok(dup)].into_iter()];
        let merged: Vec<Event> = MergedStreams::new(streams).map(|e| e.unwrap()).collect();
        assert_eq!(
            merged[0].kind,
            EventKind::Statement {
                stmt: StatementId(8)
            }
        );
        assert_eq!(merged[1], dup);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn probes_count_bytes_events_and_parse_errors() {
        let t = sample();
        let registry = ppa_obs::Registry::new();

        let wp = StreamProbes::register(&registry, "write");
        let mut w =
            TraceStreamWriter::with_probes(Vec::new(), t.kind(), t.len(), wp.clone()).unwrap();
        for e in t.iter() {
            w.write_event(e).unwrap();
        }
        let buf = w.finish().unwrap();
        assert_eq!(wp.events.get(), t.len() as u64);
        assert_eq!(wp.bytes.get(), buf.len() as u64);

        let rp = StreamProbes::register(&registry, "read");
        let r = TraceStreamReader::with_probes(buf.as_slice(), rp.clone()).unwrap();
        assert_eq!(r.filter_map(|e| e.ok()).count(), t.len());
        assert_eq!(rp.events.get(), t.len() as u64);
        assert_eq!(rp.bytes.get(), buf.len() as u64);
        assert_eq!(rp.parse_errors.get(), 0);

        // Truncation and malformed lines land in the parse-error counter.
        let mut cut = buf.clone();
        let newlines: Vec<usize> = (0..cut.len()).filter(|&i| cut[i] == b'\n').collect();
        cut.truncate(newlines[1] + 1);
        let ep = StreamProbes::register(&registry, "read-truncated");
        let outcomes: Vec<_> = TraceStreamReader::with_probes(cut.as_slice(), ep.clone())
            .unwrap()
            .collect();
        assert!(matches!(
            outcomes.last(),
            Some(Err(IoError::Truncated { .. }))
        ));
        assert_eq!(ep.parse_errors.get(), 1);
    }

    #[test]
    fn merge_surfaces_stream_errors() {
        let mut buf = Vec::new();
        write_jsonl(&sample(), &mut buf).unwrap();
        buf.extend_from_slice(b"{broken\n");
        let reader = TraceStreamReader::new(buf.as_slice()).unwrap();
        let outcomes: Vec<_> = MergedStreams::new(vec![reader]).collect();
        let errors = outcomes.iter().filter(|r| r.is_err()).count();
        assert_eq!(errors, 1);
        let events = outcomes.iter().filter(|r| r.is_ok()).count();
        assert_eq!(events, sample().len());
    }
}
