//! Trace codecs: the JSONL interchange format's binary sibling
//! `ppa-trace-bin-v1`, plus format auto-detection.
//!
//! JSONL (one `serde_json` event per line) is self-describing and
//! greppable but pays a parse-and-allocate tax per event. The binary
//! format trades that for LEB128 varints with delta-encoded timestamps
//! and sequence numbers, framed into independently decodable blocks —
//! typically well under half the bytes and several times
//! the decode throughput, with block-parallel decoding on top
//! ([`ParallelBinaryReader`]).
//!
//! Every reader entry point here auto-detects the format from the first
//! bytes of the stream ([`BINARY_MAGIC`] opens a binary trace; anything
//! else is treated as JSONL), so pipelines accept either format
//! transparently:
//!
//! - [`AnyTraceReader`] — streaming reader over either format;
//! - [`AnyTraceWriter`] — streaming writer for a caller-chosen
//!   [`TraceFormat`];
//! - [`read_trace`] / [`read_trace_parallel`] — materialize a whole
//!   [`Trace`] from either format, optionally decoding binary blocks on
//!   worker threads;
//! - [`write_trace`] — write a whole [`Trace`] in a chosen format.

mod binary;
mod block;
mod varint;

pub use binary::{
    BinaryBlockReader, BinaryTraceReader, BinaryTraceWriter, ParallelBinaryReader, RawBlock,
    BINARY_FORMAT_NAME, BINARY_MAGIC, BINARY_VERSION, DEFAULT_BLOCK_EVENTS,
};
pub use block::{crc32, crc32_chain, BlockSummary};

use crate::event::Event;
use crate::gap::TraceGap;
use crate::io::IoError;
use crate::stream::{StreamProbes, TraceStreamReader, TraceStreamWriter};
use crate::trace::{Trace, TraceKind};
use std::io::{Chain, Cursor, Read, Write};

/// The on-disk trace formats the toolchain reads and writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceFormat {
    /// `ppa-trace-v1`: a JSON header line plus one JSON event per line.
    Jsonl,
    /// `ppa-trace-bin-v1`: magic-prefixed header plus framed varint
    /// blocks.
    Binary,
}

impl TraceFormat {
    /// Parses a user-facing format name (`jsonl`/`json` or
    /// `bin`/`binary`).
    pub fn parse(name: &str) -> Option<TraceFormat> {
        match name {
            "jsonl" | "json" => Some(TraceFormat::Jsonl),
            "bin" | "binary" => Some(TraceFormat::Binary),
            _ => None,
        }
    }

    /// Classifies a stream by its opening bytes: a [`BINARY_MAGIC`]
    /// prefix is binary, everything else (including short prefixes) is
    /// presumed JSONL and left to the JSONL parser to accept or reject.
    pub fn sniff(prefix: &[u8]) -> TraceFormat {
        if prefix.len() >= BINARY_MAGIC.len() && prefix[..BINARY_MAGIC.len()] == BINARY_MAGIC {
            TraceFormat::Binary
        } else {
            TraceFormat::Jsonl
        }
    }
}

impl std::fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFormat::Jsonl => f.write_str("jsonl"),
            TraceFormat::Binary => f.write_str("bin"),
        }
    }
}

/// The replayed-prefix reader auto-detection hands each codec: the
/// sniffed bytes, then the rest of the stream.
pub type Sniffed<R> = Chain<Cursor<Vec<u8>>, R>;

/// Streaming reader over either trace format, selected by sniffing the
/// first bytes of the stream.
///
/// Presents the union of the per-format reader APIs ([`kind`],
/// [`expected_events`], the event [`Iterator`]) so pipelines accept both
/// formats transparently. Binary input decodes serially by default; open
/// with [`AnyTraceReader::open_parallel`] to decode binary blocks on
/// worker threads instead (JSONL input is unaffected — it has no
/// parallel decode path).
///
/// [`kind`]: AnyTraceReader::kind
/// [`expected_events`]: AnyTraceReader::expected_events
pub enum AnyTraceReader<R: Read> {
    /// A detected `ppa-trace-v1` JSONL stream.
    Jsonl(TraceStreamReader<Sniffed<R>>),
    /// A detected `ppa-trace-bin-v1` stream, decoded serially.
    Binary(BinaryTraceReader<Sniffed<R>>),
    /// A detected `ppa-trace-bin-v1` stream, decoded block-parallel.
    /// Boxed: the pipelined reader carries channel endpoints and
    /// reassembly buffers that dwarf the other variants.
    BinaryParallel(Box<ParallelBinaryReader<Sniffed<R>>>),
}

/// Reads up to `BINARY_MAGIC.len()` bytes and rebuilds a full stream
/// that replays them.
fn sniff_stream<R: Read>(mut reader: R) -> Result<(TraceFormat, Sniffed<R>), IoError> {
    let mut prefix = vec![0u8; BINARY_MAGIC.len()];
    let mut filled = 0;
    while filled < prefix.len() {
        match reader.read(&mut prefix[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(IoError::Io(e)),
        }
    }
    prefix.truncate(filled);
    let format = TraceFormat::sniff(&prefix);
    Ok((format, Cursor::new(prefix).chain(reader)))
}

impl<R: Read> AnyTraceReader<R> {
    /// Opens a trace stream of either format (serial binary decode).
    pub fn open(reader: R) -> Result<Self, IoError> {
        Self::with_probes(reader, StreamProbes::noop())
    }

    /// Like [`AnyTraceReader::open`], with stream probes.
    pub fn with_probes(reader: R, probes: StreamProbes) -> Result<Self, IoError> {
        let (format, stream) = sniff_stream(reader)?;
        Ok(match format {
            TraceFormat::Jsonl => {
                AnyTraceReader::Jsonl(TraceStreamReader::with_probes(stream, probes)?)
            }
            TraceFormat::Binary => {
                AnyTraceReader::Binary(BinaryTraceReader::with_probes(stream, probes)?)
            }
        })
    }

    /// Opens a trace stream of either format, decoding binary blocks on
    /// up to `workers` threads. JSONL input falls back to the ordinary
    /// serial reader.
    pub fn open_parallel(reader: R, workers: usize) -> Result<Self, IoError> {
        Self::open_parallel_with_probes(reader, workers, StreamProbes::noop())
    }

    /// Like [`AnyTraceReader::open_parallel`], with stream probes.
    pub fn open_parallel_with_probes(
        reader: R,
        workers: usize,
        probes: StreamProbes,
    ) -> Result<Self, IoError> {
        let (format, stream) = sniff_stream(reader)?;
        Ok(match format {
            TraceFormat::Jsonl => {
                AnyTraceReader::Jsonl(TraceStreamReader::with_probes(stream, probes)?)
            }
            TraceFormat::Binary => AnyTraceReader::BinaryParallel(Box::new(
                ParallelBinaryReader::with_probes(stream, workers, probes)?,
            )),
        })
    }

    /// Which format the stream was detected as.
    pub fn format(&self) -> TraceFormat {
        match self {
            AnyTraceReader::Jsonl(_) => TraceFormat::Jsonl,
            AnyTraceReader::Binary(_) | AnyTraceReader::BinaryParallel(_) => TraceFormat::Binary,
        }
    }

    /// The trace kind announced by the header.
    pub fn kind(&self) -> TraceKind {
        match self {
            AnyTraceReader::Jsonl(r) => r.kind(),
            AnyTraceReader::Binary(r) => r.kind(),
            AnyTraceReader::BinaryParallel(r) => r.kind(),
        }
    }

    /// The event count announced by the header (advisory).
    pub fn expected_events(&self) -> usize {
        match self {
            AnyTraceReader::Jsonl(r) => r.expected_events(),
            AnyTraceReader::Binary(r) => r.expected_events(),
            AnyTraceReader::BinaryParallel(r) => r.expected_events(),
        }
    }

    /// Switches the reader into lenient mode: damaged regions are
    /// skipped and recorded as [`TraceGap`]s (query them with
    /// [`AnyTraceReader::gaps`]) instead of ending the stream with an
    /// error. For binary input a CRC-failed or malformed block loses
    /// exactly that block; for JSONL a malformed line loses one event.
    /// Truncated input of either format records a final truncation gap
    /// and ends cleanly. I/O errors remain fatal in either mode.
    pub fn set_lenient(&mut self, lenient: bool) {
        match self {
            AnyTraceReader::Jsonl(r) => r.set_lenient(lenient),
            AnyTraceReader::Binary(r) => r.set_lenient(lenient),
            AnyTraceReader::BinaryParallel(r) => r.set_lenient(lenient),
        }
    }

    /// Seeks past the first `n` stream positions — events a previous run
    /// already consumed, whether delivered or lost to lenient gaps — so
    /// a resumed analysis continues where its checkpoint left off.
    /// Binary input skips whole already-processed blocks by their frame
    /// summaries without CRC checks or decoding; JSONL input consumes
    /// (but does not parse) the skipped lines.
    pub fn set_skip_events(&mut self, n: u64) {
        match self {
            AnyTraceReader::Jsonl(r) => r.set_skip_events(n),
            AnyTraceReader::Binary(r) => r.set_skip_events(n),
            AnyTraceReader::BinaryParallel(r) => r.set_skip_events(n),
        }
    }

    /// Engages the binary block skip index's lower bound: whole blocks
    /// that end strictly before `t` are discarded without CRC checks or
    /// decoding (see [`BinaryBlockReader::set_min_time`]). The surviving
    /// stream may still begin before `t`. JSONL input has no skip index;
    /// the call is a no-op there and callers filter every event.
    pub fn set_min_time(&mut self, t: crate::time::Time) {
        match self {
            AnyTraceReader::Jsonl(_) => {}
            AnyTraceReader::Binary(r) => r.set_min_time(t),
            AnyTraceReader::BinaryParallel(r) => r.set_min_time(t),
        }
    }

    /// Engages the binary block skip index's exclusive upper bound:
    /// whole blocks that begin at or past `t` are discarded undecoded
    /// (see [`BinaryBlockReader::set_max_time`]). No-op for JSONL input.
    pub fn set_max_time(&mut self, t: crate::time::Time) {
        match self {
            AnyTraceReader::Jsonl(_) => {}
            AnyTraceReader::Binary(r) => r.set_max_time(t),
            AnyTraceReader::BinaryParallel(r) => r.set_max_time(t),
        }
    }

    /// How many blocks the skip index has discarded so far (always 0 for
    /// JSONL input).
    pub fn skipped_blocks(&self) -> usize {
        match self {
            AnyTraceReader::Jsonl(_) => 0,
            AnyTraceReader::Binary(r) => r.skipped_blocks(),
            AnyTraceReader::BinaryParallel(r) => r.skipped_blocks(),
        }
    }

    /// How many events were inside the blocks the skip index discarded
    /// (always 0 for JSONL input). These events are neither delivered
    /// nor lost: `delivered + events_lost() + skipped_events() ==
    /// expected` for a non-truncated stream.
    pub fn skipped_events(&self) -> u64 {
        match self {
            AnyTraceReader::Jsonl(_) => 0,
            AnyTraceReader::Binary(r) => r.skipped_events(),
            AnyTraceReader::BinaryParallel(r) => r.skipped_events(),
        }
    }

    /// The gaps lenient decoding has recorded so far.
    pub fn gaps(&self) -> &[TraceGap] {
        match self {
            AnyTraceReader::Jsonl(r) => r.gaps(),
            AnyTraceReader::Binary(r) => r.gaps(),
            AnyTraceReader::BinaryParallel(r) => r.gaps(),
        }
    }

    /// Total events swallowed by the recorded gaps.
    pub fn events_lost(&self) -> u64 {
        match self {
            AnyTraceReader::Jsonl(r) => r.events_lost(),
            AnyTraceReader::Binary(r) => r.events_lost(),
            AnyTraceReader::BinaryParallel(r) => r.events_lost(),
        }
    }
}

impl<R: Read> Iterator for AnyTraceReader<R> {
    type Item = Result<Event, IoError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            AnyTraceReader::Jsonl(r) => r.next(),
            AnyTraceReader::Binary(r) => r.next(),
            AnyTraceReader::BinaryParallel(r) => r.next(),
        }
    }
}

/// Streaming writer for a caller-chosen [`TraceFormat`].
///
/// The format-generic face of [`TraceStreamWriter`] and
/// [`BinaryTraceWriter`]: `ppa convert` and `ppa analyze --format` pick
/// the variant from a flag and drive one API.
pub enum AnyTraceWriter<W: Write> {
    /// Writes `ppa-trace-v1` JSONL.
    Jsonl(TraceStreamWriter<W>),
    /// Writes `ppa-trace-bin-v1`.
    Binary(BinaryTraceWriter<W>),
}

impl<W: Write> AnyTraceWriter<W> {
    /// Starts a stream of `kind` in `format`, announcing `events`
    /// upcoming events (advisory; pass `0` when unknown).
    pub fn new(
        writer: W,
        format: TraceFormat,
        kind: TraceKind,
        events: usize,
    ) -> Result<Self, IoError> {
        Self::with_probes(writer, format, kind, events, StreamProbes::noop())
    }

    /// Like [`AnyTraceWriter::new`], with stream probes.
    pub fn with_probes(
        writer: W,
        format: TraceFormat,
        kind: TraceKind,
        events: usize,
        probes: StreamProbes,
    ) -> Result<Self, IoError> {
        Ok(match format {
            TraceFormat::Jsonl => AnyTraceWriter::Jsonl(TraceStreamWriter::with_probes(
                writer, kind, events, probes,
            )?),
            TraceFormat::Binary => AnyTraceWriter::Binary(BinaryTraceWriter::with_probes(
                writer, kind, events, probes,
            )?),
        })
    }

    /// Appends one event.
    pub fn write_event(&mut self, event: &Event) -> Result<(), IoError> {
        match self {
            AnyTraceWriter::Jsonl(w) => w.write_event(event),
            AnyTraceWriter::Binary(w) => w.write_event(event),
        }
    }

    /// Resumes an interrupted JSONL stream: wraps a sink already
    /// positioned after `written` events (header included) and continues
    /// appending without writing a new header. Only JSONL supports
    /// resumption — a binary stream's partial in-memory block cannot be
    /// reconstructed from a flushed prefix — which is why checkpointed
    /// analyses require a JSONL report.
    pub fn resume_jsonl(writer: W, written: usize, probes: StreamProbes) -> Self {
        AnyTraceWriter::Jsonl(TraceStreamWriter::resume_with_probes(
            writer, written, probes,
        ))
    }

    /// How many events have been written so far.
    pub fn written(&self) -> usize {
        match self {
            AnyTraceWriter::Jsonl(w) => w.written(),
            AnyTraceWriter::Binary(w) => w.written(),
        }
    }

    /// Flushes buffered bytes through to the underlying writer (for the
    /// binary format, only completed blocks; the partial block is framed
    /// by [`AnyTraceWriter::finish`] alone). Checkpointing flushes
    /// before recording the output offset a resume will truncate to.
    pub fn flush(&mut self) -> Result<(), IoError> {
        match self {
            AnyTraceWriter::Jsonl(w) => w.flush(),
            AnyTraceWriter::Binary(w) => w.flush(),
        }
    }

    /// Flushes (framing any partial binary block) and returns the
    /// underlying writer.
    pub fn finish(self) -> Result<W, IoError> {
        match self {
            AnyTraceWriter::Jsonl(w) => w.finish(),
            AnyTraceWriter::Binary(w) => w.finish(),
        }
    }
}

/// Writes a whole trace in the `ppa-trace-bin-v1` format.
pub fn write_binary<W: Write>(trace: &Trace, writer: W) -> Result<(), IoError> {
    let mut w = BinaryTraceWriter::new(writer, trace.kind(), trace.len())?;
    for e in trace.iter() {
        w.write_event(e)?;
    }
    let mut inner = w.finish()?;
    inner.flush()?;
    Ok(())
}

/// Reads a whole `ppa-trace-bin-v1` trace (serial decode).
pub fn read_binary<R: Read>(reader: R) -> Result<Trace, IoError> {
    let r = BinaryTraceReader::new(reader)?;
    let kind = r.kind();
    let events = r.collect::<Result<Vec<_>, _>>()?;
    Ok(Trace::from_events(kind, events))
}

/// Reads a whole `ppa-trace-bin-v1` trace, decoding blocks on up to
/// `workers` threads.
pub fn read_binary_parallel<R: Read>(reader: R, workers: usize) -> Result<Trace, IoError> {
    let r = ParallelBinaryReader::new(reader, workers)?;
    let kind = r.kind();
    let events = r.collect::<Result<Vec<_>, _>>()?;
    Ok(Trace::from_events(kind, events))
}

/// Reads a whole trace of either format, auto-detected by magic bytes.
pub fn read_trace<R: Read>(reader: R) -> Result<Trace, IoError> {
    let r = AnyTraceReader::open(reader)?;
    let kind = r.kind();
    let events = r.collect::<Result<Vec<_>, _>>()?;
    Ok(Trace::from_events(kind, events))
}

/// Reads a whole trace of either format, decoding binary blocks on up
/// to `workers` threads (JSONL input reads serially).
pub fn read_trace_parallel<R: Read>(reader: R, workers: usize) -> Result<Trace, IoError> {
    let r = AnyTraceReader::open_parallel(reader, workers)?;
    let kind = r.kind();
    let events = r.collect::<Result<Vec<_>, _>>()?;
    Ok(Trace::from_events(kind, events))
}

/// Writes a whole trace in the chosen format.
pub fn write_trace<W: Write>(trace: &Trace, writer: W, format: TraceFormat) -> Result<(), IoError> {
    match format {
        TraceFormat::Jsonl => crate::io::write_jsonl(trace, writer),
        TraceFormat::Binary => write_binary(trace, writer),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::io::write_jsonl;
    use crate::time::Time;

    fn sample() -> Trace {
        TraceBuilder::measured()
            .on(0)
            .at(10)
            .stmt(0)
            .at(40)
            .advance(0, 0)
            .at(90)
            .stmt(1)
            .on(1)
            .at(20)
            .stmt(2)
            .at(50)
            .await_begin(0, 0)
            .at(60)
            .await_end(0, 0)
            .on(2)
            .at(30)
            .stmt(3)
            .at(70)
            .stmt(4)
            .build()
    }

    /// A larger multi-block trace: `blocks` full blocks of `per_block`.
    fn blocky(per_block: usize, blocks: usize) -> (Trace, Vec<u8>) {
        use crate::event::EventKind;
        use crate::ids::{ProcessorId, StatementId};
        let events: Vec<Event> = (0..per_block * blocks)
            .map(|i| {
                Event::new(
                    Time::from_nanos(10 * i as u64),
                    ProcessorId((i % 8) as u16),
                    i as u64,
                    EventKind::Statement {
                        stmt: StatementId((i % 100) as u32),
                    },
                )
            })
            .collect();
        let t = Trace::from_events(TraceKind::Measured, events);
        let mut buf = Vec::new();
        let mut w = BinaryTraceWriter::with_block_events(
            &mut buf,
            t.kind(),
            t.len(),
            per_block,
            StreamProbes::noop(),
        )
        .unwrap();
        for e in t.iter() {
            w.write_event(e).unwrap();
        }
        w.finish().unwrap();
        (t, buf)
    }

    #[test]
    fn binary_round_trips() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(t, back);
        assert_eq!(back.kind(), TraceKind::Measured);
    }

    #[test]
    fn binary_decode_equals_jsonl_decode() {
        let t = sample();
        let (mut jl, mut bin) = (Vec::new(), Vec::new());
        write_jsonl(&t, &mut jl).unwrap();
        write_binary(&t, &mut bin).unwrap();
        assert_eq!(
            read_trace(jl.as_slice()).unwrap(),
            read_trace(bin.as_slice()).unwrap()
        );
    }

    #[test]
    fn binary_is_much_smaller_than_jsonl() {
        let (_, bin) = blocky(512, 4);
        let (t, _) = blocky(512, 4);
        let mut jl = Vec::new();
        write_jsonl(&t, &mut jl).unwrap();
        assert!(
            bin.len() * 5 < jl.len() * 2,
            "binary {} bytes vs jsonl {} bytes — expected <= 40%",
            bin.len(),
            jl.len()
        );
    }

    #[test]
    fn auto_detection_picks_the_right_codec() {
        let t = sample();
        let (mut jl, mut bin) = (Vec::new(), Vec::new());
        write_jsonl(&t, &mut jl).unwrap();
        write_binary(&t, &mut bin).unwrap();

        let r = AnyTraceReader::open(jl.as_slice()).unwrap();
        assert_eq!(r.format(), TraceFormat::Jsonl);
        assert_eq!(r.kind(), t.kind());
        assert_eq!(r.expected_events(), t.len());
        assert_eq!(r.map(|e| e.unwrap()).collect::<Vec<_>>(), t.events());

        let r = AnyTraceReader::open(bin.as_slice()).unwrap();
        assert_eq!(r.format(), TraceFormat::Binary);
        assert_eq!(r.kind(), t.kind());
        assert_eq!(r.expected_events(), t.len());
        assert_eq!(r.map(|e| e.unwrap()).collect::<Vec<_>>(), t.events());

        // Empty input falls through to the JSONL parser's BadHeader.
        assert!(matches!(
            AnyTraceReader::open(&b""[..]),
            Err(IoError::BadHeader(_))
        ));
    }

    #[test]
    fn sniff_and_parse_names() {
        assert_eq!(TraceFormat::sniff(b"PPATRBIN\x01..."), TraceFormat::Binary);
        assert_eq!(TraceFormat::sniff(b"{\"format\""), TraceFormat::Jsonl);
        assert_eq!(TraceFormat::sniff(b""), TraceFormat::Jsonl);
        assert_eq!(TraceFormat::parse("bin"), Some(TraceFormat::Binary));
        assert_eq!(TraceFormat::parse("binary"), Some(TraceFormat::Binary));
        assert_eq!(TraceFormat::parse("jsonl"), Some(TraceFormat::Jsonl));
        assert_eq!(TraceFormat::parse("csv"), None);
        assert_eq!(TraceFormat::Binary.to_string(), "bin");
    }

    #[test]
    fn parallel_decode_matches_serial() {
        let (t, buf) = blocky(64, 7);
        for workers in [1, 2, 4, 16] {
            let r = ParallelBinaryReader::new(buf.as_slice(), workers).unwrap();
            let events: Vec<Event> = r.map(|e| e.unwrap()).collect();
            assert_eq!(events, t.events(), "workers = {workers}");
        }
    }

    #[test]
    fn corrupted_block_reports_its_index_and_fuses() {
        let (_, mut buf) = blocky(64, 3);
        // Flip a payload byte inside the second block. Layout: header,
        // then per block a 44-byte frame + payload.
        let header = 18;
        let frame = 44;
        let payload_len = |buf: &[u8], at: usize| {
            u32::from_le_bytes(buf[at..at + 4].try_into().unwrap()) as usize
        };
        let b1 = header;
        let b2 = b1 + frame + payload_len(&buf, b1);
        let target = b2 + frame + 10;
        buf[target] ^= 0xff;

        let outcomes: Vec<_> = BinaryTraceReader::new(buf.as_slice()).unwrap().collect();
        assert_eq!(outcomes.iter().filter(|r| r.is_ok()).count(), 64);
        match outcomes.last() {
            Some(Err(IoError::Parse { line, message })) => {
                assert_eq!(*line, 2, "block index is reported as the line");
                assert!(message.contains("CRC"), "{message}");
            }
            other => panic!("expected CRC error, got {other:?}"),
        }

        // The parallel reader surfaces the same error at the same point.
        let outcomes: Vec<_> = ParallelBinaryReader::new(buf.as_slice(), 4)
            .unwrap()
            .collect();
        assert_eq!(outcomes.iter().filter(|r| r.is_ok()).count(), 64);
        assert!(matches!(
            outcomes.last(),
            Some(Err(IoError::Parse { line: 2, .. }))
        ));
    }

    #[test]
    fn truncated_binary_input_is_detected() {
        let (t, buf) = blocky(64, 3);
        // Cut inside the final block's payload.
        let cut = &buf[..buf.len() - 7];
        let outcomes: Vec<_> = BinaryTraceReader::new(cut).unwrap().collect();
        assert_eq!(outcomes.iter().filter(|r| r.is_ok()).count(), 128);
        match outcomes.last() {
            Some(Err(IoError::Truncated { expected, got })) => {
                assert_eq!((*expected, *got), (t.len(), 128));
            }
            other => panic!("expected truncation, got {other:?}"),
        }

        // Cut inside a frame header.
        let cut = &buf[..18 + 20];
        let outcomes: Vec<_> = BinaryTraceReader::new(cut).unwrap().collect();
        assert!(matches!(
            outcomes.last(),
            Some(Err(IoError::Truncated { .. }))
        ));

        // A whole missing block (clean frame boundary) is caught by the
        // header's declared count.
        let payload_len = u32::from_le_bytes(buf[18..22].try_into().unwrap()) as usize;
        let cut = &buf[..18 + 44 + payload_len];
        let outcomes: Vec<_> = BinaryTraceReader::new(cut).unwrap().collect();
        match outcomes.last() {
            Some(Err(IoError::Truncated { expected, got })) => {
                assert_eq!((*expected, *got), (t.len(), 64));
            }
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_and_version_are_bad_headers() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        assert!(matches!(
            BinaryTraceReader::new(&buf[..10]),
            Err(IoError::BadHeader(_))
        ));
        let mut wrong_version = buf.clone();
        wrong_version[8] = 9;
        assert!(matches!(
            BinaryTraceReader::new(wrong_version.as_slice()),
            Err(IoError::BadHeader(_))
        ));
        let mut wrong_kind = buf.clone();
        wrong_kind[9] = 7;
        assert!(matches!(
            BinaryTraceReader::new(wrong_kind.as_slice()),
            Err(IoError::BadHeader(_))
        ));
    }

    #[test]
    fn skip_index_bounds_reads_by_time() {
        let (t, buf) = blocky(64, 8); // times 0, 10, ..., 5110
        let bound = Time::from_nanos(3000);
        let mut r = BinaryTraceReader::new(buf.as_slice()).unwrap();
        r.set_min_time(bound);
        let events: Vec<Event> = r.by_ref().map(|e| e.unwrap()).collect();
        // Whole blocks strictly before the bound were skipped...
        assert!(r.skipped_blocks() >= 4, "skipped {}", r.skipped_blocks());
        // ...every event at/after the bound survived...
        let expected: Vec<&Event> = t.iter().filter(|e| e.time >= bound).collect();
        assert!(events.len() >= expected.len());
        assert_eq!(
            events.iter().filter(|e| e.time >= bound).count(),
            expected.len()
        );
        // ...and the survivors are a suffix of the trace.
        let suffix = &t.events()[t.len() - events.len()..];
        assert_eq!(events, suffix);
    }

    #[test]
    fn lenient_decode_skips_a_corrupted_block_and_records_the_gap() {
        use crate::gap::GapCause;
        let (t, mut buf) = blocky(64, 3);
        // Corrupt a payload byte of the second block.
        let header = 18;
        let frame = 44;
        let payload_len = |buf: &[u8], at: usize| {
            u32::from_le_bytes(buf[at..at + 4].try_into().unwrap()) as usize
        };
        let b2 = header + frame + payload_len(&buf, header);
        buf[b2 + frame + 10] ^= 0xff;

        let expected: Vec<Event> = t
            .events()
            .iter()
            .filter(|e| !(64..128).contains(&(e.seq as usize)))
            .copied()
            .collect();

        let mut r = BinaryTraceReader::new(buf.as_slice()).unwrap();
        r.set_lenient(true);
        let events: Vec<Event> = r.by_ref().map(|e| e.unwrap()).collect();
        assert_eq!(events, expected);
        assert_eq!(r.events_lost(), 64);
        let gaps = r.gaps();
        assert_eq!(gaps.len(), 1);
        assert_eq!(gaps[0].block, 2);
        assert_eq!(gaps[0].events, 64);
        assert_eq!(gaps[0].cause, GapCause::CrcMismatch);
        assert_eq!(gaps[0].first_seq, Some(64));
        assert_eq!(gaps[0].last_seq, Some(127));

        // The parallel decoder skips the same block with the same gap.
        let mut r = ParallelBinaryReader::new(buf.as_slice(), 4).unwrap();
        r.set_lenient(true);
        let events: Vec<Event> = r.by_ref().map(|e| e.unwrap()).collect();
        assert_eq!(events, expected);
        assert_eq!(r.gaps().len(), 1);
        assert_eq!(r.events_lost(), 64);
    }

    #[test]
    fn lenient_decode_accounts_truncated_input_as_gaps() {
        use crate::gap::GapCause;
        let (t, buf) = blocky(64, 3);
        // Cut inside the final block's payload: the block frame is known,
        // so the gap carries its exact span.
        let cut = &buf[..buf.len() - 7];
        let mut r = BinaryTraceReader::new(cut).unwrap();
        r.set_lenient(true);
        let events: Vec<Event> = r.by_ref().map(|e| e.unwrap()).collect();
        assert_eq!(events.len(), 128);
        assert_eq!(r.events_lost() as usize + events.len(), t.len());
        assert_eq!(r.gaps().last().unwrap().cause, GapCause::TruncatedBlock);

        // A whole missing final block surfaces as a truncated-stream gap
        // via the header's declared count.
        let payload_len = u32::from_le_bytes(buf[18..22].try_into().unwrap()) as usize;
        let cut = &buf[..18 + 44 + payload_len];
        let mut r = BinaryTraceReader::new(cut).unwrap();
        r.set_lenient(true);
        let events: Vec<Event> = r.by_ref().map(|e| e.unwrap()).collect();
        assert_eq!(events.len(), 64);
        assert_eq!(r.events_lost(), 128);
        assert_eq!(r.gaps().last().unwrap().cause, GapCause::TruncatedStream);
    }

    #[test]
    fn lenient_jsonl_skips_malformed_lines_without_fusing() {
        use crate::gap::GapCause;
        let t = sample();
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        // Wreck the third event line (line 4: the header is line 1).
        let newlines: Vec<usize> = (0..buf.len()).filter(|&i| buf[i] == b'\n').collect();
        buf[newlines[2] + 1..newlines[3]].fill(b'?');
        let mut r = crate::stream::TraceStreamReader::new(buf.as_slice()).unwrap();
        r.set_lenient(true);
        let events: Vec<Event> = r.by_ref().map(|e| e.unwrap()).collect();
        assert_eq!(events.len(), t.len() - 1);
        assert_eq!(r.events_lost(), 1);
        assert_eq!(r.gaps().len(), 1);
        assert_eq!(r.gaps()[0].block, 4);
        assert_eq!(r.gaps()[0].cause, GapCause::MalformedLine);
    }

    #[test]
    fn skip_index_never_double_counts_in_lenient_gap_accounting() {
        // A corrupted block that the time-bound skip index discards must
        // not surface as a lenient gap (its payload is never CRC-checked)
        // and its events must land in exactly one accounting bucket:
        // delivered + lost + skipped == expected.
        let (t, buf) = blocky(64, 8); // times 0, 10, ..., 5110
        let header = 18;
        let frame = 44;
        let payload_len = |buf: &[u8], at: usize| {
            u32::from_le_bytes(buf[at..at + 4].try_into().unwrap()) as usize
        };
        let block_start = |buf: &[u8], index: usize| {
            let mut at = header;
            for _ in 0..index {
                at += frame + payload_len(buf, at);
            }
            at
        };

        // Case 1: the corruption sits inside block 2 (times 640..1270),
        // entirely before the bound — skipped, so invisible by design.
        let bound = Time::from_nanos(3000);
        let mut wrecked = buf.clone();
        let b2 = block_start(&wrecked, 1);
        wrecked[b2 + frame + 10] ^= 0xff;
        let mut r = BinaryTraceReader::new(wrecked.as_slice()).unwrap();
        r.set_lenient(true);
        r.set_min_time(bound);
        let events: Vec<Event> = r.by_ref().map(|e| e.unwrap()).collect();
        assert!(r.gaps().is_empty(), "skipped damage must not be a gap");
        assert_eq!(r.events_lost(), 0);
        assert_eq!(r.skipped_blocks(), 4);
        assert_eq!(r.skipped_events(), 256);
        assert_eq!(
            events.len() as u64 + r.events_lost() + r.skipped_events(),
            t.len() as u64,
            "delivered + lost + skipped == expected"
        );

        // Case 2: corruption after the bound still records its gap —
        // exactly once — and the conservation law keeps holding.
        let mut wrecked = buf.clone();
        let b6 = block_start(&wrecked, 5); // times 3200..3830, past bound
        wrecked[b6 + frame + 10] ^= 0xff;
        let mut r = BinaryTraceReader::new(wrecked.as_slice()).unwrap();
        r.set_lenient(true);
        r.set_min_time(bound);
        let events: Vec<Event> = r.by_ref().map(|e| e.unwrap()).collect();
        assert_eq!(r.gaps().len(), 1);
        assert_eq!(r.gaps()[0].block, 6);
        assert_eq!(r.events_lost(), 64);
        assert_eq!(r.skipped_events(), 256);
        assert_eq!(
            events.len() as u64 + r.events_lost() + r.skipped_events(),
            t.len() as u64,
            "delivered + lost + skipped == expected"
        );
    }

    #[test]
    fn skip_events_seeks_to_the_same_suffix_in_every_reader() {
        let (t, bin) = blocky(64, 4);
        let mut jl = Vec::new();
        write_jsonl(&t, &mut jl).unwrap();
        // Skips landing on and off block boundaries, plus degenerate ends.
        for skip in [0usize, 1, 63, 64, 65, 128, 200, 255, 256] {
            let expected = &t.events()[skip..];

            let mut r = BinaryTraceReader::new(bin.as_slice()).unwrap();
            r.set_skip_events(skip as u64);
            let events: Vec<Event> = r.map(|e| e.unwrap()).collect();
            assert_eq!(events, expected, "serial, skip {skip}");

            let mut r = ParallelBinaryReader::new(bin.as_slice(), 3).unwrap();
            r.set_skip_events(skip as u64);
            let events: Vec<Event> = r.map(|e| e.unwrap()).collect();
            assert_eq!(events, expected, "parallel, skip {skip}");

            let mut r = AnyTraceReader::open(jl.as_slice()).unwrap();
            r.set_skip_events(skip as u64);
            let events: Vec<Event> = r.map(|e| e.unwrap()).collect();
            assert_eq!(events, expected, "jsonl, skip {skip}");
        }
    }

    #[test]
    fn skip_index_window_bounds_reads_on_both_sides() {
        let (t, buf) = blocky(64, 8); // times 0, 10, ..., 5110
        let since = Time::from_nanos(1500);
        let until = Time::from_nanos(3500);

        for workers in [0usize, 3] {
            let mut r = if workers == 0 {
                AnyTraceReader::open(buf.as_slice()).unwrap()
            } else {
                AnyTraceReader::open_parallel(buf.as_slice(), workers).unwrap()
            };
            r.set_min_time(since);
            r.set_max_time(until);
            let events: Vec<Event> = r.by_ref().map(|e| e.unwrap()).collect();
            // Blocks wholly outside [since, until) were skipped on both
            // sides; blocks 1-2 (ends 630/1270) and 6-8 (starts
            // 3200/3840/4480) — block 6 starts at 3200 < 3500, so 1, 2,
            // 7, 8 go, at minimum.
            assert!(r.skipped_blocks() >= 4, "skipped {}", r.skipped_blocks());
            // Every event inside the window survived.
            let wanted = t
                .iter()
                .filter(|e| e.time >= since && e.time < until)
                .count();
            assert_eq!(
                events
                    .iter()
                    .filter(|e| e.time >= since && e.time < until)
                    .count(),
                wanted,
                "workers = {workers}"
            );
            // Conservation: delivered + skipped == expected (no damage).
            assert_eq!(
                events.len() as u64 + r.skipped_events(),
                t.len() as u64,
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn max_time_skip_still_detects_truncation() {
        let (_, buf) = blocky(64, 4);
        let cut = &buf[..buf.len() - 7];
        let mut r = BinaryTraceReader::new(cut).unwrap();
        // Bound below every event: all whole blocks skip, but the
        // truncated tail must still surface.
        r.set_max_time(Time::ZERO);
        let last = r.by_ref().last();
        assert!(
            matches!(last, Some(Err(IoError::Truncated { .. }))),
            "got {last:?}"
        );
    }

    #[test]
    fn repeat_records_round_trip_in_both_formats() {
        use crate::event::EventKind;
        use crate::ids::ProcessorId;
        let events = vec![
            Event::new(
                Time::from_nanos(5),
                ProcessorId(0),
                0,
                EventKind::ProgramBegin,
            ),
            Event::new(
                Time::from_nanos(10),
                ProcessorId(1),
                1,
                EventKind::Repeat {
                    len: 3,
                    count: 1000,
                    dt_ns: 40,
                    dseq: 9,
                    dfield: -2,
                },
            ),
            Event::new(
                Time::from_nanos(900),
                ProcessorId(0),
                2,
                EventKind::ProgramEnd,
            ),
        ];
        let t = Trace::from_events(TraceKind::Measured, events);
        let (mut jl, mut bin) = (Vec::new(), Vec::new());
        write_jsonl(&t, &mut jl).unwrap();
        write_binary(&t, &mut bin).unwrap();
        assert_eq!(read_trace(jl.as_slice()).unwrap(), t);
        assert_eq!(read_trace(bin.as_slice()).unwrap(), t);
    }

    #[test]
    fn advisory_zero_count_binary_streams_accept_early_end() {
        let t = sample();
        let mut buf = Vec::new();
        let mut w = BinaryTraceWriter::new(&mut buf, t.kind(), 0).unwrap();
        for e in t.iter().take(3) {
            w.write_event(e).unwrap();
        }
        w.finish().unwrap();
        let r = BinaryTraceReader::new(buf.as_slice()).unwrap();
        assert_eq!(r.collect::<Result<Vec<_>, _>>().unwrap().len(), 3);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn probes_count_binary_bytes_events_and_blocks() {
        let registry = ppa_obs::Registry::new();
        let (t, _) = blocky(64, 4);

        let wp = StreamProbes::register(&registry, "write");
        let mut buf = Vec::new();
        let mut w =
            BinaryTraceWriter::with_block_events(&mut buf, t.kind(), t.len(), 64, wp.clone())
                .unwrap();
        for e in t.iter() {
            w.write_event(e).unwrap();
        }
        w.finish().unwrap();
        assert_eq!(wp.events.get(), t.len() as u64);
        assert_eq!(wp.blocks.get(), 4);
        assert_eq!(wp.bytes.get(), buf.len() as u64);

        let rp = StreamProbes::register(&registry, "read");
        let r = BinaryTraceReader::with_probes(buf.as_slice(), rp.clone()).unwrap();
        assert_eq!(r.filter_map(|e| e.ok()).count(), t.len());
        assert_eq!(rp.events.get(), t.len() as u64);
        assert_eq!(rp.blocks.get(), 4);
        assert_eq!(rp.bytes.get(), buf.len() as u64);
        assert_eq!(rp.parse_errors.get(), 0);

        // A corrupted block lands in the shared parse-error metric.
        let mut bad = buf.clone();
        let n = bad.len();
        bad[n - 5] ^= 0xff;
        let ep = StreamProbes::register(&registry, "read-bad");
        let _ = BinaryTraceReader::with_probes(bad.as_slice(), ep.clone())
            .unwrap()
            .count();
        assert_eq!(ep.parse_errors.get(), 1);
    }
}
