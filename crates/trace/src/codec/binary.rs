//! The `ppa-trace-bin-v1` binary trace format: writer, serial reader,
//! raw block access, and a parallel block decoder.
//!
//! A binary trace is an 18-byte header — the 8-byte magic
//! [`BINARY_MAGIC`], a format version byte, a [`TraceKind`] byte, and the
//! advisory event count as a little-endian `u64` — followed by framed
//! blocks (see [`super::block`]). Blocks are independently decodable, so:
//!
//! - [`BinaryTraceWriter`] buffers events into blocks of
//!   [`DEFAULT_BLOCK_EVENTS`] and frames each with its summary and CRC;
//! - [`BinaryTraceReader`] is the serial streaming decoder, a drop-in
//!   sibling of [`TraceStreamReader`](crate::TraceStreamReader);
//! - [`BinaryBlockReader`] yields raw framed blocks without decoding,
//!   using the frame summaries as a skip index for time-bounded reads;
//! - [`ParallelBinaryReader`] decodes batches of blocks on worker
//!   threads and stitches the results back in file (seq) order.

use super::block::{decode_block, encode_block, BlockFrame, BlockSummary, FRAME_LEN};
use crate::event::Event;
use crate::gap::{GapCause, TraceGap};
use crate::io::IoError;
use crate::stream::{CountingWriter, StreamProbes};
use crate::time::Time;
use crate::trace::TraceKind;
use std::collections::VecDeque;
use std::io::{BufWriter, Read, Write};

/// Magic bytes opening every `ppa-trace-bin-v1` file.
pub const BINARY_MAGIC: [u8; 8] = *b"PPATRBIN";

/// Format version written after the magic; the only version understood.
pub const BINARY_VERSION: u8 = 1;

/// The binary format's name, mirroring the JSONL header's `format` field.
pub const BINARY_FORMAT_NAME: &str = "ppa-trace-bin-v1";

/// Default number of events framed into one block.
///
/// Around 4K events a block is large enough to amortize the 44-byte frame
/// and the per-block thread handoff of the parallel decoder, yet small
/// enough that block-granular skipping and parallelism stay fine-grained.
pub const DEFAULT_BLOCK_EVENTS: usize = 4096;

const HEADER_LEN: usize = 18;

fn kind_to_byte(kind: TraceKind) -> u8 {
    match kind {
        TraceKind::Actual => 0,
        TraceKind::Measured => 1,
        TraceKind::Approximated => 2,
    }
}

fn kind_from_byte(b: u8) -> Option<TraceKind> {
    match b {
        0 => Some(TraceKind::Actual),
        1 => Some(TraceKind::Measured),
        2 => Some(TraceKind::Approximated),
        _ => None,
    }
}

/// Reads into `buf` until it is full or the stream ends; returns how many
/// bytes were read (a short count means EOF).
fn read_up_to<R: Read>(reader: &mut R, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

// --- Writer -------------------------------------------------------------

/// Incremental writer for the `ppa-trace-bin-v1` format.
///
/// Buffers events into blocks of a configurable size (default
/// [`DEFAULT_BLOCK_EVENTS`]) and frames each finished block with its
/// event count, first/last seq and time, and a payload CRC32. Only the
/// current block resides in memory. As with the JSONL writer, the
/// header's event count is advisory; pass `0` when it is unknown.
pub struct BinaryTraceWriter<W: Write> {
    sink: BufWriter<CountingWriter<W>>,
    block: Vec<Event>,
    block_events: usize,
    written: usize,
    events: ppa_obs::Counter,
    blocks: ppa_obs::Counter,
}

impl<W: Write> BinaryTraceWriter<W> {
    /// Starts a binary stream of `kind` announcing `events` upcoming
    /// events, with the default block size.
    pub fn new(writer: W, kind: TraceKind, events: usize) -> Result<Self, IoError> {
        Self::with_probes(writer, kind, events, StreamProbes::noop())
    }

    /// Like [`BinaryTraceWriter::new`], recording bytes, events, and
    /// blocks into `probes` as the stream is written.
    pub fn with_probes(
        writer: W,
        kind: TraceKind,
        events: usize,
        probes: StreamProbes,
    ) -> Result<Self, IoError> {
        Self::with_block_events(writer, kind, events, DEFAULT_BLOCK_EVENTS, probes)
    }

    /// Full-control constructor: `block_events` sets how many events are
    /// framed into each block (clamped to at least 1).
    pub fn with_block_events(
        writer: W,
        kind: TraceKind,
        events: usize,
        block_events: usize,
        probes: StreamProbes,
    ) -> Result<Self, IoError> {
        let mut sink = BufWriter::new(CountingWriter::new(writer, probes.bytes));
        let mut header = [0u8; HEADER_LEN];
        header[0..8].copy_from_slice(&BINARY_MAGIC);
        header[8] = BINARY_VERSION;
        header[9] = kind_to_byte(kind);
        header[10..18].copy_from_slice(&(events as u64).to_le_bytes());
        sink.write_all(&header)?;
        let block_events = block_events.max(1);
        Ok(BinaryTraceWriter {
            sink,
            block: Vec::with_capacity(block_events),
            block_events,
            written: 0,
            events: probes.events,
            blocks: probes.blocks,
        })
    }

    /// Appends one event, flushing a block whenever one fills up.
    pub fn write_event(&mut self, event: &Event) -> Result<(), IoError> {
        self.block.push(*event);
        self.written += 1;
        self.events.inc();
        if self.block.len() >= self.block_events {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<(), IoError> {
        if self.block.is_empty() {
            return Ok(());
        }
        let (frame, payload) = encode_block(&self.block);
        self.sink.write_all(&frame.to_bytes())?;
        self.sink.write_all(&payload)?;
        self.block.clear();
        self.blocks.inc();
        Ok(())
    }

    /// How many events have been written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Flushes the bytes of *completed* blocks to the underlying writer.
    /// Events of the partial in-memory block are not framed — only
    /// [`BinaryTraceWriter::finish`] does that — so a flushed prefix is a
    /// valid trace of whole blocks.
    pub fn flush(&mut self) -> Result<(), IoError> {
        self.sink.flush().map_err(IoError::Io)
    }

    /// Frames any partial block, flushes, and returns the underlying
    /// writer.
    pub fn finish(mut self) -> Result<W, IoError> {
        self.flush_block()?;
        self.sink
            .into_inner()
            .map(CountingWriter::into_inner)
            .map_err(|e| IoError::Io(e.into_error()))
    }
}

// --- Raw block reader ---------------------------------------------------

/// One framed block read from a binary trace, not yet decoded.
#[derive(Debug, Clone)]
pub struct RawBlock {
    index: usize,
    frame: BlockFrame,
    payload: Vec<u8>,
}

impl RawBlock {
    /// The block's 1-based position in the file (reported as `line` in
    /// [`IoError::Parse`] errors).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The frame summary: event count, first/last seq and time.
    pub fn summary(&self) -> BlockSummary {
        self.frame.summary
    }

    /// Verifies the payload CRC and decodes the block's events.
    pub fn decode(&self) -> Result<Vec<Event>, IoError> {
        let mut span = ppa_obs::span_enter(ppa_obs::Stage::Decode);
        span.attr_block(self.index as u64);
        span.attr_seq(self.frame.summary.first_seq);
        decode_block(&self.frame, &self.payload, self.index)
    }

    /// Classifies why [`RawBlock::decode`] failed, for gap reporting: a
    /// stored-vs-computed CRC mismatch, or payload bytes that passed the
    /// CRC but did not decode to the events the frame promised.
    pub fn gap_cause(&self) -> GapCause {
        if super::block::crc32(&self.payload) != self.frame.crc {
            GapCause::CrcMismatch
        } else {
            GapCause::MalformedPayload
        }
    }

    /// The gap record for this whole block, used when lenient decoding
    /// skips it.
    pub fn to_gap(&self, cause: GapCause) -> TraceGap {
        block_gap(self.index, self.frame.summary, cause)
    }
}

/// A gap describing `summary`'s whole block — the exact span a damaged
/// payload loses.
fn block_gap(block: usize, summary: BlockSummary, cause: GapCause) -> TraceGap {
    TraceGap {
        block,
        events: u64::from(summary.count),
        first_seq: Some(summary.first_seq),
        last_seq: Some(summary.last_seq),
        first_time: Some(summary.first_time),
        last_time: Some(summary.last_time),
        cause,
    }
}

/// Reads the framed blocks of a binary trace without decoding payloads.
///
/// This is the layer both decoders share: [`BinaryTraceReader`] decodes
/// each block inline, [`ParallelBinaryReader`] fans batches out to
/// worker threads. The frame summaries also serve as a skip index —
/// [`BinaryBlockReader::set_min_time`] makes the reader discard (read
/// but neither CRC-check nor decode) every block that ends before a
/// time bound, the cheap path for watermark-bounded re-reads.
pub struct BinaryBlockReader<R: Read> {
    input: R,
    kind: TraceKind,
    expected: usize,
    /// Events delivered (or skipped) by fully-read blocks so far.
    seen: usize,
    /// 1-based index of the next block.
    index: usize,
    min_time: Option<Time>,
    skipped_blocks: usize,
    /// Events inside blocks the skip index discarded. These are in
    /// `seen` (the blocks were fully read) but are neither delivered
    /// nor lost, so lenient accounting must treat them as a third
    /// bucket: `delivered + lost + skipped == expected`.
    skipped_events: u64,
    done: bool,
    /// Record damaged regions as gaps instead of failing; see
    /// [`BinaryBlockReader::set_lenient`].
    lenient: bool,
    /// Stream positions (events) still to skip without decoding.
    skip_events: u64,
    /// Residual partial skip inside the block just returned; consumers
    /// collect it with [`BinaryBlockReader::take_event_skip`].
    event_skip: u64,
    gaps: Vec<TraceGap>,
    /// Events swallowed by the gaps recorded so far.
    lost: u64,
    probes: StreamProbes,
}

impl<R: Read> BinaryBlockReader<R> {
    /// Opens a binary trace, reading and validating the 18-byte header.
    pub fn new(reader: R) -> Result<Self, IoError> {
        Self::with_probes(reader, StreamProbes::noop())
    }

    /// Like [`BinaryBlockReader::new`], recording bytes, blocks, and
    /// parse errors into `probes`.
    pub fn with_probes(mut reader: R, probes: StreamProbes) -> Result<Self, IoError> {
        let mut header = [0u8; HEADER_LEN];
        let got = read_up_to(&mut reader, &mut header)?;
        if got < HEADER_LEN {
            return Err(IoError::BadHeader(format!(
                "binary trace header needs {HEADER_LEN} bytes, got {got}"
            )));
        }
        if header[0..8] != BINARY_MAGIC {
            return Err(IoError::BadHeader(format!(
                "bad magic {:?} (expected {BINARY_FORMAT_NAME})",
                &header[0..8]
            )));
        }
        if header[8] != BINARY_VERSION {
            return Err(IoError::BadHeader(format!(
                "unsupported {BINARY_FORMAT_NAME} version {}",
                header[8]
            )));
        }
        let kind = kind_from_byte(header[9])
            .ok_or_else(|| IoError::BadHeader(format!("unknown trace kind byte {}", header[9])))?;
        let expected = u64::from_le_bytes(header[10..18].try_into().expect("8 bytes")) as usize;
        probes.bytes.add(HEADER_LEN as u64);
        Ok(BinaryBlockReader {
            input: reader,
            kind,
            expected,
            seen: 0,
            index: 0,
            min_time: None,
            skipped_blocks: 0,
            skipped_events: 0,
            done: false,
            lenient: false,
            skip_events: 0,
            event_skip: 0,
            gaps: Vec::new(),
            lost: 0,
            probes,
        })
    }

    /// The trace kind announced by the header.
    pub fn kind(&self) -> TraceKind {
        self.kind
    }

    /// The event count announced by the header (advisory).
    pub fn expected_events(&self) -> usize {
        self.expected
    }

    /// Engages the skip index: blocks whose `last_time` is strictly
    /// before `t` are discarded without CRC verification or decoding
    /// (their events still count toward truncation accounting). The
    /// first surviving block may begin before `t`; callers wanting an
    /// exact bound filter the leading events themselves.
    ///
    /// Skipped events are accounted separately from lenient-mode
    /// losses — a skipped block is never CRC-checked, so damage inside
    /// it is invisible and must not surface as a [`TraceGap`]. With
    /// skipping active the conservation law is
    /// `delivered + events_lost() + skipped_events() == expected`
    /// (for a stream that is not itself truncated).
    pub fn set_min_time(&mut self, t: Time) {
        self.min_time = Some(t);
    }

    /// How many blocks the skip index has discarded so far.
    pub fn skipped_blocks(&self) -> usize {
        self.skipped_blocks
    }

    /// How many events were inside the blocks the skip index discarded.
    /// These are neither delivered nor counted in [`events_lost`]; they
    /// are the third bucket of the conservation law documented on
    /// [`set_min_time`].
    ///
    /// [`events_lost`]: BinaryBlockReader::events_lost
    /// [`set_min_time`]: BinaryBlockReader::set_min_time
    pub fn skipped_events(&self) -> u64 {
        self.skipped_events
    }

    /// Switches the reader into lenient mode.
    ///
    /// Damaged regions are then recorded as [`TraceGap`]s instead of
    /// ending the stream with an error: input that ends mid-block or
    /// short of the declared count records a truncation gap and yields a
    /// clean end of stream, and a malformed frame records a gap covering
    /// the rest of the stream (a corrupt frame cannot be trusted to
    /// locate the next block, so resynchronization is impossible).
    /// Payload-level damage — CRC mismatches — is detected at decode
    /// time; decoders record those gaps through
    /// [`BinaryBlockReader::record_gap`] and keep going, skipping just
    /// the damaged block. I/O errors remain fatal in either mode.
    pub fn set_lenient(&mut self, lenient: bool) {
        self.lenient = lenient;
    }

    /// Whether the reader is in lenient mode.
    pub fn lenient(&self) -> bool {
        self.lenient
    }

    /// Seeks past the first `n` stream positions (events) using the
    /// frame summaries: whole blocks are discarded without CRC checks or
    /// decoding. When `n` lands inside a block, that block is returned
    /// normally and the leftover intra-block skip is reported through
    /// [`BinaryBlockReader::take_event_skip`] for the decoder to apply.
    /// Positions count events a previous run *consumed* — delivered or
    /// lost to lenient gaps — which is exactly the frame `count` total,
    /// so a resume never re-verifies the prefix it already processed.
    pub fn set_skip_events(&mut self, n: u64) {
        self.skip_events = n;
    }

    /// Takes the residual intra-block skip owed on the block most
    /// recently returned by [`BinaryBlockReader::next_block`] (zero when
    /// the skip ended on a block boundary). The caller must drop that
    /// many events from the front of the decoded block.
    pub fn take_event_skip(&mut self) -> u64 {
        std::mem::take(&mut self.event_skip)
    }

    /// The gaps lenient decoding has recorded so far.
    pub fn gaps(&self) -> &[TraceGap] {
        &self.gaps
    }

    /// Total events swallowed by the recorded gaps.
    pub fn events_lost(&self) -> u64 {
        self.lost
    }

    /// Records one lenient-mode gap, updating the loss accounting and
    /// the gap probes. Decoders call this for payload-level damage (CRC
    /// mismatches, malformed payloads) that only decoding can detect.
    pub fn record_gap(&mut self, gap: TraceGap) {
        self.lost += gap.events;
        self.probes.gaps.inc();
        self.probes.events_lost.add(gap.events);
        self.gaps.push(gap);
    }

    /// Ends the stream leniently, recording a gap for whatever the
    /// header still promised beyond the events already read (`seen`
    /// counts every event of every fully read block, so events a decoder
    /// separately lost to CRC gaps are not double-counted here).
    fn end_with_gap(&mut self, block: usize, cause: GapCause) -> Option<Result<RawBlock, IoError>> {
        self.done = true;
        self.probes.parse_errors.inc();
        self.record_gap(TraceGap {
            block,
            events: (self.expected as u64).saturating_sub(self.seen as u64),
            first_seq: None,
            last_seq: None,
            first_time: None,
            last_time: None,
            cause,
        });
        None
    }

    fn fail(&mut self, e: IoError) -> Option<Result<RawBlock, IoError>> {
        self.done = true;
        if !matches!(e, IoError::Io(_)) {
            self.probes.parse_errors.inc();
        }
        Some(Err(e))
    }

    fn truncated(&mut self, at_least: usize) -> Option<Result<RawBlock, IoError>> {
        let expected = self.expected.max(at_least);
        let got = self.seen;
        self.fail(IoError::Truncated { expected, got })
    }

    /// Reads the next frame + payload. `None` means clean end of input.
    pub fn next_block(&mut self) -> Option<Result<RawBlock, IoError>> {
        loop {
            if self.done {
                return None;
            }
            let mut frame_bytes = [0u8; FRAME_LEN];
            let got = match read_up_to(&mut self.input, &mut frame_bytes) {
                Ok(n) => n,
                Err(e) => return self.fail(IoError::Io(e)),
            };
            if got == 0 {
                // Clean end of input: complain only if the header
                // promised more events than the blocks delivered.
                if self.expected > 0 && self.seen < self.expected {
                    if self.lenient {
                        return self.end_with_gap(self.index + 1, GapCause::TruncatedStream);
                    }
                    self.done = true;
                    self.probes.parse_errors.inc();
                    return Some(Err(IoError::Truncated {
                        expected: self.expected,
                        got: self.seen,
                    }));
                }
                self.done = true;
                return None;
            }
            if got < FRAME_LEN {
                // The file ends inside a frame: a short final block.
                if self.lenient {
                    return self.end_with_gap(self.index + 1, GapCause::TruncatedStream);
                }
                return self.truncated(self.seen + 1);
            }
            self.index += 1;
            let frame = match BlockFrame::from_bytes(&frame_bytes, self.index) {
                Ok(f) => f,
                Err(e) => {
                    if self.lenient {
                        // The frame cannot be trusted to locate the next
                        // block; the rest of the stream is one gap.
                        return self.end_with_gap(self.index, GapCause::MalformedFrame);
                    }
                    return self.fail(e);
                }
            };
            let count = frame.summary.count as usize;
            let mut payload = vec![0u8; frame.payload_len as usize];
            let got = match read_up_to(&mut self.input, &mut payload) {
                Ok(n) => n,
                Err(e) => return self.fail(IoError::Io(e)),
            };
            if got < payload.len() {
                // The file ends inside this block's payload.
                if self.lenient {
                    self.done = true;
                    self.probes.parse_errors.inc();
                    let gap = block_gap(self.index, frame.summary, GapCause::TruncatedBlock);
                    self.record_gap(gap);
                    // The frame's events are accounted as lost; anything
                    // the header promised beyond them is a second gap.
                    self.seen += count;
                    if self.expected > 0 && self.seen < self.expected {
                        self.record_gap(TraceGap {
                            block: self.index + 1,
                            events: (self.expected - self.seen) as u64,
                            first_seq: None,
                            last_seq: None,
                            first_time: None,
                            last_time: None,
                            cause: GapCause::TruncatedStream,
                        });
                    }
                    return None;
                }
                return self.truncated(self.seen + count);
            }
            self.probes.bytes.add((FRAME_LEN + payload.len()) as u64);
            self.probes.blocks.inc();
            self.seen += count;
            if self.skip_events > 0 {
                // Resume seek: discard whole already-processed blocks by
                // their frame count, without CRC checks or decoding.
                if self.skip_events >= count as u64 {
                    self.skip_events -= count as u64;
                    continue;
                }
                self.event_skip = self.skip_events;
                self.skip_events = 0;
            }
            if let Some(min) = self.min_time {
                if frame.summary.last_time < min {
                    self.skipped_blocks += 1;
                    // Counted here, not as a gap: the payload was never
                    // CRC-checked, so any damage inside it is invisible
                    // and must not be mistaken for a lenient loss.
                    self.skipped_events += count as u64;
                    continue;
                }
            }
            return Some(Ok(RawBlock {
                index: self.index,
                frame,
                payload,
            }));
        }
    }
}

// --- Serial reader ------------------------------------------------------

/// Serial streaming decoder for the `ppa-trace-bin-v1` format.
///
/// The binary sibling of [`TraceStreamReader`](crate::TraceStreamReader):
/// parses the header eagerly, then yields one event per [`Iterator`]
/// call, holding at most one decoded block in memory. Error mapping
/// follows the JSONL reader's conventions — [`IoError::BadHeader`] for a
/// wrong magic or version, [`IoError::Truncated`] for input that ends
/// mid-block or short of the header's declared count, and
/// [`IoError::Parse`] (with the 1-based *block* index as `line`) for a
/// CRC mismatch or malformed payload. After an error the iterator fuses.
pub struct BinaryTraceReader<R: Read> {
    blocks: BinaryBlockReader<R>,
    pending: std::vec::IntoIter<Event>,
    failed: bool,
    probes: StreamProbes,
}

impl<R: Read> BinaryTraceReader<R> {
    /// Opens a binary stream, reading and validating the header.
    pub fn new(reader: R) -> Result<Self, IoError> {
        Self::with_probes(reader, StreamProbes::noop())
    }

    /// Like [`BinaryTraceReader::new`], recording bytes, events, blocks,
    /// and parse errors into `probes` as the stream is consumed.
    pub fn with_probes(reader: R, probes: StreamProbes) -> Result<Self, IoError> {
        let blocks = BinaryBlockReader::with_probes(reader, probes.clone())?;
        Ok(BinaryTraceReader {
            blocks,
            pending: Vec::new().into_iter(),
            failed: false,
            probes,
        })
    }

    /// The trace kind announced by the header.
    pub fn kind(&self) -> TraceKind {
        self.blocks.kind()
    }

    /// The event count announced by the header (advisory).
    pub fn expected_events(&self) -> usize {
        self.blocks.expected_events()
    }

    /// Engages the block skip index; see
    /// [`BinaryBlockReader::set_min_time`].
    pub fn set_min_time(&mut self, t: Time) {
        self.blocks.set_min_time(t);
    }

    /// How many blocks the skip index has discarded so far.
    pub fn skipped_blocks(&self) -> usize {
        self.blocks.skipped_blocks()
    }

    /// How many events were inside the skipped blocks; see
    /// [`BinaryBlockReader::skipped_events`].
    pub fn skipped_events(&self) -> u64 {
        self.blocks.skipped_events()
    }

    /// Switches the reader into lenient mode: CRC-failed or malformed
    /// blocks are skipped and recorded as [`TraceGap`]s instead of
    /// ending the stream; see [`BinaryBlockReader::set_lenient`].
    pub fn set_lenient(&mut self, lenient: bool) {
        self.blocks.set_lenient(lenient);
    }

    /// Seeks past the first `n` stream positions without decoding whole
    /// skipped blocks; see [`BinaryBlockReader::set_skip_events`].
    pub fn set_skip_events(&mut self, n: u64) {
        self.blocks.set_skip_events(n);
    }

    /// The gaps lenient decoding has recorded so far.
    pub fn gaps(&self) -> &[TraceGap] {
        self.blocks.gaps()
    }

    /// Total events swallowed by the recorded gaps.
    pub fn events_lost(&self) -> u64 {
        self.blocks.events_lost()
    }
}

impl<R: Read> Iterator for BinaryTraceReader<R> {
    type Item = Result<Event, IoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if let Some(e) = self.pending.next() {
                self.probes.events.inc();
                return Some(Ok(e));
            }
            match self.blocks.next_block()? {
                Ok(block) => match block.decode() {
                    Ok(events) => {
                        let mut it = events.into_iter();
                        for _ in 0..self.blocks.take_event_skip() {
                            it.next();
                        }
                        self.pending = it;
                    }
                    Err(e) => {
                        if self.blocks.lenient() {
                            let gap = block.to_gap(block.gap_cause());
                            self.probes.parse_errors.inc();
                            self.blocks.record_gap(gap);
                            continue;
                        }
                        self.failed = true;
                        self.probes.parse_errors.inc();
                        return Some(Err(e));
                    }
                },
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

// --- Parallel reader ----------------------------------------------------

/// Parallel block decoder for the `ppa-trace-bin-v1` format.
///
/// Reads framed blocks serially (cheap — the payload stays opaque), then
/// decodes batches of blocks on `workers` scoped threads and stitches
/// the decoded events back together in file order, which *is* seq order
/// for any writer fed a totally ordered trace. Yields exactly the event
/// sequence of [`BinaryTraceReader`] on the same input, including the
/// position of the first error, after which the iterator fuses.
///
/// Batches hold `4 * workers` blocks, so peak memory is
/// `O(workers * block_events)` decoded events.
pub struct ParallelBinaryReader<R: Read> {
    blocks: BinaryBlockReader<R>,
    workers: usize,
    queue: VecDeque<Event>,
    pending_error: Option<IoError>,
    failed: bool,
    /// Residual resume skip to drop from the next decoded block (the
    /// straddling block is always the first block of the batch in which
    /// the skip ends).
    drop_next: usize,
    probes: StreamProbes,
}

impl<R: Read> ParallelBinaryReader<R> {
    /// Opens a binary stream for parallel decoding on up to `workers`
    /// threads (clamped to at least 1).
    pub fn new(reader: R, workers: usize) -> Result<Self, IoError> {
        Self::with_probes(reader, workers, StreamProbes::noop())
    }

    /// Like [`ParallelBinaryReader::new`], with stream probes.
    pub fn with_probes(reader: R, workers: usize, probes: StreamProbes) -> Result<Self, IoError> {
        let blocks = BinaryBlockReader::with_probes(reader, probes.clone())?;
        Ok(ParallelBinaryReader {
            blocks,
            workers: workers.max(1),
            queue: VecDeque::new(),
            pending_error: None,
            failed: false,
            drop_next: 0,
            probes,
        })
    }

    /// The trace kind announced by the header.
    pub fn kind(&self) -> TraceKind {
        self.blocks.kind()
    }

    /// The event count announced by the header (advisory).
    pub fn expected_events(&self) -> usize {
        self.blocks.expected_events()
    }

    /// Switches the reader into lenient mode: CRC-failed or malformed
    /// blocks are skipped and recorded as [`TraceGap`]s instead of
    /// ending the stream; see [`BinaryBlockReader::set_lenient`].
    pub fn set_lenient(&mut self, lenient: bool) {
        self.blocks.set_lenient(lenient);
    }

    /// Seeks past the first `n` stream positions without decoding whole
    /// skipped blocks; see [`BinaryBlockReader::set_skip_events`].
    pub fn set_skip_events(&mut self, n: u64) {
        self.blocks.set_skip_events(n);
    }

    /// The gaps lenient decoding has recorded so far.
    pub fn gaps(&self) -> &[TraceGap] {
        self.blocks.gaps()
    }

    /// Total events swallowed by the recorded gaps.
    pub fn events_lost(&self) -> u64 {
        self.blocks.events_lost()
    }

    /// Reads and decodes the next batch of blocks into the queue.
    fn refill(&mut self) {
        let mut batch: Vec<RawBlock> = Vec::with_capacity(self.workers * 4);
        while batch.len() < self.workers * 4 {
            match self.blocks.next_block() {
                Some(Ok(b)) => batch.push(b),
                Some(Err(e)) => {
                    self.pending_error = Some(e);
                    break;
                }
                None => break,
            }
        }
        // A resume skip that ends mid-block surfaces here, attached to
        // the first block next_block returned after consuming the skip.
        self.drop_next += self.blocks.take_event_skip() as usize;
        if batch.is_empty() {
            return;
        }
        // One chunk of blocks per worker; each block decodes
        // independently, results return in submission order.
        let chunk = batch.len().div_ceil(self.workers);
        let mut results: Vec<Result<Vec<Event>, IoError>> = Vec::with_capacity(batch.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = batch
                .chunks(chunk)
                .map(|blocks| {
                    s.spawn(move || blocks.iter().map(RawBlock::decode).collect::<Vec<_>>())
                })
                .collect();
            for h in handles {
                results.extend(h.join().expect("block decode worker panicked"));
            }
        });
        for (block, r) in batch.iter().zip(results) {
            match r {
                Ok(events) => {
                    let drop = std::mem::take(&mut self.drop_next).min(events.len());
                    self.probes.events.add((events.len() - drop) as u64);
                    self.queue.extend(events.into_iter().skip(drop));
                }
                Err(e) => {
                    if self.blocks.lenient() {
                        // Skip just the damaged block and keep stitching.
                        let gap = block.to_gap(block.gap_cause());
                        self.probes.parse_errors.inc();
                        self.blocks.record_gap(gap);
                        continue;
                    }
                    // A decode failure precedes (in stream order) any
                    // block-reader error stashed above, and everything
                    // after the first error is dropped anyway.
                    self.probes.parse_errors.inc();
                    self.pending_error = Some(e);
                    break;
                }
            }
        }
    }
}

impl<R: Read> Iterator for ParallelBinaryReader<R> {
    type Item = Result<Event, IoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if let Some(e) = self.queue.pop_front() {
                return Some(Ok(e));
            }
            if let Some(e) = self.pending_error.take() {
                self.failed = true;
                return Some(Err(e));
            }
            self.refill();
            if self.queue.is_empty() && self.pending_error.is_none() {
                return None;
            }
        }
    }
}
