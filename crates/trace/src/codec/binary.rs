//! The `ppa-trace-bin-v1` binary trace format: writer, serial reader,
//! raw block access, and a parallel block decoder.
//!
//! A binary trace is an 18-byte header — the 8-byte magic
//! [`BINARY_MAGIC`], a format version byte, a [`TraceKind`] byte, and the
//! advisory event count as a little-endian `u64` — followed by framed
//! blocks (see [`super::block`]). Blocks are independently decodable, so:
//!
//! - [`BinaryTraceWriter`] buffers events into blocks of
//!   [`DEFAULT_BLOCK_EVENTS`] and frames each with its summary and CRC;
//! - [`BinaryTraceReader`] is the serial streaming decoder, a drop-in
//!   sibling of [`TraceStreamReader`](crate::TraceStreamReader);
//! - [`BinaryBlockReader`] yields raw framed blocks without decoding,
//!   using the frame summaries as a skip index for time-bounded reads;
//! - [`ParallelBinaryReader`] decodes batches of blocks on worker
//!   threads and stitches the results back in file (seq) order.

use super::block::{decode_block, encode_block, BlockFrame, BlockSummary, FRAME_LEN};
use crate::event::Event;
use crate::io::IoError;
use crate::stream::{CountingWriter, StreamProbes};
use crate::time::Time;
use crate::trace::TraceKind;
use std::collections::VecDeque;
use std::io::{BufWriter, Read, Write};

/// Magic bytes opening every `ppa-trace-bin-v1` file.
pub const BINARY_MAGIC: [u8; 8] = *b"PPATRBIN";

/// Format version written after the magic; the only version understood.
pub const BINARY_VERSION: u8 = 1;

/// The binary format's name, mirroring the JSONL header's `format` field.
pub const BINARY_FORMAT_NAME: &str = "ppa-trace-bin-v1";

/// Default number of events framed into one block.
///
/// Around 4K events a block is large enough to amortize the 44-byte frame
/// and the per-block thread handoff of the parallel decoder, yet small
/// enough that block-granular skipping and parallelism stay fine-grained.
pub const DEFAULT_BLOCK_EVENTS: usize = 4096;

const HEADER_LEN: usize = 18;

fn kind_to_byte(kind: TraceKind) -> u8 {
    match kind {
        TraceKind::Actual => 0,
        TraceKind::Measured => 1,
        TraceKind::Approximated => 2,
    }
}

fn kind_from_byte(b: u8) -> Option<TraceKind> {
    match b {
        0 => Some(TraceKind::Actual),
        1 => Some(TraceKind::Measured),
        2 => Some(TraceKind::Approximated),
        _ => None,
    }
}

/// Reads into `buf` until it is full or the stream ends; returns how many
/// bytes were read (a short count means EOF).
fn read_up_to<R: Read>(reader: &mut R, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

// --- Writer -------------------------------------------------------------

/// Incremental writer for the `ppa-trace-bin-v1` format.
///
/// Buffers events into blocks of a configurable size (default
/// [`DEFAULT_BLOCK_EVENTS`]) and frames each finished block with its
/// event count, first/last seq and time, and a payload CRC32. Only the
/// current block resides in memory. As with the JSONL writer, the
/// header's event count is advisory; pass `0` when it is unknown.
pub struct BinaryTraceWriter<W: Write> {
    sink: BufWriter<CountingWriter<W>>,
    block: Vec<Event>,
    block_events: usize,
    written: usize,
    events: ppa_obs::Counter,
    blocks: ppa_obs::Counter,
}

impl<W: Write> BinaryTraceWriter<W> {
    /// Starts a binary stream of `kind` announcing `events` upcoming
    /// events, with the default block size.
    pub fn new(writer: W, kind: TraceKind, events: usize) -> Result<Self, IoError> {
        Self::with_probes(writer, kind, events, StreamProbes::noop())
    }

    /// Like [`BinaryTraceWriter::new`], recording bytes, events, and
    /// blocks into `probes` as the stream is written.
    pub fn with_probes(
        writer: W,
        kind: TraceKind,
        events: usize,
        probes: StreamProbes,
    ) -> Result<Self, IoError> {
        Self::with_block_events(writer, kind, events, DEFAULT_BLOCK_EVENTS, probes)
    }

    /// Full-control constructor: `block_events` sets how many events are
    /// framed into each block (clamped to at least 1).
    pub fn with_block_events(
        writer: W,
        kind: TraceKind,
        events: usize,
        block_events: usize,
        probes: StreamProbes,
    ) -> Result<Self, IoError> {
        let mut sink = BufWriter::new(CountingWriter::new(writer, probes.bytes));
        let mut header = [0u8; HEADER_LEN];
        header[0..8].copy_from_slice(&BINARY_MAGIC);
        header[8] = BINARY_VERSION;
        header[9] = kind_to_byte(kind);
        header[10..18].copy_from_slice(&(events as u64).to_le_bytes());
        sink.write_all(&header)?;
        let block_events = block_events.max(1);
        Ok(BinaryTraceWriter {
            sink,
            block: Vec::with_capacity(block_events),
            block_events,
            written: 0,
            events: probes.events,
            blocks: probes.blocks,
        })
    }

    /// Appends one event, flushing a block whenever one fills up.
    pub fn write_event(&mut self, event: &Event) -> Result<(), IoError> {
        self.block.push(*event);
        self.written += 1;
        self.events.inc();
        if self.block.len() >= self.block_events {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<(), IoError> {
        if self.block.is_empty() {
            return Ok(());
        }
        let (frame, payload) = encode_block(&self.block);
        self.sink.write_all(&frame.to_bytes())?;
        self.sink.write_all(&payload)?;
        self.block.clear();
        self.blocks.inc();
        Ok(())
    }

    /// How many events have been written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Frames any partial block, flushes, and returns the underlying
    /// writer.
    pub fn finish(mut self) -> Result<W, IoError> {
        self.flush_block()?;
        self.sink
            .into_inner()
            .map(CountingWriter::into_inner)
            .map_err(|e| IoError::Io(e.into_error()))
    }
}

// --- Raw block reader ---------------------------------------------------

/// One framed block read from a binary trace, not yet decoded.
#[derive(Debug, Clone)]
pub struct RawBlock {
    index: usize,
    frame: BlockFrame,
    payload: Vec<u8>,
}

impl RawBlock {
    /// The block's 1-based position in the file (reported as `line` in
    /// [`IoError::Parse`] errors).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The frame summary: event count, first/last seq and time.
    pub fn summary(&self) -> BlockSummary {
        self.frame.summary
    }

    /// Verifies the payload CRC and decodes the block's events.
    pub fn decode(&self) -> Result<Vec<Event>, IoError> {
        decode_block(&self.frame, &self.payload, self.index)
    }
}

/// Reads the framed blocks of a binary trace without decoding payloads.
///
/// This is the layer both decoders share: [`BinaryTraceReader`] decodes
/// each block inline, [`ParallelBinaryReader`] fans batches out to
/// worker threads. The frame summaries also serve as a skip index —
/// [`BinaryBlockReader::set_min_time`] makes the reader discard (read
/// but neither CRC-check nor decode) every block that ends before a
/// time bound, the cheap path for watermark-bounded re-reads.
pub struct BinaryBlockReader<R: Read> {
    input: R,
    kind: TraceKind,
    expected: usize,
    /// Events delivered (or skipped) by fully-read blocks so far.
    seen: usize,
    /// 1-based index of the next block.
    index: usize,
    min_time: Option<Time>,
    skipped_blocks: usize,
    done: bool,
    probes: StreamProbes,
}

impl<R: Read> BinaryBlockReader<R> {
    /// Opens a binary trace, reading and validating the 18-byte header.
    pub fn new(reader: R) -> Result<Self, IoError> {
        Self::with_probes(reader, StreamProbes::noop())
    }

    /// Like [`BinaryBlockReader::new`], recording bytes, blocks, and
    /// parse errors into `probes`.
    pub fn with_probes(mut reader: R, probes: StreamProbes) -> Result<Self, IoError> {
        let mut header = [0u8; HEADER_LEN];
        let got = read_up_to(&mut reader, &mut header)?;
        if got < HEADER_LEN {
            return Err(IoError::BadHeader(format!(
                "binary trace header needs {HEADER_LEN} bytes, got {got}"
            )));
        }
        if header[0..8] != BINARY_MAGIC {
            return Err(IoError::BadHeader(format!(
                "bad magic {:?} (expected {BINARY_FORMAT_NAME})",
                &header[0..8]
            )));
        }
        if header[8] != BINARY_VERSION {
            return Err(IoError::BadHeader(format!(
                "unsupported {BINARY_FORMAT_NAME} version {}",
                header[8]
            )));
        }
        let kind = kind_from_byte(header[9])
            .ok_or_else(|| IoError::BadHeader(format!("unknown trace kind byte {}", header[9])))?;
        let expected = u64::from_le_bytes(header[10..18].try_into().expect("8 bytes")) as usize;
        probes.bytes.add(HEADER_LEN as u64);
        Ok(BinaryBlockReader {
            input: reader,
            kind,
            expected,
            seen: 0,
            index: 0,
            min_time: None,
            skipped_blocks: 0,
            done: false,
            probes,
        })
    }

    /// The trace kind announced by the header.
    pub fn kind(&self) -> TraceKind {
        self.kind
    }

    /// The event count announced by the header (advisory).
    pub fn expected_events(&self) -> usize {
        self.expected
    }

    /// Engages the skip index: blocks whose `last_time` is strictly
    /// before `t` are discarded without CRC verification or decoding
    /// (their events still count toward truncation accounting). The
    /// first surviving block may begin before `t`; callers wanting an
    /// exact bound filter the leading events themselves.
    pub fn set_min_time(&mut self, t: Time) {
        self.min_time = Some(t);
    }

    /// How many blocks the skip index has discarded so far.
    pub fn skipped_blocks(&self) -> usize {
        self.skipped_blocks
    }

    fn fail(&mut self, e: IoError) -> Option<Result<RawBlock, IoError>> {
        self.done = true;
        if !matches!(e, IoError::Io(_)) {
            self.probes.parse_errors.inc();
        }
        Some(Err(e))
    }

    fn truncated(&mut self, at_least: usize) -> Option<Result<RawBlock, IoError>> {
        let expected = self.expected.max(at_least);
        let got = self.seen;
        self.fail(IoError::Truncated { expected, got })
    }

    /// Reads the next frame + payload. `None` means clean end of input.
    pub fn next_block(&mut self) -> Option<Result<RawBlock, IoError>> {
        loop {
            if self.done {
                return None;
            }
            let mut frame_bytes = [0u8; FRAME_LEN];
            let got = match read_up_to(&mut self.input, &mut frame_bytes) {
                Ok(n) => n,
                Err(e) => return self.fail(IoError::Io(e)),
            };
            if got == 0 {
                // Clean end of input: complain only if the header
                // promised more events than the blocks delivered.
                self.done = true;
                if self.expected > 0 && self.seen < self.expected {
                    self.probes.parse_errors.inc();
                    return Some(Err(IoError::Truncated {
                        expected: self.expected,
                        got: self.seen,
                    }));
                }
                return None;
            }
            if got < FRAME_LEN {
                // The file ends inside a frame: a short final block.
                return self.truncated(self.seen + 1);
            }
            self.index += 1;
            let frame = match BlockFrame::from_bytes(&frame_bytes, self.index) {
                Ok(f) => f,
                Err(e) => return self.fail(e),
            };
            let count = frame.summary.count as usize;
            let mut payload = vec![0u8; frame.payload_len as usize];
            let got = match read_up_to(&mut self.input, &mut payload) {
                Ok(n) => n,
                Err(e) => return self.fail(IoError::Io(e)),
            };
            if got < payload.len() {
                // The file ends inside this block's payload.
                return self.truncated(self.seen + count);
            }
            self.probes.bytes.add((FRAME_LEN + payload.len()) as u64);
            self.probes.blocks.inc();
            self.seen += count;
            if let Some(min) = self.min_time {
                if frame.summary.last_time < min {
                    self.skipped_blocks += 1;
                    continue;
                }
            }
            return Some(Ok(RawBlock {
                index: self.index,
                frame,
                payload,
            }));
        }
    }
}

// --- Serial reader ------------------------------------------------------

/// Serial streaming decoder for the `ppa-trace-bin-v1` format.
///
/// The binary sibling of [`TraceStreamReader`](crate::TraceStreamReader):
/// parses the header eagerly, then yields one event per [`Iterator`]
/// call, holding at most one decoded block in memory. Error mapping
/// follows the JSONL reader's conventions — [`IoError::BadHeader`] for a
/// wrong magic or version, [`IoError::Truncated`] for input that ends
/// mid-block or short of the header's declared count, and
/// [`IoError::Parse`] (with the 1-based *block* index as `line`) for a
/// CRC mismatch or malformed payload. After an error the iterator fuses.
pub struct BinaryTraceReader<R: Read> {
    blocks: BinaryBlockReader<R>,
    pending: std::vec::IntoIter<Event>,
    failed: bool,
    probes: StreamProbes,
}

impl<R: Read> BinaryTraceReader<R> {
    /// Opens a binary stream, reading and validating the header.
    pub fn new(reader: R) -> Result<Self, IoError> {
        Self::with_probes(reader, StreamProbes::noop())
    }

    /// Like [`BinaryTraceReader::new`], recording bytes, events, blocks,
    /// and parse errors into `probes` as the stream is consumed.
    pub fn with_probes(reader: R, probes: StreamProbes) -> Result<Self, IoError> {
        let blocks = BinaryBlockReader::with_probes(reader, probes.clone())?;
        Ok(BinaryTraceReader {
            blocks,
            pending: Vec::new().into_iter(),
            failed: false,
            probes,
        })
    }

    /// The trace kind announced by the header.
    pub fn kind(&self) -> TraceKind {
        self.blocks.kind()
    }

    /// The event count announced by the header (advisory).
    pub fn expected_events(&self) -> usize {
        self.blocks.expected_events()
    }

    /// Engages the block skip index; see
    /// [`BinaryBlockReader::set_min_time`].
    pub fn set_min_time(&mut self, t: Time) {
        self.blocks.set_min_time(t);
    }

    /// How many blocks the skip index has discarded so far.
    pub fn skipped_blocks(&self) -> usize {
        self.blocks.skipped_blocks()
    }
}

impl<R: Read> Iterator for BinaryTraceReader<R> {
    type Item = Result<Event, IoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if let Some(e) = self.pending.next() {
                self.probes.events.inc();
                return Some(Ok(e));
            }
            match self.blocks.next_block()? {
                Ok(block) => match block.decode() {
                    Ok(events) => self.pending = events.into_iter(),
                    Err(e) => {
                        self.failed = true;
                        self.probes.parse_errors.inc();
                        return Some(Err(e));
                    }
                },
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

// --- Parallel reader ----------------------------------------------------

/// Parallel block decoder for the `ppa-trace-bin-v1` format.
///
/// Reads framed blocks serially (cheap — the payload stays opaque), then
/// decodes batches of blocks on `workers` scoped threads and stitches
/// the decoded events back together in file order, which *is* seq order
/// for any writer fed a totally ordered trace. Yields exactly the event
/// sequence of [`BinaryTraceReader`] on the same input, including the
/// position of the first error, after which the iterator fuses.
///
/// Batches hold `4 * workers` blocks, so peak memory is
/// `O(workers * block_events)` decoded events.
pub struct ParallelBinaryReader<R: Read> {
    blocks: BinaryBlockReader<R>,
    workers: usize,
    queue: VecDeque<Event>,
    pending_error: Option<IoError>,
    failed: bool,
    probes: StreamProbes,
}

impl<R: Read> ParallelBinaryReader<R> {
    /// Opens a binary stream for parallel decoding on up to `workers`
    /// threads (clamped to at least 1).
    pub fn new(reader: R, workers: usize) -> Result<Self, IoError> {
        Self::with_probes(reader, workers, StreamProbes::noop())
    }

    /// Like [`ParallelBinaryReader::new`], with stream probes.
    pub fn with_probes(reader: R, workers: usize, probes: StreamProbes) -> Result<Self, IoError> {
        let blocks = BinaryBlockReader::with_probes(reader, probes.clone())?;
        Ok(ParallelBinaryReader {
            blocks,
            workers: workers.max(1),
            queue: VecDeque::new(),
            pending_error: None,
            failed: false,
            probes,
        })
    }

    /// The trace kind announced by the header.
    pub fn kind(&self) -> TraceKind {
        self.blocks.kind()
    }

    /// The event count announced by the header (advisory).
    pub fn expected_events(&self) -> usize {
        self.blocks.expected_events()
    }

    /// Reads and decodes the next batch of blocks into the queue.
    fn refill(&mut self) {
        let mut batch: Vec<RawBlock> = Vec::with_capacity(self.workers * 4);
        while batch.len() < self.workers * 4 {
            match self.blocks.next_block() {
                Some(Ok(b)) => batch.push(b),
                Some(Err(e)) => {
                    self.pending_error = Some(e);
                    break;
                }
                None => break,
            }
        }
        if batch.is_empty() {
            return;
        }
        // One chunk of blocks per worker; each block decodes
        // independently, results return in submission order.
        let chunk = batch.len().div_ceil(self.workers);
        let mut results: Vec<Result<Vec<Event>, IoError>> = Vec::with_capacity(batch.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = batch
                .chunks(chunk)
                .map(|blocks| {
                    s.spawn(move || blocks.iter().map(RawBlock::decode).collect::<Vec<_>>())
                })
                .collect();
            for h in handles {
                results.extend(h.join().expect("block decode worker panicked"));
            }
        });
        for r in results {
            match r {
                Ok(events) => {
                    self.probes.events.add(events.len() as u64);
                    self.queue.extend(events);
                }
                Err(e) => {
                    // A decode failure precedes (in stream order) any
                    // block-reader error stashed above, and everything
                    // after the first error is dropped anyway.
                    self.probes.parse_errors.inc();
                    self.pending_error = Some(e);
                    break;
                }
            }
        }
    }
}

impl<R: Read> Iterator for ParallelBinaryReader<R> {
    type Item = Result<Event, IoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if let Some(e) = self.queue.pop_front() {
                return Some(Ok(e));
            }
            if let Some(e) = self.pending_error.take() {
                self.failed = true;
                return Some(Err(e));
            }
            self.refill();
            if self.queue.is_empty() && self.pending_error.is_none() {
                return None;
            }
        }
    }
}
