//! The `ppa-trace-bin-v1` binary trace format: writer, serial reader,
//! raw block access, and a parallel block decoder.
//!
//! A binary trace is an 18-byte header — the 8-byte magic
//! [`BINARY_MAGIC`], a format version byte, a [`TraceKind`] byte, and the
//! advisory event count as a little-endian `u64` — followed by framed
//! blocks (see [`super::block`]). Blocks are independently decodable, so:
//!
//! - [`BinaryTraceWriter`] buffers events into blocks of
//!   [`DEFAULT_BLOCK_EVENTS`] and frames each with its summary and CRC;
//! - [`BinaryTraceReader`] is the serial streaming decoder, a drop-in
//!   sibling of [`TraceStreamReader`](crate::TraceStreamReader);
//! - [`BinaryBlockReader`] yields raw framed blocks without decoding,
//!   using the frame summaries as a skip index for time-bounded reads;
//! - [`ParallelBinaryReader`] decodes batches of blocks on worker
//!   threads and stitches the results back in file (seq) order.

use super::block::{
    decode_block, decode_block_into, encode_block, BlockCursor, BlockFrame, BlockSummary, FRAME_LEN,
};
use crate::event::Event;
use crate::gap::{GapCause, TraceGap};
use crate::io::IoError;
use crate::stream::{CountingWriter, StreamProbes};
use crate::time::Time;
use crate::trace::TraceKind;
use std::collections::HashMap;
use std::io::{BufWriter, Read, Write};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// Magic bytes opening every `ppa-trace-bin-v1` file.
pub const BINARY_MAGIC: [u8; 8] = *b"PPATRBIN";

/// Format version written after the magic; the only version understood.
pub const BINARY_VERSION: u8 = 1;

/// The binary format's name, mirroring the JSONL header's `format` field.
pub const BINARY_FORMAT_NAME: &str = "ppa-trace-bin-v1";

/// Default number of events framed into one block.
///
/// Around 4K events a block is large enough to amortize the 44-byte frame
/// and the per-block thread handoff of the parallel decoder, yet small
/// enough that block-granular skipping and parallelism stay fine-grained.
pub const DEFAULT_BLOCK_EVENTS: usize = 4096;

const HEADER_LEN: usize = 18;

fn kind_to_byte(kind: TraceKind) -> u8 {
    match kind {
        TraceKind::Actual => 0,
        TraceKind::Measured => 1,
        TraceKind::Approximated => 2,
    }
}

fn kind_from_byte(b: u8) -> Option<TraceKind> {
    match b {
        0 => Some(TraceKind::Actual),
        1 => Some(TraceKind::Measured),
        2 => Some(TraceKind::Approximated),
        _ => None,
    }
}

/// Reads into `buf` until it is full or the stream ends; returns how many
/// bytes were read (a short count means EOF).
fn read_up_to<R: Read>(reader: &mut R, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

// --- Writer -------------------------------------------------------------

/// Incremental writer for the `ppa-trace-bin-v1` format.
///
/// Buffers events into blocks of a configurable size (default
/// [`DEFAULT_BLOCK_EVENTS`]) and frames each finished block with its
/// event count, first/last seq and time, and a payload CRC32. Only the
/// current block resides in memory. As with the JSONL writer, the
/// header's event count is advisory; pass `0` when it is unknown.
pub struct BinaryTraceWriter<W: Write> {
    sink: BufWriter<CountingWriter<W>>,
    block: Vec<Event>,
    block_events: usize,
    written: usize,
    events: ppa_obs::Counter,
    blocks: ppa_obs::Counter,
}

impl<W: Write> BinaryTraceWriter<W> {
    /// Starts a binary stream of `kind` announcing `events` upcoming
    /// events, with the default block size.
    pub fn new(writer: W, kind: TraceKind, events: usize) -> Result<Self, IoError> {
        Self::with_probes(writer, kind, events, StreamProbes::noop())
    }

    /// Like [`BinaryTraceWriter::new`], recording bytes, events, and
    /// blocks into `probes` as the stream is written.
    pub fn with_probes(
        writer: W,
        kind: TraceKind,
        events: usize,
        probes: StreamProbes,
    ) -> Result<Self, IoError> {
        Self::with_block_events(writer, kind, events, DEFAULT_BLOCK_EVENTS, probes)
    }

    /// Full-control constructor: `block_events` sets how many events are
    /// framed into each block (clamped to at least 1).
    pub fn with_block_events(
        writer: W,
        kind: TraceKind,
        events: usize,
        block_events: usize,
        probes: StreamProbes,
    ) -> Result<Self, IoError> {
        let mut sink = BufWriter::new(CountingWriter::new(writer, probes.bytes));
        let mut header = [0u8; HEADER_LEN];
        header[0..8].copy_from_slice(&BINARY_MAGIC);
        header[8] = BINARY_VERSION;
        header[9] = kind_to_byte(kind);
        header[10..18].copy_from_slice(&(events as u64).to_le_bytes());
        sink.write_all(&header)?;
        let block_events = block_events.max(1);
        Ok(BinaryTraceWriter {
            sink,
            block: Vec::with_capacity(block_events),
            block_events,
            written: 0,
            events: probes.events,
            blocks: probes.blocks,
        })
    }

    /// Appends one event, flushing a block whenever one fills up.
    pub fn write_event(&mut self, event: &Event) -> Result<(), IoError> {
        self.block.push(*event);
        self.written += 1;
        self.events.inc();
        if self.block.len() >= self.block_events {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<(), IoError> {
        if self.block.is_empty() {
            return Ok(());
        }
        let (frame, payload) = encode_block(&self.block);
        self.sink.write_all(&frame.to_bytes())?;
        self.sink.write_all(&payload)?;
        self.block.clear();
        self.blocks.inc();
        Ok(())
    }

    /// How many events have been written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Flushes the bytes of *completed* blocks to the underlying writer.
    /// Events of the partial in-memory block are not framed — only
    /// [`BinaryTraceWriter::finish`] does that — so a flushed prefix is a
    /// valid trace of whole blocks.
    pub fn flush(&mut self) -> Result<(), IoError> {
        self.sink.flush().map_err(IoError::Io)
    }

    /// Frames any partial block, flushes, and returns the underlying
    /// writer.
    pub fn finish(mut self) -> Result<W, IoError> {
        self.flush_block()?;
        self.sink
            .into_inner()
            .map(CountingWriter::into_inner)
            .map_err(|e| IoError::Io(e.into_error()))
    }
}

// --- Raw block reader ---------------------------------------------------

/// One framed block read from a binary trace, not yet decoded.
#[derive(Debug, Clone)]
pub struct RawBlock {
    index: usize,
    frame: BlockFrame,
    payload: Vec<u8>,
}

impl RawBlock {
    /// The block's 1-based position in the file (reported as `line` in
    /// [`IoError::Parse`] errors).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The frame summary: event count, first/last seq and time.
    pub fn summary(&self) -> BlockSummary {
        self.frame.summary
    }

    /// Verifies the payload CRC and decodes the block's events.
    pub fn decode(&self) -> Result<Vec<Event>, IoError> {
        let mut span = ppa_obs::span_enter(ppa_obs::Stage::Decode);
        span.attr_block(self.index as u64);
        span.attr_seq(self.frame.summary.first_seq);
        decode_block(&self.frame, &self.payload, self.index)
    }

    /// Like [`RawBlock::decode`], appending into a caller-recycled
    /// buffer instead of allocating a fresh `Vec` per block.
    pub fn decode_into(&self, out: &mut Vec<Event>) -> Result<(), IoError> {
        let mut span = ppa_obs::span_enter(ppa_obs::Stage::Decode);
        span.attr_block(self.index as u64);
        span.attr_seq(self.frame.summary.first_seq);
        decode_block_into(&self.frame, &self.payload, self.index, out)
    }

    /// Consumes the block, returning its payload buffer so the caller
    /// can hand it back to [`BinaryBlockReader::recycle_payload`].
    pub fn into_payload(self) -> Vec<u8> {
        self.payload
    }

    /// Classifies why [`RawBlock::decode`] failed, for gap reporting: a
    /// stored-vs-computed CRC mismatch, or payload bytes that passed the
    /// CRC but did not decode to the events the frame promised.
    pub fn gap_cause(&self) -> GapCause {
        if super::block::crc32(&self.payload) != self.frame.crc {
            GapCause::CrcMismatch
        } else {
            GapCause::MalformedPayload
        }
    }

    /// The gap record for this whole block, used when lenient decoding
    /// skips it.
    pub fn to_gap(&self, cause: GapCause) -> TraceGap {
        block_gap(self.index, self.frame.summary, cause)
    }
}

/// A gap describing `summary`'s whole block — the exact span a damaged
/// payload loses.
fn block_gap(block: usize, summary: BlockSummary, cause: GapCause) -> TraceGap {
    TraceGap {
        block,
        events: u64::from(summary.count),
        first_seq: Some(summary.first_seq),
        last_seq: Some(summary.last_seq),
        first_time: Some(summary.first_time),
        last_time: Some(summary.last_time),
        cause,
    }
}

/// Reads the framed blocks of a binary trace without decoding payloads.
///
/// This is the layer both decoders share: [`BinaryTraceReader`] decodes
/// each block inline, [`ParallelBinaryReader`] fans batches out to
/// worker threads. The frame summaries also serve as a skip index —
/// [`BinaryBlockReader::set_min_time`] makes the reader discard (read
/// but neither CRC-check nor decode) every block that ends before a
/// time bound, the cheap path for watermark-bounded re-reads.
pub struct BinaryBlockReader<R: Read> {
    input: R,
    kind: TraceKind,
    expected: usize,
    /// Events delivered (or skipped) by fully-read blocks so far.
    seen: usize,
    /// 1-based index of the next block.
    index: usize,
    min_time: Option<Time>,
    /// Exclusive upper time bound of the skip index; blocks whose
    /// `first_time` is at or past it are discarded undecoded.
    max_time: Option<Time>,
    skipped_blocks: usize,
    /// Events inside blocks the skip index discarded. These are in
    /// `seen` (the blocks were fully read) but are neither delivered
    /// nor lost, so lenient accounting must treat them as a third
    /// bucket: `delivered + lost + skipped == expected`.
    skipped_events: u64,
    done: bool,
    /// Record damaged regions as gaps instead of failing; see
    /// [`BinaryBlockReader::set_lenient`].
    lenient: bool,
    /// Stream positions (events) still to skip without decoding.
    skip_events: u64,
    /// Residual partial skip inside the block just returned; consumers
    /// collect it with [`BinaryBlockReader::take_event_skip`].
    event_skip: u64,
    gaps: Vec<TraceGap>,
    /// Events swallowed by the gaps recorded so far.
    lost: u64,
    /// Returned payload buffers awaiting reuse; bounds allocation churn
    /// to a steady state of one buffer per in-flight block.
    spare_payloads: Vec<Vec<u8>>,
    probes: StreamProbes,
}

impl<R: Read> BinaryBlockReader<R> {
    /// Opens a binary trace, reading and validating the 18-byte header.
    pub fn new(reader: R) -> Result<Self, IoError> {
        Self::with_probes(reader, StreamProbes::noop())
    }

    /// Like [`BinaryBlockReader::new`], recording bytes, blocks, and
    /// parse errors into `probes`.
    pub fn with_probes(mut reader: R, probes: StreamProbes) -> Result<Self, IoError> {
        let mut header = [0u8; HEADER_LEN];
        let got = read_up_to(&mut reader, &mut header)?;
        if got < HEADER_LEN {
            return Err(IoError::BadHeader(format!(
                "binary trace header needs {HEADER_LEN} bytes, got {got}"
            )));
        }
        if header[0..8] != BINARY_MAGIC {
            return Err(IoError::BadHeader(format!(
                "bad magic {:?} (expected {BINARY_FORMAT_NAME})",
                &header[0..8]
            )));
        }
        if header[8] != BINARY_VERSION {
            return Err(IoError::BadHeader(format!(
                "unsupported {BINARY_FORMAT_NAME} version {}",
                header[8]
            )));
        }
        let kind = kind_from_byte(header[9])
            .ok_or_else(|| IoError::BadHeader(format!("unknown trace kind byte {}", header[9])))?;
        let expected = u64::from_le_bytes(header[10..18].try_into().expect("8 bytes")) as usize;
        probes.bytes.add(HEADER_LEN as u64);
        Ok(BinaryBlockReader {
            input: reader,
            kind,
            expected,
            seen: 0,
            index: 0,
            min_time: None,
            max_time: None,
            skipped_blocks: 0,
            skipped_events: 0,
            done: false,
            lenient: false,
            skip_events: 0,
            event_skip: 0,
            gaps: Vec::new(),
            lost: 0,
            spare_payloads: Vec::new(),
            probes,
        })
    }

    /// Hands a payload buffer back for reuse by a later
    /// [`BinaryBlockReader::next_block`]. Dropping the buffer instead is
    /// always correct — recycling only saves the allocator round trip.
    pub fn recycle_payload(&mut self, mut buf: Vec<u8>) {
        // A small cap keeps a burst of recycled buffers (e.g. a parallel
        // decoder draining) from pinning memory indefinitely.
        if self.spare_payloads.len() < 64 {
            buf.clear();
            self.spare_payloads.push(buf);
        }
    }

    /// The trace kind announced by the header.
    pub fn kind(&self) -> TraceKind {
        self.kind
    }

    /// The event count announced by the header (advisory).
    pub fn expected_events(&self) -> usize {
        self.expected
    }

    /// Engages the skip index: blocks whose `last_time` is strictly
    /// before `t` are discarded without CRC verification or decoding
    /// (their events still count toward truncation accounting). The
    /// first surviving block may begin before `t`; callers wanting an
    /// exact bound filter the leading events themselves.
    ///
    /// Skipped events are accounted separately from lenient-mode
    /// losses — a skipped block is never CRC-checked, so damage inside
    /// it is invisible and must not surface as a [`TraceGap`]. With
    /// skipping active the conservation law is
    /// `delivered + events_lost() + skipped_events() == expected`
    /// (for a stream that is not itself truncated).
    pub fn set_min_time(&mut self, t: Time) {
        self.min_time = Some(t);
    }

    /// The other half of the skip index: blocks whose `first_time` is at
    /// or past `t` (exclusive upper bound, matching the half-open
    /// windows of the slice layer) are discarded without CRC
    /// verification or decoding. The last surviving block may extend
    /// past `t`; callers wanting an exact bound filter the trailing
    /// events themselves. Unlike [`set_min_time`], skipping continues to
    /// read frames to the end of input, so truncation detection and the
    /// conservation law documented on [`set_min_time`] are unaffected.
    ///
    /// [`set_min_time`]: BinaryBlockReader::set_min_time
    pub fn set_max_time(&mut self, t: Time) {
        self.max_time = Some(t);
    }

    /// How many blocks the skip index has discarded so far.
    pub fn skipped_blocks(&self) -> usize {
        self.skipped_blocks
    }

    /// How many events were inside the blocks the skip index discarded.
    /// These are neither delivered nor counted in [`events_lost`]; they
    /// are the third bucket of the conservation law documented on
    /// [`set_min_time`].
    ///
    /// [`events_lost`]: BinaryBlockReader::events_lost
    /// [`set_min_time`]: BinaryBlockReader::set_min_time
    pub fn skipped_events(&self) -> u64 {
        self.skipped_events
    }

    /// Switches the reader into lenient mode.
    ///
    /// Damaged regions are then recorded as [`TraceGap`]s instead of
    /// ending the stream with an error: input that ends mid-block or
    /// short of the declared count records a truncation gap and yields a
    /// clean end of stream, and a malformed frame records a gap covering
    /// the rest of the stream (a corrupt frame cannot be trusted to
    /// locate the next block, so resynchronization is impossible).
    /// Payload-level damage — CRC mismatches — is detected at decode
    /// time; decoders record those gaps through
    /// [`BinaryBlockReader::record_gap`] and keep going, skipping just
    /// the damaged block. I/O errors remain fatal in either mode.
    pub fn set_lenient(&mut self, lenient: bool) {
        self.lenient = lenient;
    }

    /// Whether the reader is in lenient mode.
    pub fn lenient(&self) -> bool {
        self.lenient
    }

    /// Seeks past the first `n` stream positions (events) using the
    /// frame summaries: whole blocks are discarded without CRC checks or
    /// decoding. When `n` lands inside a block, that block is returned
    /// normally and the leftover intra-block skip is reported through
    /// [`BinaryBlockReader::take_event_skip`] for the decoder to apply.
    /// Positions count events a previous run *consumed* — delivered or
    /// lost to lenient gaps — which is exactly the frame `count` total,
    /// so a resume never re-verifies the prefix it already processed.
    pub fn set_skip_events(&mut self, n: u64) {
        self.skip_events = n;
    }

    /// Takes the residual intra-block skip owed on the block most
    /// recently returned by [`BinaryBlockReader::next_block`] (zero when
    /// the skip ended on a block boundary). The caller must drop that
    /// many events from the front of the decoded block.
    pub fn take_event_skip(&mut self) -> u64 {
        std::mem::take(&mut self.event_skip)
    }

    /// The gaps lenient decoding has recorded so far.
    pub fn gaps(&self) -> &[TraceGap] {
        &self.gaps
    }

    /// Total events swallowed by the recorded gaps.
    pub fn events_lost(&self) -> u64 {
        self.lost
    }

    /// Records one lenient-mode gap, updating the loss accounting and
    /// the gap probes. Decoders call this for payload-level damage (CRC
    /// mismatches, malformed payloads) that only decoding can detect.
    pub fn record_gap(&mut self, gap: TraceGap) {
        self.lost += gap.events;
        self.probes.gaps.inc();
        self.probes.events_lost.add(gap.events);
        self.gaps.push(gap);
    }

    /// Ends the stream leniently, recording a gap for whatever the
    /// header still promised beyond the events already read (`seen`
    /// counts every event of every fully read block, so events a decoder
    /// separately lost to CRC gaps are not double-counted here).
    fn end_with_gap(&mut self, block: usize, cause: GapCause) -> Option<Result<RawBlock, IoError>> {
        self.done = true;
        self.probes.parse_errors.inc();
        self.record_gap(TraceGap {
            block,
            events: (self.expected as u64).saturating_sub(self.seen as u64),
            first_seq: None,
            last_seq: None,
            first_time: None,
            last_time: None,
            cause,
        });
        None
    }

    fn fail(&mut self, e: IoError) -> Option<Result<RawBlock, IoError>> {
        self.done = true;
        if !matches!(e, IoError::Io(_)) {
            self.probes.parse_errors.inc();
        }
        Some(Err(e))
    }

    fn truncated(&mut self, at_least: usize) -> Option<Result<RawBlock, IoError>> {
        let expected = self.expected.max(at_least);
        let got = self.seen;
        self.fail(IoError::Truncated { expected, got })
    }

    /// Reads the next frame + payload. `None` means clean end of input.
    pub fn next_block(&mut self) -> Option<Result<RawBlock, IoError>> {
        loop {
            if self.done {
                return None;
            }
            let mut frame_bytes = [0u8; FRAME_LEN];
            let got = match read_up_to(&mut self.input, &mut frame_bytes) {
                Ok(n) => n,
                Err(e) => return self.fail(IoError::Io(e)),
            };
            if got == 0 {
                // Clean end of input: complain only if the header
                // promised more events than the blocks delivered.
                if self.expected > 0 && self.seen < self.expected {
                    if self.lenient {
                        return self.end_with_gap(self.index + 1, GapCause::TruncatedStream);
                    }
                    self.done = true;
                    self.probes.parse_errors.inc();
                    return Some(Err(IoError::Truncated {
                        expected: self.expected,
                        got: self.seen,
                    }));
                }
                self.done = true;
                return None;
            }
            if got < FRAME_LEN {
                // The file ends inside a frame: a short final block.
                if self.lenient {
                    return self.end_with_gap(self.index + 1, GapCause::TruncatedStream);
                }
                return self.truncated(self.seen + 1);
            }
            self.index += 1;
            let frame = match BlockFrame::from_bytes(&frame_bytes, self.index) {
                Ok(f) => f,
                Err(e) => {
                    if self.lenient {
                        // The frame cannot be trusted to locate the next
                        // block; the rest of the stream is one gap.
                        return self.end_with_gap(self.index, GapCause::MalformedFrame);
                    }
                    return self.fail(e);
                }
            };
            let count = frame.summary.count as usize;
            let mut payload = self.spare_payloads.pop().unwrap_or_default();
            payload.resize(frame.payload_len as usize, 0);
            let got = match read_up_to(&mut self.input, &mut payload) {
                Ok(n) => n,
                Err(e) => return self.fail(IoError::Io(e)),
            };
            if got < payload.len() {
                // The file ends inside this block's payload.
                if self.lenient {
                    self.done = true;
                    self.probes.parse_errors.inc();
                    let gap = block_gap(self.index, frame.summary, GapCause::TruncatedBlock);
                    self.record_gap(gap);
                    // The frame's events are accounted as lost; anything
                    // the header promised beyond them is a second gap.
                    self.seen += count;
                    if self.expected > 0 && self.seen < self.expected {
                        self.record_gap(TraceGap {
                            block: self.index + 1,
                            events: (self.expected - self.seen) as u64,
                            first_seq: None,
                            last_seq: None,
                            first_time: None,
                            last_time: None,
                            cause: GapCause::TruncatedStream,
                        });
                    }
                    return None;
                }
                return self.truncated(self.seen + count);
            }
            self.probes.bytes.add((FRAME_LEN + payload.len()) as u64);
            self.probes.blocks.inc();
            self.seen += count;
            if self.skip_events > 0 {
                // Resume seek: discard whole already-processed blocks by
                // their frame count, without CRC checks or decoding.
                if self.skip_events >= count as u64 {
                    self.skip_events -= count as u64;
                    self.recycle_payload(payload);
                    continue;
                }
                self.event_skip = self.skip_events;
                self.skip_events = 0;
            }
            let below = self
                .min_time
                .is_some_and(|min| frame.summary.last_time < min);
            let above = self
                .max_time
                .is_some_and(|max| frame.summary.first_time >= max);
            if below || above {
                self.skipped_blocks += 1;
                // Counted here, not as a gap: the payload was never
                // CRC-checked, so any damage inside it is invisible
                // and must not be mistaken for a lenient loss.
                self.skipped_events += count as u64;
                self.recycle_payload(payload);
                continue;
            }
            return Some(Ok(RawBlock {
                index: self.index,
                frame,
                payload,
            }));
        }
    }
}

// --- Serial reader ------------------------------------------------------

/// Serial streaming decoder for the `ppa-trace-bin-v1` format.
///
/// The binary sibling of [`TraceStreamReader`](crate::TraceStreamReader):
/// parses the header eagerly, then yields one event per [`Iterator`]
/// call, holding at most one decoded block in memory. Error mapping
/// follows the JSONL reader's conventions — [`IoError::BadHeader`] for a
/// wrong magic or version, [`IoError::Truncated`] for input that ends
/// mid-block or short of the header's declared count, and
/// [`IoError::Parse`] (with the 1-based *block* index as `line`) for a
/// CRC mismatch or malformed payload. After an error the iterator fuses.
pub struct BinaryTraceReader<R: Read> {
    blocks: BinaryBlockReader<R>,
    /// The current decoded block, reused across blocks (cleared, never
    /// freed) so steady-state decoding allocates nothing per block.
    pending: Vec<Event>,
    /// Cursor into `pending`; events before it were already yielded (or
    /// dropped by a resume skip).
    pos: usize,
    failed: bool,
    probes: StreamProbes,
}

impl<R: Read> BinaryTraceReader<R> {
    /// Opens a binary stream, reading and validating the header.
    pub fn new(reader: R) -> Result<Self, IoError> {
        Self::with_probes(reader, StreamProbes::noop())
    }

    /// Like [`BinaryTraceReader::new`], recording bytes, events, blocks,
    /// and parse errors into `probes` as the stream is consumed.
    pub fn with_probes(reader: R, probes: StreamProbes) -> Result<Self, IoError> {
        let blocks = BinaryBlockReader::with_probes(reader, probes.clone())?;
        Ok(BinaryTraceReader {
            blocks,
            pending: Vec::new(),
            pos: 0,
            failed: false,
            probes,
        })
    }

    /// The trace kind announced by the header.
    pub fn kind(&self) -> TraceKind {
        self.blocks.kind()
    }

    /// The event count announced by the header (advisory).
    pub fn expected_events(&self) -> usize {
        self.blocks.expected_events()
    }

    /// Engages the block skip index; see
    /// [`BinaryBlockReader::set_min_time`].
    pub fn set_min_time(&mut self, t: Time) {
        self.blocks.set_min_time(t);
    }

    /// Engages the upper bound of the skip index; see
    /// [`BinaryBlockReader::set_max_time`].
    pub fn set_max_time(&mut self, t: Time) {
        self.blocks.set_max_time(t);
    }

    /// How many blocks the skip index has discarded so far.
    pub fn skipped_blocks(&self) -> usize {
        self.blocks.skipped_blocks()
    }

    /// How many events were inside the skipped blocks; see
    /// [`BinaryBlockReader::skipped_events`].
    pub fn skipped_events(&self) -> u64 {
        self.blocks.skipped_events()
    }

    /// Switches the reader into lenient mode: CRC-failed or malformed
    /// blocks are skipped and recorded as [`TraceGap`]s instead of
    /// ending the stream; see [`BinaryBlockReader::set_lenient`].
    pub fn set_lenient(&mut self, lenient: bool) {
        self.blocks.set_lenient(lenient);
    }

    /// Seeks past the first `n` stream positions without decoding whole
    /// skipped blocks; see [`BinaryBlockReader::set_skip_events`].
    pub fn set_skip_events(&mut self, n: u64) {
        self.blocks.set_skip_events(n);
    }

    /// The gaps lenient decoding has recorded so far.
    pub fn gaps(&self) -> &[TraceGap] {
        self.blocks.gaps()
    }

    /// Total events swallowed by the recorded gaps.
    pub fn events_lost(&self) -> u64 {
        self.blocks.events_lost()
    }
}

impl<R: Read> Iterator for BinaryTraceReader<R> {
    type Item = Result<Event, IoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if let Some(&e) = self.pending.get(self.pos) {
                self.pos += 1;
                self.probes.events.inc();
                return Some(Ok(e));
            }
            match self.blocks.next_block()? {
                Ok(block) => {
                    self.pending.clear();
                    match block.decode_into(&mut self.pending) {
                        Ok(()) => {
                            self.pos =
                                (self.blocks.take_event_skip() as usize).min(self.pending.len());
                            self.blocks.recycle_payload(block.into_payload());
                        }
                        Err(e) => {
                            // A partial decode may have pushed events;
                            // discard them with the block.
                            self.pending.clear();
                            if self.blocks.lenient() {
                                let gap = block.to_gap(block.gap_cause());
                                self.probes.parse_errors.inc();
                                self.blocks.record_gap(gap);
                                self.blocks.recycle_payload(block.into_payload());
                                continue;
                            }
                            self.failed = true;
                            self.probes.parse_errors.inc();
                            return Some(Err(e));
                        }
                    }
                }
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

// --- Parallel reader ----------------------------------------------------

/// One block handed to a decode worker: everything it needs, owned.
struct DecodeJob {
    /// Submission order (0-based); emission happens in this order.
    seq: u64,
    index: usize,
    frame: BlockFrame,
    payload: Vec<u8>,
    /// A recycled event buffer to decode into.
    scratch: Vec<Event>,
}

/// A worker's answer: the decoded events (or the classified failure),
/// plus both buffers so the consumer can recycle them.
struct DecodedBlock {
    seq: u64,
    index: usize,
    summary: BlockSummary,
    result: Result<(), (IoError, GapCause)>,
    events: Vec<Event>,
    payload: Vec<u8>,
}

/// Decode-worker loop: pull jobs off the shared queue until the sender
/// closes, decode each block, send the result back.
fn decode_worker(jobs: Arc<Mutex<mpsc::Receiver<DecodeJob>>>, results: mpsc::Sender<DecodedBlock>) {
    loop {
        // Hold the lock only for the blocking recv; decoding happens
        // outside it so workers overlap.
        let job = {
            let rx = jobs
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match rx.recv() {
                Ok(job) => job,
                Err(_) => return, // reader dropped: no more blocks
            }
        };
        let mut events = job.scratch;
        events.clear();
        let result = {
            let mut span = ppa_obs::span_enter(ppa_obs::Stage::Decode);
            span.attr_block(job.index as u64);
            span.attr_seq(job.frame.summary.first_seq);
            match BlockCursor::new(&job.frame, &job.payload, job.index) {
                Err(e) => Err((e, GapCause::CrcMismatch)),
                Ok(mut cursor) => loop {
                    match cursor.next_event() {
                        Ok(Some(event)) => events.push(event),
                        Ok(None) => break Ok(()),
                        Err(e) => break Err((e, GapCause::MalformedPayload)),
                    }
                },
            }
        };
        let decoded = DecodedBlock {
            seq: job.seq,
            index: job.index,
            summary: job.frame.summary,
            result,
            events,
            payload: job.payload,
        };
        if results.send(decoded).is_err() {
            return; // consumer gone; nothing left to report to
        }
    }
}

/// Pipelined parallel block decoder for the `ppa-trace-bin-v1` format.
///
/// A stage pipeline rather than a batch loop: the consuming thread reads
/// framed blocks (cheap — the payload stays opaque) and feeds them to
/// `workers` persistent decode threads; decoded blocks stream back and
/// are stitched into file order, which *is* seq order for any writer fed
/// a totally ordered trace. Because submission is throttled only by the
/// in-flight window (not a per-batch barrier), decode overlaps both the
/// framing reads and whatever analysis the caller runs between `next()`
/// calls. Yields exactly the event sequence of [`BinaryTraceReader`] on
/// the same input, including the position of the first error, after
/// which the iterator fuses.
///
/// At most `4 * workers` blocks are in flight, so peak memory is
/// `O(workers * block_events)` decoded events; payload and event buffers
/// recirculate through pools instead of being reallocated per block.
pub struct ParallelBinaryReader<R: Read> {
    blocks: BinaryBlockReader<R>,
    worker_handles: Vec<std::thread::JoinHandle<()>>,
    /// Closed (dropped) to tell workers to exit.
    job_tx: Option<mpsc::Sender<DecodeJob>>,
    result_rx: mpsc::Receiver<DecodedBlock>,
    /// In-flight window: blocks submitted but not yet accepted.
    max_in_flight: usize,
    in_flight: usize,
    /// Submission counter (the next job's `seq`).
    submitted: u64,
    /// The `seq` the stitcher emits next.
    next_emit: u64,
    /// Results that arrived ahead of their emission turn.
    stash: HashMap<u64, DecodedBlock>,
    /// The block currently being emitted, and the cursor into it.
    current: Vec<Event>,
    pos: usize,
    /// Recycled event buffers for future jobs.
    spare_events: Vec<Vec<Event>>,
    reader_done: bool,
    pending_error: Option<IoError>,
    failed: bool,
    /// Residual resume skip to drop from the next decoded block (the
    /// straddling block is always the first block submitted after the
    /// skip is consumed).
    drop_next: usize,
    probes: StreamProbes,
}

impl<R: Read> ParallelBinaryReader<R> {
    /// Opens a binary stream for parallel decoding on up to `workers`
    /// threads (clamped to at least 1).
    pub fn new(reader: R, workers: usize) -> Result<Self, IoError> {
        Self::with_probes(reader, workers, StreamProbes::noop())
    }

    /// Like [`ParallelBinaryReader::new`], with stream probes.
    pub fn with_probes(reader: R, workers: usize, probes: StreamProbes) -> Result<Self, IoError> {
        let blocks = BinaryBlockReader::with_probes(reader, probes.clone())?;
        let workers = workers.max(1);
        let (job_tx, job_rx) = mpsc::channel::<DecodeJob>();
        let (result_tx, result_rx) = mpsc::channel::<DecodedBlock>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let worker_handles = (0..workers)
            .map(|i| {
                let jobs = Arc::clone(&job_rx);
                let results = result_tx.clone();
                std::thread::Builder::new()
                    .name(format!("ppa-decode-{i}"))
                    .spawn(move || decode_worker(jobs, results))
                    .expect("spawn decode worker thread")
            })
            .collect();
        Ok(ParallelBinaryReader {
            blocks,
            worker_handles,
            job_tx: Some(job_tx),
            result_rx,
            max_in_flight: workers * 4,
            in_flight: 0,
            submitted: 0,
            next_emit: 0,
            stash: HashMap::new(),
            current: Vec::new(),
            pos: 0,
            spare_events: Vec::new(),
            reader_done: false,
            pending_error: None,
            failed: false,
            drop_next: 0,
            probes,
        })
    }

    /// The trace kind announced by the header.
    pub fn kind(&self) -> TraceKind {
        self.blocks.kind()
    }

    /// The event count announced by the header (advisory).
    pub fn expected_events(&self) -> usize {
        self.blocks.expected_events()
    }

    /// Switches the reader into lenient mode: CRC-failed or malformed
    /// blocks are skipped and recorded as [`TraceGap`]s instead of
    /// ending the stream; see [`BinaryBlockReader::set_lenient`].
    pub fn set_lenient(&mut self, lenient: bool) {
        self.blocks.set_lenient(lenient);
    }

    /// Seeks past the first `n` stream positions without decoding whole
    /// skipped blocks; see [`BinaryBlockReader::set_skip_events`].
    pub fn set_skip_events(&mut self, n: u64) {
        self.blocks.set_skip_events(n);
    }

    /// Engages the block skip index; see
    /// [`BinaryBlockReader::set_min_time`]. The inner block reader skips
    /// before jobs are submitted, so skipped blocks never reach a decode
    /// worker.
    pub fn set_min_time(&mut self, t: Time) {
        self.blocks.set_min_time(t);
    }

    /// Engages the upper bound of the skip index; see
    /// [`BinaryBlockReader::set_max_time`].
    pub fn set_max_time(&mut self, t: Time) {
        self.blocks.set_max_time(t);
    }

    /// How many blocks the skip index has discarded so far.
    pub fn skipped_blocks(&self) -> usize {
        self.blocks.skipped_blocks()
    }

    /// How many events were inside the skipped blocks; see
    /// [`BinaryBlockReader::skipped_events`].
    pub fn skipped_events(&self) -> u64 {
        self.blocks.skipped_events()
    }

    /// The gaps lenient decoding has recorded so far.
    pub fn gaps(&self) -> &[TraceGap] {
        self.blocks.gaps()
    }

    /// Total events swallowed by the recorded gaps.
    pub fn events_lost(&self) -> u64 {
        self.blocks.events_lost()
    }

    /// Returns an event buffer to the pool feeding future jobs.
    fn recycle_events(&mut self, mut buf: Vec<Event>) {
        if self.spare_events.len() < 64 {
            buf.clear();
            self.spare_events.push(buf);
        }
    }

    /// Keeps the in-flight window full: reads frames and submits decode
    /// jobs until the window cap, end of input, or a reader error (which
    /// is stashed and surfaced only after the in-flight blocks drain —
    /// they precede it in stream order).
    fn pump(&mut self) {
        while !self.reader_done && self.in_flight < self.max_in_flight {
            match self.blocks.next_block() {
                Some(Ok(block)) => {
                    // A resume skip that ends mid-block surfaces here,
                    // attached to the first block returned after the
                    // skip was consumed.
                    self.drop_next += self.blocks.take_event_skip() as usize;
                    let job = DecodeJob {
                        seq: self.submitted,
                        index: block.index,
                        frame: block.frame,
                        payload: block.payload,
                        scratch: self.spare_events.pop().unwrap_or_default(),
                    };
                    self.submitted += 1;
                    self.in_flight += 1;
                    if let Some(tx) = &self.job_tx {
                        // Send fails only if every worker died; the recv
                        // in `next()` will surface that as a panic.
                        let _ = tx.send(job);
                    }
                }
                Some(Err(e)) => {
                    self.pending_error = Some(e);
                    self.reader_done = true;
                }
                None => self.reader_done = true,
            }
        }
    }

    /// Accepts the next in-order decoded block: recycles its buffers,
    /// installs its events as the current emission run (minus any resume
    /// skip), or — for a failed block — records the lenient gap or
    /// returns the error to surface at exactly this stream position.
    fn accept(&mut self, decoded: DecodedBlock) -> Result<(), IoError> {
        debug_assert_eq!(decoded.seq, self.next_emit);
        self.next_emit += 1;
        self.in_flight -= 1;
        self.blocks.recycle_payload(decoded.payload);
        match decoded.result {
            Ok(()) => {
                let drop = std::mem::take(&mut self.drop_next).min(decoded.events.len());
                self.probes.events.add((decoded.events.len() - drop) as u64);
                let old = std::mem::replace(&mut self.current, decoded.events);
                self.recycle_events(old);
                self.pos = drop;
                Ok(())
            }
            Err((e, cause)) => {
                self.probes.parse_errors.inc();
                if self.blocks.lenient() {
                    // Skip just the damaged block and keep stitching.
                    self.blocks
                        .record_gap(block_gap(decoded.index, decoded.summary, cause));
                    self.recycle_events(decoded.events);
                    Ok(())
                } else {
                    Err(e)
                }
            }
        }
    }
}

impl<R: Read> Iterator for ParallelBinaryReader<R> {
    type Item = Result<Event, IoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if let Some(&e) = self.current.get(self.pos) {
                self.pos += 1;
                return Some(Ok(e));
            }
            self.pump();
            if self.in_flight == 0 {
                if let Some(e) = self.pending_error.take() {
                    self.failed = true;
                    return Some(Err(e));
                }
                if self.reader_done {
                    return None;
                }
                continue;
            }
            // Fetch the block whose emission turn it is: from the stash
            // if it already arrived, else by waiting on the workers.
            let decoded = match self.stash.remove(&self.next_emit) {
                Some(d) => d,
                None => {
                    let _span = ppa_obs::span_enter(ppa_obs::Stage::Reassemble);
                    loop {
                        let d = self.result_rx.recv().expect("block decode worker panicked");
                        if d.seq == self.next_emit {
                            break d;
                        }
                        self.stash.insert(d.seq, d);
                    }
                }
            };
            match self.accept(decoded) {
                Ok(()) => continue,
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

impl<R: Read> Drop for ParallelBinaryReader<R> {
    fn drop(&mut self) {
        // Closing the job channel is the shutdown signal; workers finish
        // whatever is in flight (sends to the unbounded result channel
        // never block) and exit.
        self.job_tx.take();
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
    }
}
