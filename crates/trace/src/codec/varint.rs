//! LEB128 variable-length integers and the zigzag signed mapping.
//!
//! The binary trace payload stores every multi-byte field as an unsigned
//! LEB128 varint: seven value bits per byte, least-significant group
//! first, high bit set on every byte except the last. Values below 128
//! cost one byte, which is why the block codec delta-encodes timestamps
//! and sequence numbers first — within a block both are near-monotone, so
//! the deltas are tiny.
//!
//! Signed quantities (sequence deltas, time deltas, synchronization tags)
//! go through the zigzag mapping `0, -1, 1, -2, 2, ...` first so that
//! small-magnitude negatives stay short.

/// Appends `v` to `buf` as an unsigned LEB128 varint (1..=10 bytes).
#[inline]
pub(crate) fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint from `input` starting at `*pos`,
/// advancing `*pos` past it. Returns `None` on truncated input or on an
/// encoding that does not fit in a `u64`.
///
/// This is the executable specification: a plain one-byte-at-a-time
/// loop whose every accept/reject decision is easy to audit. The hot
/// decode path goes through [`read_varint`], which must agree with this
/// function byte-for-byte on every input (pinned by the differential
/// tests below).
#[inline]
#[cfg_attr(not(test), allow(dead_code))] // the spec is exercised by the differential tests
pub(crate) fn read_varint_spec(input: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *input.get(*pos)?;
        *pos += 1;
        let group = u64::from(byte & 0x7f);
        if shift == 63 && group > 1 {
            return None; // would overflow the top bit of a u64
        }
        v |= group << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None; // 11th continuation byte: not a u64
        }
    }
}

/// Fast-path LEB128 decoder used by the block codec's hot loop.
///
/// Block payloads delta-encode timestamps and sequence numbers, so the
/// overwhelming majority of varints are one or two bytes; those cases
/// are decoded here with direct indexing and no loop. Longer encodings
/// go through an unrolled tail. Semantics are identical to
/// [`read_varint_spec`] on every input, truncated and overlong included.
#[inline]
pub(crate) fn read_varint(input: &[u8], pos: &mut usize) -> Option<u64> {
    let p = *pos;
    let b0 = *input.get(p)?;
    if b0 < 0x80 {
        *pos = p + 1;
        return Some(u64::from(b0));
    }
    match input.get(p + 1) {
        Some(&b1) if b1 < 0x80 => {
            *pos = p + 2;
            Some(u64::from(b0 & 0x7f) | u64::from(b1) << 7)
        }
        Some(_) => read_varint_multi(input, pos),
        None => {
            // Truncated after one continuation byte; the spec loop
            // consumes that byte before noticing, and `*pos` must agree
            // on every path so the two decoders are interchangeable.
            *pos = p + 1;
            None
        }
    }
}

/// Cold continuation of [`read_varint`] for encodings of three or more
/// bytes: an unrolled walk over groups 2..=9 with the same overflow
/// rules as the spec (only the final, tenth byte may carry the top bit,
/// and only as the value 1). Matches [`read_varint_spec`] exactly,
/// including how far `*pos` advances on rejected input.
#[cold]
fn read_varint_multi(input: &[u8], pos: &mut usize) -> Option<u64> {
    let p = *pos;
    // The first two bytes were already seen by the caller and both had
    // their continuation bit set.
    let mut v = u64::from(input[p] & 0x7f) | u64::from(input[p + 1] & 0x7f) << 7;
    let mut i = p + 2;
    loop {
        let Some(&byte) = input.get(i) else {
            *pos = i;
            return None; // truncated mid-encoding
        };
        let shift = 7 * (i - p) as u32;
        i += 1;
        let group = u64::from(byte & 0x7f);
        if shift == 63 && group > 1 {
            *pos = i;
            return None; // would overflow the top bit of a u64
        }
        v |= group << shift;
        if byte & 0x80 == 0 {
            *pos = i;
            return Some(v);
        }
        if shift == 63 {
            *pos = i;
            return None; // 11th continuation byte: not a u64
        }
    }
}

/// Maps a signed value onto the unsigned zigzag line `0, 1, -1 -> 0, 2, 1`
/// so small magnitudes of either sign encode as short varints.
#[inline]
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v as u64) << 1) ^ ((v >> 63) as u64)
}

/// Inverse of [`zigzag`].
#[inline]
pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a signed value as a zigzag-mapped varint.
#[inline]
pub(crate) fn write_varint_signed(buf: &mut Vec<u8>, v: i64) {
    write_varint(buf, zigzag(v));
}

/// Reads a zigzag-mapped signed varint.
#[inline]
pub(crate) fn read_varint_signed(input: &[u8], pos: &mut usize) -> Option<i64> {
    read_varint(input, pos).map(unzigzag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: u64) -> (usize, u64) {
        let mut buf = Vec::new();
        write_varint(&mut buf, v);
        let mut pos = 0;
        let back = read_varint(&buf, &mut pos).expect("well-formed varint");
        assert_eq!(pos, buf.len(), "decoder consumed every encoded byte");
        let mut spec_pos = 0;
        assert_eq!(read_varint_spec(&buf, &mut spec_pos), Some(back));
        assert_eq!(spec_pos, pos, "fast and spec decoders consume alike");
        (buf.len(), back)
    }

    #[test]
    fn varint_edge_values() {
        // The satellite-test triple: zero, one, and the largest u64.
        assert_eq!(round_trip(0), (1, 0));
        assert_eq!(round_trip(1), (1, 1));
        assert_eq!(round_trip(u64::MAX), (10, u64::MAX));
    }

    #[test]
    fn varint_length_boundaries() {
        for (v, len) in [
            (127u64, 1usize),
            (128, 2),
            (16_383, 2),
            (16_384, 3),
            (u64::from(u32::MAX), 5),
        ] {
            assert_eq!(round_trip(v), (len, v));
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(read_varint(&buf[..cut], &mut pos), None, "cut at {cut}");
        }
        // An 11-byte continuation chain does not fit in a u64.
        let over = [0x80u8; 10];
        let mut pos = 0;
        assert_eq!(read_varint(&over, &mut pos), None);
        // Ten bytes whose final group carries more than the one remaining
        // bit overflow too.
        let wide = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        let mut pos = 0;
        assert_eq!(read_varint(&wide, &mut pos), None);
    }

    /// Exhaustive check that the fast decoder and the executable spec
    /// agree — value, consumed length, and rejection — on one input.
    fn assert_decoders_agree(bytes: &[u8]) {
        for start in 0..=bytes.len() {
            let mut fast_pos = start;
            let mut spec_pos = start;
            let fast = read_varint(bytes, &mut fast_pos);
            let spec = read_varint_spec(bytes, &mut spec_pos);
            assert_eq!(fast, spec, "value at start {start} of {bytes:02x?}");
            assert_eq!(
                fast_pos, spec_pos,
                "cursor at start {start} of {bytes:02x?}"
            );
        }
    }

    #[test]
    fn fast_decoder_matches_spec_on_crafted_inputs() {
        // Every encoded length boundary plus the rejection shapes the
        // spec carves out: truncations, overlong chains, wide final
        // groups, and redundant zero continuations.
        let mut crafted: Vec<Vec<u8>> = Vec::new();
        for v in [
            0u64,
            1,
            127,
            128,
            129,
            16_383,
            16_384,
            (1 << 21) - 1,
            1 << 21,
            u64::from(u32::MAX),
            1 << 62,
            (1 << 63) - 1,
            1 << 63,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            for cut in 0..=buf.len() {
                crafted.push(buf[..cut].to_vec());
            }
        }
        crafted.push(vec![0x80; 10]);
        crafted.push(vec![0x80; 11]);
        crafted.push(vec![0xff; 9]);
        crafted.push(vec![
            0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f,
        ]);
        crafted.push(vec![
            0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01,
        ]);
        crafted.push(vec![0x80, 0x80, 0x00]); // overlong zero, still accepted
        for bytes in &crafted {
            assert_decoders_agree(bytes);
        }
    }

    #[test]
    fn fast_decoder_matches_spec_on_random_streams() {
        // Deterministic xorshift fuzz: random byte soup exercises every
        // continuation-bit pattern, not just well-formed encodings.
        let mut state = 0x243f_6a88_85a3_08d3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2_000 {
            let len = (next() % 24) as usize;
            let mut bytes = Vec::with_capacity(len);
            for _ in 0..len {
                // Bias toward set continuation bits so long chains occur.
                let b = (next() & 0xff) as u8;
                bytes.push(if next() % 4 == 0 { b & 0x7f } else { b | 0x80 });
            }
            assert_decoders_agree(&bytes);
        }
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Zigzag keeps small magnitudes small.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
    }

    #[test]
    fn signed_varint_round_trips() {
        for v in [0i64, 1, -1, 1_000_000, -1_000_000, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            write_varint_signed(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint_signed(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }
}
