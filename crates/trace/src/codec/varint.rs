//! LEB128 variable-length integers and the zigzag signed mapping.
//!
//! The binary trace payload stores every multi-byte field as an unsigned
//! LEB128 varint: seven value bits per byte, least-significant group
//! first, high bit set on every byte except the last. Values below 128
//! cost one byte, which is why the block codec delta-encodes timestamps
//! and sequence numbers first — within a block both are near-monotone, so
//! the deltas are tiny.
//!
//! Signed quantities (sequence deltas, time deltas, synchronization tags)
//! go through the zigzag mapping `0, -1, 1, -2, 2, ...` first so that
//! small-magnitude negatives stay short.

/// Appends `v` to `buf` as an unsigned LEB128 varint (1..=10 bytes).
#[inline]
pub(crate) fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint from `input` starting at `*pos`,
/// advancing `*pos` past it. Returns `None` on truncated input or on an
/// encoding that does not fit in a `u64`.
#[inline]
pub(crate) fn read_varint(input: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *input.get(*pos)?;
        *pos += 1;
        let group = u64::from(byte & 0x7f);
        if shift == 63 && group > 1 {
            return None; // would overflow the top bit of a u64
        }
        v |= group << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None; // 11th continuation byte: not a u64
        }
    }
}

/// Maps a signed value onto the unsigned zigzag line `0, 1, -1 -> 0, 2, 1`
/// so small magnitudes of either sign encode as short varints.
#[inline]
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v as u64) << 1) ^ ((v >> 63) as u64)
}

/// Inverse of [`zigzag`].
#[inline]
pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a signed value as a zigzag-mapped varint.
#[inline]
pub(crate) fn write_varint_signed(buf: &mut Vec<u8>, v: i64) {
    write_varint(buf, zigzag(v));
}

/// Reads a zigzag-mapped signed varint.
#[inline]
pub(crate) fn read_varint_signed(input: &[u8], pos: &mut usize) -> Option<i64> {
    read_varint(input, pos).map(unzigzag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: u64) -> (usize, u64) {
        let mut buf = Vec::new();
        write_varint(&mut buf, v);
        let mut pos = 0;
        let back = read_varint(&buf, &mut pos).expect("well-formed varint");
        assert_eq!(pos, buf.len(), "decoder consumed every encoded byte");
        (buf.len(), back)
    }

    #[test]
    fn varint_edge_values() {
        // The satellite-test triple: zero, one, and the largest u64.
        assert_eq!(round_trip(0), (1, 0));
        assert_eq!(round_trip(1), (1, 1));
        assert_eq!(round_trip(u64::MAX), (10, u64::MAX));
    }

    #[test]
    fn varint_length_boundaries() {
        for (v, len) in [
            (127u64, 1usize),
            (128, 2),
            (16_383, 2),
            (16_384, 3),
            (u64::from(u32::MAX), 5),
        ] {
            assert_eq!(round_trip(v), (len, v));
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(read_varint(&buf[..cut], &mut pos), None, "cut at {cut}");
        }
        // An 11-byte continuation chain does not fit in a u64.
        let over = [0x80u8; 10];
        let mut pos = 0;
        assert_eq!(read_varint(&over, &mut pos), None);
        // Ten bytes whose final group carries more than the one remaining
        // bit overflow too.
        let wide = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        let mut pos = 0;
        assert_eq!(read_varint(&wide, &mut pos), None);
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Zigzag keeps small magnitudes small.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
    }

    #[test]
    fn signed_varint_round_trips() {
        for v in [0i64, 1, -1, 1_000_000, -1_000_000, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            write_varint_signed(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint_signed(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }
}
