//! Block framing for the `ppa-trace-bin-v1` format.
//!
//! A binary trace is a header followed by framed blocks of up to a few
//! thousand events each. Every block is independently decodable: its
//! fixed-size frame carries everything a decoder needs (payload length,
//! event count, first/last sequence and time, a CRC32 of the payload), so
//! blocks can be decoded in parallel and stitched back together in file
//! order, and the first/last-time summary doubles as a skip index for
//! time-bounded reads.
//!
//! ## Frame layout (44 bytes, little-endian)
//!
//! ```text
//! offset  size  field
//!      0     4  payload_len   bytes of varint payload that follow
//!      4     4  count         events in the block (>= 1)
//!      8     8  first_seq     seq of the first event
//!     16     8  last_seq      seq of the last event
//!     24     8  first_time    timestamp of the first event (ns)
//!     32     8  last_time     timestamp of the last event (ns)
//!     40     4  crc32         CRC32 (IEEE) of the payload bytes
//! ```
//!
//! ## Payload layout
//!
//! Per event: a one-byte [`EventKind`] tag, then zigzag-varint deltas for
//! time and seq (relative to the previous event in the block; the frame's
//! `first_time`/`first_seq` seed the chain, so the first event encodes
//! two zero deltas), a varint processor id, and the kind's operands as
//! varints (synchronization tags zigzag-mapped — they are signed).

use super::varint::{read_varint, read_varint_signed, write_varint, write_varint_signed};
use crate::event::{Event, EventKind};
use crate::ids::{
    BarrierId, LockId, LoopId, ProcessorId, SemId, StatementId, SyncTag, SyncVarId, TaskId,
};
use crate::io::IoError;
use crate::time::Time;

/// Byte length of an encoded block frame.
pub(crate) const FRAME_LEN: usize = 44;

/// Upper bound accepted for a frame's `payload_len` (64 MiB). A frame
/// announcing more is treated as corrupt rather than allocated.
pub(crate) const MAX_PAYLOAD_LEN: u32 = 64 << 20;

/// Upper bound accepted for a frame's `count`. A block never legitimately
/// holds more events than bytes of payload (every event costs >= 4 bytes).
pub(crate) const MAX_BLOCK_COUNT: u32 = MAX_PAYLOAD_LEN / 4;

/// The per-block summary carried by every frame of a binary trace.
///
/// Summaries are readable without decoding the payload, which makes them
/// a skip index: a reader looking only for events at or after some
/// watermark can discard every block whose `last_time` is below it
/// without touching the payload bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSummary {
    /// Events in the block (at least 1).
    pub count: u32,
    /// Sequence number of the block's first event.
    pub first_seq: u64,
    /// Sequence number of the block's last event.
    pub last_seq: u64,
    /// Timestamp of the block's first event.
    pub first_time: Time,
    /// Timestamp of the block's last event.
    pub last_time: Time,
}

/// One decoded block frame: the summary plus payload accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BlockFrame {
    pub(crate) payload_len: u32,
    pub(crate) summary: BlockSummary,
    pub(crate) crc: u32,
}

impl BlockFrame {
    /// Serializes the frame into its fixed 44-byte layout.
    pub(crate) fn to_bytes(self) -> [u8; FRAME_LEN] {
        let mut out = [0u8; FRAME_LEN];
        out[0..4].copy_from_slice(&self.payload_len.to_le_bytes());
        out[4..8].copy_from_slice(&self.summary.count.to_le_bytes());
        out[8..16].copy_from_slice(&self.summary.first_seq.to_le_bytes());
        out[16..24].copy_from_slice(&self.summary.last_seq.to_le_bytes());
        out[24..32].copy_from_slice(&self.summary.first_time.as_nanos().to_le_bytes());
        out[32..40].copy_from_slice(&self.summary.last_time.as_nanos().to_le_bytes());
        out[40..44].copy_from_slice(&self.crc.to_le_bytes());
        out
    }

    /// Parses a frame; `block` is the 1-based block index used in errors.
    pub(crate) fn from_bytes(bytes: &[u8; FRAME_LEN], block: usize) -> Result<Self, IoError> {
        let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().expect("4 bytes"));
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().expect("8 bytes"));
        let frame = BlockFrame {
            payload_len: u32_at(0),
            summary: BlockSummary {
                count: u32_at(4),
                first_seq: u64_at(8),
                last_seq: u64_at(16),
                first_time: Time::from_nanos(u64_at(24)),
                last_time: Time::from_nanos(u64_at(32)),
            },
            crc: u32_at(40),
        };
        if frame.summary.count == 0
            || frame.summary.count > MAX_BLOCK_COUNT
            || frame.payload_len == 0
            || frame.payload_len > MAX_PAYLOAD_LEN
        {
            return Err(IoError::Parse {
                line: block,
                message: format!(
                    "block {block}: implausible frame (count {}, payload {} bytes)",
                    frame.summary.count, frame.payload_len
                ),
            });
        }
        Ok(frame)
    }
}

// --- CRC32 (IEEE 802.3, reflected) -------------------------------------

/// Eight derived tables for slicing-by-8: `TABLES[0]` is the classic
/// byte-at-a-time table, and `TABLES[k][b]` is the CRC contribution of
/// byte `b` seen `k` positions before the end of an 8-byte word. The
/// polynomial is unchanged, so outputs are bit-identical to the plain
/// table walk — only the per-iteration throughput differs (8 bytes per
/// step instead of 1, which matters because every decoded block pays a
/// full-payload CRC before any event is parsed).
const fn crc32_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xff) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
}

static CRC_TABLES: [[u32; 256]; 8] = crc32_tables();

/// Advances a raw (pre-inverted) CRC state over `data` using
/// slicing-by-8 with a byte-at-a-time tail.
fn crc32_update(mut c: u32, data: &[u8]) -> u32 {
    let t = &CRC_TABLES;
    let mut words = data.chunks_exact(8);
    for w in &mut words {
        let lo = u32::from_le_bytes(w[0..4].try_into().expect("4 bytes")) ^ c;
        let hi = u32::from_le_bytes(w[4..8].try_into().expect("4 bytes"));
        c = t[7][(lo & 0xff) as usize]
            ^ t[6][((lo >> 8) & 0xff) as usize]
            ^ t[5][((lo >> 16) & 0xff) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xff) as usize]
            ^ t[2][((hi >> 8) & 0xff) as usize]
            ^ t[1][((hi >> 16) & 0xff) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in words.remainder() {
        c = t[0][((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c
}

/// CRC32 (IEEE 802.3, reflected) of `data` — the checksum guarding every
/// block payload of a binary trace, exposed so other integrity-checked
/// file formats (notably analysis checkpoints) can share the exact same
/// polynomial and table.
pub fn crc32(data: &[u8]) -> u32 {
    !crc32_update(!0u32, data)
}

/// CRC32 of the previous record's CRC (4 little-endian bytes) followed
/// by `data`, computed without materializing the concatenation. This is
/// the per-record checksum of chained checkpoint files: each record's
/// CRC commits to its predecessor's, so a truncated or reordered tail is
/// detected by re-walking the chain.
pub fn crc32_chain(prev: u32, data: &[u8]) -> u32 {
    let c = crc32_update(!0u32, &prev.to_le_bytes());
    !crc32_update(c, data)
}

// --- EventKind tag codec ------------------------------------------------

const TAG_PROGRAM_BEGIN: u8 = 0;
const TAG_PROGRAM_END: u8 = 1;
const TAG_LOOP_BEGIN: u8 = 2;
const TAG_LOOP_END: u8 = 3;
const TAG_ITERATION_BEGIN: u8 = 4;
const TAG_ITERATION_END: u8 = 5;
const TAG_STATEMENT: u8 = 6;
const TAG_ADVANCE: u8 = 7;
const TAG_AWAIT_BEGIN: u8 = 8;
const TAG_AWAIT_END: u8 = 9;
const TAG_BARRIER_ENTER: u8 = 10;
const TAG_BARRIER_EXIT: u8 = 11;
const TAG_REPEAT: u8 = 12;
const TAG_LOCK_ACQUIRE: u8 = 13;
const TAG_LOCK_RELEASE: u8 = 14;
const TAG_SEM_ACQUIRE: u8 = 15;
const TAG_SEM_RELEASE: u8 = 16;
const TAG_TASK_FORK: u8 = 17;
const TAG_TASK_JOIN: u8 = 18;

fn write_kind(buf: &mut Vec<u8>, kind: &EventKind) {
    match kind {
        EventKind::ProgramBegin => buf.push(TAG_PROGRAM_BEGIN),
        EventKind::ProgramEnd => buf.push(TAG_PROGRAM_END),
        EventKind::LoopBegin { loop_id } => {
            buf.push(TAG_LOOP_BEGIN);
            write_varint(buf, u64::from(loop_id.0));
        }
        EventKind::LoopEnd { loop_id } => {
            buf.push(TAG_LOOP_END);
            write_varint(buf, u64::from(loop_id.0));
        }
        EventKind::IterationBegin { loop_id, iter } => {
            buf.push(TAG_ITERATION_BEGIN);
            write_varint(buf, u64::from(loop_id.0));
            write_varint(buf, *iter);
        }
        EventKind::IterationEnd { loop_id, iter } => {
            buf.push(TAG_ITERATION_END);
            write_varint(buf, u64::from(loop_id.0));
            write_varint(buf, *iter);
        }
        EventKind::Statement { stmt } => {
            buf.push(TAG_STATEMENT);
            write_varint(buf, u64::from(stmt.0));
        }
        EventKind::Advance { var, tag } => {
            buf.push(TAG_ADVANCE);
            write_varint(buf, u64::from(var.0));
            write_varint_signed(buf, tag.0);
        }
        EventKind::AwaitBegin { var, tag } => {
            buf.push(TAG_AWAIT_BEGIN);
            write_varint(buf, u64::from(var.0));
            write_varint_signed(buf, tag.0);
        }
        EventKind::AwaitEnd { var, tag } => {
            buf.push(TAG_AWAIT_END);
            write_varint(buf, u64::from(var.0));
            write_varint_signed(buf, tag.0);
        }
        EventKind::BarrierEnter { barrier } => {
            buf.push(TAG_BARRIER_ENTER);
            write_varint(buf, u64::from(barrier.0));
        }
        EventKind::BarrierExit { barrier } => {
            buf.push(TAG_BARRIER_EXIT);
            write_varint(buf, u64::from(barrier.0));
        }
        EventKind::Repeat {
            len,
            count,
            dt_ns,
            dseq,
            dfield,
        } => {
            buf.push(TAG_REPEAT);
            write_varint(buf, u64::from(*len));
            write_varint(buf, u64::from(*count));
            write_varint(buf, *dt_ns);
            write_varint(buf, *dseq);
            write_varint_signed(buf, *dfield);
        }
        EventKind::LockAcquire { lock } => {
            buf.push(TAG_LOCK_ACQUIRE);
            write_varint(buf, u64::from(lock.0));
        }
        EventKind::LockRelease { lock } => {
            buf.push(TAG_LOCK_RELEASE);
            write_varint(buf, u64::from(lock.0));
        }
        EventKind::SemAcquire { sem } => {
            buf.push(TAG_SEM_ACQUIRE);
            write_varint(buf, u64::from(sem.0));
        }
        EventKind::SemRelease { sem } => {
            buf.push(TAG_SEM_RELEASE);
            write_varint(buf, u64::from(sem.0));
        }
        EventKind::TaskFork { task } => {
            buf.push(TAG_TASK_FORK);
            write_varint(buf, u64::from(task.0));
        }
        EventKind::TaskJoin { task } => {
            buf.push(TAG_TASK_JOIN);
            write_varint(buf, u64::from(task.0));
        }
    }
}

fn read_kind(tag: u8, input: &[u8], pos: &mut usize) -> Option<EventKind> {
    let u32_operand = |pos: &mut usize| read_varint(input, pos).and_then(|v| u32::try_from(v).ok());
    Some(match tag {
        TAG_PROGRAM_BEGIN => EventKind::ProgramBegin,
        TAG_PROGRAM_END => EventKind::ProgramEnd,
        TAG_LOOP_BEGIN => EventKind::LoopBegin {
            loop_id: LoopId(u32_operand(pos)?),
        },
        TAG_LOOP_END => EventKind::LoopEnd {
            loop_id: LoopId(u32_operand(pos)?),
        },
        TAG_ITERATION_BEGIN => EventKind::IterationBegin {
            loop_id: LoopId(u32_operand(pos)?),
            iter: read_varint(input, pos)?,
        },
        TAG_ITERATION_END => EventKind::IterationEnd {
            loop_id: LoopId(u32_operand(pos)?),
            iter: read_varint(input, pos)?,
        },
        TAG_STATEMENT => EventKind::Statement {
            stmt: StatementId(u32_operand(pos)?),
        },
        TAG_ADVANCE => EventKind::Advance {
            var: SyncVarId(u32_operand(pos)?),
            tag: SyncTag(read_varint_signed(input, pos)?),
        },
        TAG_AWAIT_BEGIN => EventKind::AwaitBegin {
            var: SyncVarId(u32_operand(pos)?),
            tag: SyncTag(read_varint_signed(input, pos)?),
        },
        TAG_AWAIT_END => EventKind::AwaitEnd {
            var: SyncVarId(u32_operand(pos)?),
            tag: SyncTag(read_varint_signed(input, pos)?),
        },
        TAG_BARRIER_ENTER => EventKind::BarrierEnter {
            barrier: BarrierId(u32_operand(pos)?),
        },
        TAG_BARRIER_EXIT => EventKind::BarrierExit {
            barrier: BarrierId(u32_operand(pos)?),
        },
        TAG_REPEAT => EventKind::Repeat {
            len: u32_operand(pos)?,
            count: u32_operand(pos)?,
            dt_ns: read_varint(input, pos)?,
            dseq: read_varint(input, pos)?,
            dfield: read_varint_signed(input, pos)?,
        },
        TAG_LOCK_ACQUIRE => EventKind::LockAcquire {
            lock: LockId(u32_operand(pos)?),
        },
        TAG_LOCK_RELEASE => EventKind::LockRelease {
            lock: LockId(u32_operand(pos)?),
        },
        TAG_SEM_ACQUIRE => EventKind::SemAcquire {
            sem: SemId(u32_operand(pos)?),
        },
        TAG_SEM_RELEASE => EventKind::SemRelease {
            sem: SemId(u32_operand(pos)?),
        },
        TAG_TASK_FORK => EventKind::TaskFork {
            task: TaskId(u32_operand(pos)?),
        },
        TAG_TASK_JOIN => EventKind::TaskJoin {
            task: TaskId(u32_operand(pos)?),
        },
        _ => return None,
    })
}

// --- Block encode / decode ----------------------------------------------

/// Encodes one block of events into a frame and its payload bytes.
///
/// `events` must be non-empty; the caller controls the block size. The
/// events need not be time-ordered (deltas are signed), though ordered
/// input is what makes them compress well.
pub(crate) fn encode_block(events: &[Event]) -> (BlockFrame, Vec<u8>) {
    assert!(!events.is_empty(), "blocks hold at least one event");
    let first = &events[0];
    let last = &events[events.len() - 1];
    let mut payload = Vec::with_capacity(events.len() * 6);
    let mut prev_time = first.time.as_nanos();
    let mut prev_seq = first.seq;
    for e in events {
        write_kind(&mut payload, &e.kind);
        let t = e.time.as_nanos();
        write_varint_signed(&mut payload, t.wrapping_sub(prev_time) as i64);
        write_varint_signed(&mut payload, e.seq.wrapping_sub(prev_seq) as i64);
        write_varint(&mut payload, u64::from(e.proc.0));
        prev_time = t;
        prev_seq = e.seq;
    }
    let frame = BlockFrame {
        payload_len: payload.len() as u32,
        summary: BlockSummary {
            count: events.len() as u32,
            first_seq: first.seq,
            last_seq: last.seq,
            first_time: first.time,
            last_time: last.time,
        },
        crc: crc32(&payload),
    };
    (frame, payload)
}

/// A zero-copy decoding view over one block payload.
///
/// The cursor borrows the payload buffer and decodes one event per
/// [`BlockCursor::next_event`] call — no intermediate `Vec<u8>` copies,
/// no per-block event allocation unless the caller wants one. The CRC is
/// verified up front (corrupt payloads are rejected before any event is
/// parsed); the trailing-bytes and frame-summary checks run when the
/// cursor yields its final `None`, so a drained cursor has performed
/// exactly the validation [`decode_block`] always did.
pub(crate) struct BlockCursor<'a> {
    payload: &'a [u8],
    summary: BlockSummary,
    block: usize,
    pos: usize,
    decoded: u32,
    prev_time: u64,
    prev_seq: u64,
    first: (Time, u64),
    last: (Time, u64),
}

impl<'a> BlockCursor<'a> {
    /// Verifies the payload CRC against `frame` and positions a cursor
    /// at the first event. `block` is the 1-based block index reported
    /// (as `line`) in [`IoError::Parse`] errors.
    pub(crate) fn new(
        frame: &BlockFrame,
        payload: &'a [u8],
        block: usize,
    ) -> Result<Self, IoError> {
        let actual = {
            let mut span = ppa_obs::span_enter(ppa_obs::Stage::CrcVerify);
            span.attr_block(block as u64);
            crc32(payload)
        };
        if actual != frame.crc {
            return Err(IoError::Parse {
                line: block,
                message: format!(
                    "block {block}: CRC mismatch (stored {:#010x}, computed {actual:#010x})",
                    frame.crc
                ),
            });
        }
        Ok(BlockCursor {
            payload,
            summary: frame.summary,
            block,
            pos: 0,
            decoded: 0,
            prev_time: frame.summary.first_time.as_nanos(),
            prev_seq: frame.summary.first_seq,
            first: (Time::ZERO, 0),
            last: (Time::ZERO, 0),
        })
    }

    fn corrupt(&self, message: String) -> IoError {
        IoError::Parse {
            line: self.block,
            message,
        }
    }

    /// Decodes the next event, or returns `Ok(None)` once all `count`
    /// events were produced and the block-level checks passed.
    pub(crate) fn next_event(&mut self) -> Result<Option<Event>, IoError> {
        if self.decoded == self.summary.count {
            return self.finish().map(|()| None);
        }
        let (block, i) = (self.block, self.decoded);
        let payload = self.payload;
        let pos = &mut self.pos;
        let err = || IoError::Parse {
            line: block,
            message: format!("block {block}: malformed event {i}"),
        };
        let tag = *payload.get(*pos).ok_or_else(err)?;
        *pos += 1;
        let kind = read_kind(tag, payload, pos).ok_or_else(err)?;
        let dt = read_varint_signed(payload, pos).ok_or_else(err)?;
        let dseq = read_varint_signed(payload, pos).ok_or_else(err)?;
        let proc = read_varint(payload, pos)
            .and_then(|v| u16::try_from(v).ok())
            .ok_or_else(err)?;
        self.prev_time = self.prev_time.wrapping_add(dt as u64);
        self.prev_seq = self.prev_seq.wrapping_add(dseq as u64);
        let event = Event::new(
            Time::from_nanos(self.prev_time),
            ProcessorId(proc),
            self.prev_seq,
            kind,
        );
        if self.decoded == 0 {
            self.first = (event.time, event.seq);
        }
        self.last = (event.time, event.seq);
        self.decoded += 1;
        Ok(Some(event))
    }

    /// Post-decode checks: every payload byte consumed and the decoded
    /// first/last events agree with the frame summary.
    fn finish(&self) -> Result<(), IoError> {
        if self.pos != self.payload.len() {
            return Err(self.corrupt(format!(
                "block {block}: {n} trailing payload bytes",
                block = self.block,
                n = self.payload.len() - self.pos
            )));
        }
        if self.first != (self.summary.first_time, self.summary.first_seq)
            || self.last != (self.summary.last_time, self.summary.last_seq)
        {
            return Err(self.corrupt(format!(
                "block {block}: payload does not match its frame summary",
                block = self.block
            )));
        }
        Ok(())
    }
}

/// Decodes a block payload against its frame, appending the events to
/// `out` (which the caller typically recycles between blocks — this is
/// the allocation-free path the hot readers use).
///
/// Verifies the CRC32 before touching the payload, then checks that the
/// decode consumed exactly `payload_len` bytes, produced exactly `count`
/// events, and reproduced the frame's first/last summary. `block` is the
/// 1-based block index reported (as `line`) in [`IoError::Parse`] errors.
pub(crate) fn decode_block_into(
    frame: &BlockFrame,
    payload: &[u8],
    block: usize,
    out: &mut Vec<Event>,
) -> Result<(), IoError> {
    let mut cursor = BlockCursor::new(frame, payload, block)?;
    out.reserve(frame.summary.count as usize);
    while let Some(event) = cursor.next_event()? {
        out.push(event);
    }
    Ok(())
}

/// [`decode_block_into`] into a fresh `Vec` — the allocating
/// convenience wrapper.
pub(crate) fn decode_block(
    frame: &BlockFrame,
    payload: &[u8],
    block: usize,
) -> Result<Vec<Event>, IoError> {
    let mut events = Vec::with_capacity(frame.summary.count as usize);
    decode_block_into(frame, payload, block, &mut events)?;
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::new(
                Time::from_nanos(100),
                ProcessorId(0),
                0,
                EventKind::ProgramBegin,
            ),
            Event::new(
                Time::from_nanos(140),
                ProcessorId(1),
                1,
                EventKind::Statement {
                    stmt: StatementId(7),
                },
            ),
            Event::new(
                Time::from_nanos(150),
                ProcessorId(1),
                2,
                EventKind::Advance {
                    var: SyncVarId(0),
                    tag: SyncTag(-3),
                },
            ),
            Event::new(
                Time::from_nanos(150),
                ProcessorId(2),
                3,
                EventKind::AwaitEnd {
                    var: SyncVarId(0),
                    tag: SyncTag(4),
                },
            ),
            Event::new(
                Time::from_nanos(900),
                ProcessorId(0),
                4,
                EventKind::ProgramEnd,
            ),
        ]
    }

    #[test]
    fn block_round_trips() {
        let events = sample_events();
        let (frame, payload) = encode_block(&events);
        assert_eq!(frame.summary.count, 5);
        assert_eq!(frame.summary.first_time, Time::from_nanos(100));
        assert_eq!(frame.summary.last_time, Time::from_nanos(900));
        assert_eq!(frame.summary.first_seq, 0);
        assert_eq!(frame.summary.last_seq, 4);
        let back = decode_block(&frame, &payload, 1).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn episode_kinds_round_trip() {
        let kinds = [
            EventKind::LockAcquire { lock: LockId(9) },
            EventKind::LockRelease { lock: LockId(9) },
            EventKind::SemAcquire { sem: SemId(0) },
            EventKind::SemRelease {
                sem: SemId(u32::MAX),
            },
            EventKind::TaskFork { task: TaskId(300) },
            EventKind::TaskJoin { task: TaskId(300) },
        ];
        let events: Vec<Event> = kinds
            .iter()
            .enumerate()
            .map(|(i, &kind)| {
                Event::new(
                    Time::from_nanos(10 * i as u64),
                    ProcessorId((i % 3) as u16),
                    i as u64,
                    kind,
                )
            })
            .collect();
        let (frame, payload) = encode_block(&events);
        assert_eq!(decode_block(&frame, &payload, 1).unwrap(), events);
    }

    #[test]
    fn frame_bytes_round_trip() {
        let (frame, _) = encode_block(&sample_events());
        let bytes = frame.to_bytes();
        assert_eq!(BlockFrame::from_bytes(&bytes, 1).unwrap(), frame);
    }

    #[test]
    fn corrupted_payload_fails_crc_with_block_index() {
        let (frame, mut payload) = encode_block(&sample_events());
        payload[3] ^= 0xff;
        match decode_block(&frame, &payload, 7) {
            Err(IoError::Parse { line, message }) => {
                assert_eq!(line, 7);
                assert!(message.contains("CRC mismatch"), "{message}");
            }
            other => panic!("expected CRC parse error, got {other:?}"),
        }
    }

    #[test]
    fn implausible_frames_are_rejected() {
        let (frame, _) = encode_block(&sample_events());
        let mut zero_count = frame;
        zero_count.summary.count = 0;
        assert!(matches!(
            BlockFrame::from_bytes(&zero_count.to_bytes(), 1),
            Err(IoError::Parse { .. })
        ));
        let mut huge = frame;
        huge.payload_len = MAX_PAYLOAD_LEN + 1;
        assert!(matches!(
            BlockFrame::from_bytes(&huge.to_bytes(), 1),
            Err(IoError::Parse { .. })
        ));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_chain_matches_materialized_concatenation() {
        for (prev, data) in [
            (0u32, &b""[..]),
            (0, b"123456789"),
            (0xDEAD_BEEF, b"payload bytes of arbitrary length 12345"),
            (0xCBF4_3926, b"x"),
        ] {
            let mut concat = prev.to_le_bytes().to_vec();
            concat.extend_from_slice(data);
            assert_eq!(crc32_chain(prev, data), crc32(&concat));
        }
    }

    #[test]
    fn crc32_slicing_matches_bytewise_reference_on_all_lengths() {
        // The slicing-by-8 kernel kicks in at 8 bytes; sweep lengths
        // across that boundary against a one-byte-at-a-time reference.
        let bytes: Vec<u8> = (0..64u32)
            .map(|i| (i.wrapping_mul(167) >> 3) as u8)
            .collect();
        let reference = |data: &[u8]| -> u32 {
            let mut c = !0u32;
            for &b in data {
                c = CRC_TABLES[0][((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
            }
            !c
        };
        for len in 0..=bytes.len() {
            assert_eq!(crc32(&bytes[..len]), reference(&bytes[..len]), "len {len}");
        }
    }

    #[test]
    fn cursor_decode_matches_owned_decode() {
        let events = sample_events();
        let (frame, payload) = encode_block(&events);
        let mut cursor = BlockCursor::new(&frame, &payload, 1).unwrap();
        let mut stepped = Vec::new();
        while let Some(e) = cursor.next_event().unwrap() {
            stepped.push(e);
        }
        assert_eq!(stepped, decode_block(&frame, &payload, 1).unwrap());
        // And the reuse path appends without clearing.
        let mut out = stepped.clone();
        decode_block_into(&frame, &payload, 1, &mut out).unwrap();
        assert_eq!(out.len(), events.len() * 2);
        assert_eq!(&out[events.len()..], &events[..]);
    }

    #[test]
    fn cursor_rejects_summary_mismatch_at_drain_time() {
        let (mut frame, payload) = encode_block(&sample_events());
        frame.summary.last_seq += 1; // lie in the summary, payload intact
        frame.crc = crc32(&payload);
        let mut cursor = BlockCursor::new(&frame, &payload, 3).unwrap();
        let last = loop {
            match cursor.next_event() {
                Ok(Some(_)) => continue,
                other => break other,
            }
        };
        match last {
            Err(IoError::Parse { line, message }) => {
                assert_eq!(line, 3);
                assert!(message.contains("frame summary"), "{message}");
            }
            other => panic!("expected summary mismatch, got {other:?}"),
        }
    }

    #[test]
    fn unordered_events_still_round_trip() {
        // Deltas are signed, so even a time-reversed block is lossless.
        let mut events = sample_events();
        events.reverse();
        let (frame, payload) = encode_block(&events);
        assert_eq!(decode_block(&frame, &payload, 1).unwrap(), events);
    }

    #[test]
    fn extreme_field_values_round_trip() {
        let events = vec![
            Event::new(
                Time::from_nanos(u64::MAX),
                ProcessorId(u16::MAX),
                u64::MAX,
                EventKind::Advance {
                    var: SyncVarId(u32::MAX),
                    tag: SyncTag(i64::MIN),
                },
            ),
            Event::new(
                Time::ZERO,
                ProcessorId(0),
                0,
                EventKind::IterationEnd {
                    loop_id: LoopId(u32::MAX),
                    iter: u64::MAX,
                },
            ),
        ];
        let (frame, payload) = encode_block(&events);
        assert_eq!(decode_block(&frame, &payload, 1).unwrap(), events);
    }
}
