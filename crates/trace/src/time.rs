//! Time representation for traces.
//!
//! All trace timestamps are absolute nanosecond counts ([`Time`]) from an
//! arbitrary per-execution origin; durations are [`Span`]s. The paper's
//! Alliant FX/80 measurements are microsecond-scale, so nanoseconds give
//! three decimal digits of headroom below the coarsest quantity the models
//! manipulate, while `u64` nanoseconds still cover ~584 years of execution.
//!
//! The simulator internally counts processor cycles; [`ClockRate`] converts
//! between cycles and wall-clock [`Span`]s.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// An absolute timestamp, in nanoseconds since the execution origin.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Time(u64);

/// A non-negative duration, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Span(u64);

impl Time {
    /// The execution origin.
    pub const ZERO: Time = Time(0);
    /// The maximum representable timestamp.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a timestamp from a nanosecond count.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }

    /// Creates a timestamp from a microsecond count.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Time(us * 1_000)
    }

    /// The nanosecond count since the origin.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The timestamp expressed in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Elapsed span since `earlier`; zero if `earlier` is later than `self`.
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> Span {
        Span(self.0.saturating_sub(earlier.0))
    }

    /// Signed difference `self - other` in nanoseconds.
    #[inline]
    pub fn signed_delta(self, other: Time) -> i64 {
        self.0 as i64 - other.0 as i64
    }

    /// Checked subtraction of a span; `None` on underflow.
    #[inline]
    pub fn checked_sub_span(self, span: Span) -> Option<Time> {
        self.0.checked_sub(span.0).map(Time)
    }

    /// Subtracts a span, clamping at the origin.
    #[inline]
    pub fn saturating_sub_span(self, span: Span) -> Time {
        Time(self.0.saturating_sub(span.0))
    }

    /// The later of two timestamps.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The earlier of two timestamps.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }
}

impl Span {
    /// The zero-length span.
    pub const ZERO: Span = Span(0);
    /// The maximum representable span.
    pub const MAX: Span = Span(u64::MAX);

    /// Creates a span from a nanosecond count.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Span(ns)
    }

    /// Creates a span from a microsecond count.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Span(us * 1_000)
    }

    /// Creates a span from a millisecond count.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Span(ms * 1_000_000)
    }

    /// The span length in nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span expressed in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The span expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of spans.
    #[inline]
    pub fn saturating_sub(self, other: Span) -> Span {
        Span(self.0.saturating_sub(other.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, other: Span) -> Option<Span> {
        self.0.checked_add(other.0).map(Span)
    }

    /// The ratio `self / other` as a float; `NaN` if `other` is zero.
    #[inline]
    pub fn ratio(self, other: Span) -> f64 {
        self.0 as f64 / other.0 as f64
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: Span) -> Span {
        Span(self.0.max(other.0))
    }

    /// The smaller of two spans.
    #[inline]
    pub fn min(self, other: Span) -> Span {
        Span(self.0.min(other.0))
    }

    /// Scales the span by a float factor, rounding to the nearest nanosecond.
    ///
    /// Negative factors clamp to zero — spans are non-negative by
    /// construction.
    #[inline]
    pub fn scale_f64(self, factor: f64) -> Span {
        if factor <= 0.0 {
            return Span::ZERO;
        }
        Span((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<Span> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Span) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Span> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Span) {
        self.0 += rhs.0;
    }
}

impl Sub<Span> for Time {
    type Output = Time;
    /// Panics on underflow; use [`Time::saturating_sub_span`] or
    /// [`Time::checked_sub_span`] when underflow is a legal outcome.
    #[inline]
    fn sub(self, rhs: Span) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = Span;
    /// Panics if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Time) -> Span {
        Span(self.0 - rhs.0)
    }
}

impl Add for Span {
    type Output = Span;
    #[inline]
    fn add(self, rhs: Span) -> Span {
        Span(self.0 + rhs.0)
    }
}

impl AddAssign for Span {
    #[inline]
    fn add_assign(&mut self, rhs: Span) {
        self.0 += rhs.0;
    }
}

impl Sub for Span {
    type Output = Span;
    /// Panics on underflow; use [`Span::saturating_sub`] when underflow is a
    /// legal outcome.
    #[inline]
    fn sub(self, rhs: Span) -> Span {
        Span(self.0 - rhs.0)
    }
}

impl SubAssign for Span {
    #[inline]
    fn sub_assign(&mut self, rhs: Span) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Span {
    type Output = Span;
    #[inline]
    fn mul(self, rhs: u64) -> Span {
        Span(self.0 * rhs)
    }
}

impl Div<u64> for Span {
    type Output = Span;
    #[inline]
    fn div(self, rhs: u64) -> Span {
        Span(self.0 / rhs)
    }
}

impl Sum for Span {
    fn sum<I: Iterator<Item = Span>>(iter: I) -> Span {
        iter.fold(Span::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// A processor clock rate used to convert simulator cycle counts to wall
/// time.
///
/// The Alliant FX/80 computational elements ran at roughly 5.9 MHz (170 ns
/// cycle); [`ClockRate::ALLIANT_FX80`] approximates that, and is the default
/// everywhere in the simulator so that reproduced execution times land in
/// the paper's microsecond regime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockRate {
    ns_per_cycle: f64,
}

impl ClockRate {
    /// ~5.9 MHz computational element clock of the Alliant FX/80 (170 ns).
    pub const ALLIANT_FX80: ClockRate = ClockRate {
        ns_per_cycle: 170.0,
    };

    /// A convenient 1 GHz rate (1 cycle == 1 ns) for tests.
    pub const GHZ_1: ClockRate = ClockRate { ns_per_cycle: 1.0 };

    /// Creates a clock rate from a cycle period in nanoseconds.
    ///
    /// # Panics
    /// Panics if `ns_per_cycle` is not strictly positive and finite.
    pub fn from_ns_per_cycle(ns_per_cycle: f64) -> Self {
        assert!(
            ns_per_cycle.is_finite() && ns_per_cycle > 0.0,
            "cycle period must be positive and finite, got {ns_per_cycle}"
        );
        ClockRate { ns_per_cycle }
    }

    /// Creates a clock rate from a frequency in Hz.
    pub fn from_hz(hz: f64) -> Self {
        assert!(hz.is_finite() && hz > 0.0, "frequency must be positive");
        ClockRate {
            ns_per_cycle: 1e9 / hz,
        }
    }

    /// The cycle period in nanoseconds.
    #[inline]
    pub fn ns_per_cycle(self) -> f64 {
        self.ns_per_cycle
    }

    /// Converts a cycle count to a wall-clock span (nearest nanosecond).
    #[inline]
    pub fn cycles(self, cycles: u64) -> Span {
        Span::from_nanos((cycles as f64 * self.ns_per_cycle).round() as u64)
    }

    /// Converts a wall-clock span back to (fractional) cycles.
    #[inline]
    pub fn to_cycles(self, span: Span) -> f64 {
        span.as_nanos() as f64 / self.ns_per_cycle
    }
}

impl Default for ClockRate {
    fn default() -> Self {
        ClockRate::ALLIANT_FX80
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = Time::from_micros(3) + Span::from_nanos(250);
        assert_eq!(t.as_nanos(), 3_250);
        assert_eq!(t - Time::from_nanos(250), Span::from_micros(3));
        assert_eq!(t - Span::from_nanos(3_250), Time::ZERO);
    }

    #[test]
    fn saturating_ops_clamp() {
        let early = Time::from_nanos(5);
        let late = Time::from_nanos(9);
        assert_eq!(early.saturating_since(late), Span::ZERO);
        assert_eq!(late.saturating_since(early), Span::from_nanos(4));
        assert_eq!(early.saturating_sub_span(Span::from_nanos(100)), Time::ZERO);
        assert_eq!(
            Span::from_nanos(3).saturating_sub(Span::from_nanos(7)),
            Span::ZERO
        );
    }

    #[test]
    fn signed_delta_is_signed() {
        let a = Time::from_nanos(10);
        let b = Time::from_nanos(25);
        assert_eq!(a.signed_delta(b), -15);
        assert_eq!(b.signed_delta(a), 15);
    }

    #[test]
    fn span_sum_and_scale() {
        let total: Span = [1u64, 2, 3, 4].iter().map(|&n| Span::from_nanos(n)).sum();
        assert_eq!(total, Span::from_nanos(10));
        assert_eq!(total.scale_f64(2.5), Span::from_nanos(25));
        assert_eq!(total.scale_f64(-1.0), Span::ZERO);
        assert_eq!(total * 3, Span::from_nanos(30));
        assert_eq!(total / 2, Span::from_nanos(5));
    }

    #[test]
    fn ratio_of_spans() {
        let num = Span::from_nanos(456);
        let den = Span::from_nanos(100);
        assert!((num.ratio(den) - 4.56).abs() < 1e-12);
        assert!(num.ratio(Span::ZERO).is_infinite() || num.ratio(Span::ZERO).is_nan());
    }

    #[test]
    fn clock_rate_conversions() {
        let r = ClockRate::from_hz(1e9);
        assert_eq!(r.cycles(1_000), Span::from_micros(1));
        assert!((r.to_cycles(Span::from_micros(1)) - 1_000.0).abs() < 1e-9);

        let fx80 = ClockRate::ALLIANT_FX80;
        assert_eq!(fx80.cycles(10), Span::from_nanos(1_700));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn clock_rate_rejects_zero() {
        let _ = ClockRate::from_ns_per_cycle(0.0);
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(Span::from_nanos(12).to_string(), "12ns");
        assert_eq!(Span::from_micros(12).to_string(), "12.000us");
        assert_eq!(Span::from_millis(12).to_string(), "12.000ms");
        assert_eq!(Span::from_millis(12_000).to_string(), "12.000s");
    }

    #[test]
    fn min_max_helpers() {
        let a = Time::from_nanos(1);
        let b = Time::from_nanos(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            Span::from_nanos(1).max(Span::from_nanos(2)),
            Span::from_nanos(2)
        );
        assert_eq!(
            Span::from_nanos(1).min(Span::from_nanos(2)),
            Span::from_nanos(1)
        );
    }
}
