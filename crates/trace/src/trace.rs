//! The trace container.
//!
//! A [`Trace`] is a totally ordered sequence of [`Event`]s — the paper's
//! `τ = e1..ek` ordered by time (with processor id and emission sequence as
//! deterministic tie-breaks). The same container represents logical
//! (actual), measured, and approximated traces; which one it is depends on
//! provenance, recorded in [`TraceKind`].

use crate::event::{Event, EventKind};
use crate::ids::ProcessorId;
use crate::time::{Span, Time};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Provenance of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TraceKind {
    /// The program's actual performance, free of instrumentation (the
    /// paper's logical event trace `τ`). Only a simulator can produce one
    /// directly.
    #[default]
    Actual,
    /// A trace captured by instrumentation (the paper's `τm`); timestamps
    /// include instrumentation perturbation.
    Measured,
    /// A trace reconstructed by perturbation analysis from a measured trace.
    Approximated,
}

/// A totally ordered event trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    kind: TraceKind,
    events: Vec<Event>,
}

impl Trace {
    /// Creates an empty trace of the given provenance.
    pub fn new(kind: TraceKind) -> Self {
        Trace {
            kind,
            events: Vec::new(),
        }
    }

    /// Builds a trace from events, sorting them into total order.
    pub fn from_events(kind: TraceKind, mut events: Vec<Event>) -> Self {
        events.sort_by_key(Event::order_key);
        Trace { kind, events }
    }

    /// The trace's provenance.
    #[inline]
    pub fn kind(&self) -> TraceKind {
        self.kind
    }

    /// Re-labels the provenance (e.g. after an analysis rewrites times).
    pub fn with_kind(mut self, kind: TraceKind) -> Self {
        self.kind = kind;
        self
    }

    /// Appends an event; it must not order before the current last event.
    ///
    /// # Panics
    /// Panics if the event would violate the total order. Use
    /// [`Trace::from_events`] when events arrive unordered.
    pub fn push(&mut self, event: Event) {
        if let Some(last) = self.events.last() {
            assert!(
                last.order_key() <= event.order_key(),
                "push would violate total order: {last} then {event}"
            );
        }
        self.events.push(event);
    }

    /// Number of events.
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the trace has no events.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events in total order.
    #[inline]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Iterates events in total order.
    pub fn iter(&self) -> impl Iterator<Item = &Event> + '_ {
        self.events.iter()
    }

    /// The earliest timestamp, if any.
    pub fn start_time(&self) -> Option<Time> {
        self.events.first().map(|e| e.time)
    }

    /// The latest timestamp, if any.
    pub fn end_time(&self) -> Option<Time> {
        self.events.last().map(|e| e.time)
    }

    /// Total execution time: last minus first timestamp (zero for traces
    /// with fewer than two events).
    pub fn total_time(&self) -> Span {
        match (self.start_time(), self.end_time()) {
            (Some(s), Some(e)) => e.saturating_since(s),
            _ => Span::ZERO,
        }
    }

    /// The set of processors that emitted at least one event, ascending.
    pub fn processors(&self) -> Vec<ProcessorId> {
        let mut procs: Vec<ProcessorId> = self.events.iter().map(|e| e.proc).collect();
        procs.sort_unstable();
        procs.dedup();
        procs
    }

    /// Per-processor event index lists, in per-thread (== total) order.
    pub fn per_processor(&self) -> BTreeMap<ProcessorId, Vec<usize>> {
        let mut map: BTreeMap<ProcessorId, Vec<usize>> = BTreeMap::new();
        for (i, e) in self.events.iter().enumerate() {
            map.entry(e.proc).or_default().push(i);
        }
        map
    }

    /// Events emitted by one processor, in order.
    pub fn thread(&self, proc: ProcessorId) -> impl Iterator<Item = &Event> + '_ {
        self.events.iter().filter(move |e| e.proc == proc)
    }

    /// Counts events matching a predicate.
    pub fn count_where(&self, mut pred: impl FnMut(&EventKind) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.kind)).count()
    }

    /// Counts synchronization (advance/await) events.
    pub fn sync_event_count(&self) -> usize {
        self.count_where(EventKind::is_sync)
    }

    /// Rewrites every event's timestamp through `f`, then restores total
    /// order (the rewrite may reorder events across processors).
    pub fn map_times(mut self, mut f: impl FnMut(&Event) -> Time) -> Trace {
        for e in &mut self.events {
            e.time = f(&*e);
        }
        self.events.sort_by_key(Event::order_key);
        self
    }

    /// Checks that the container's order invariant holds (used by tests and
    /// after deserialization).
    pub fn is_totally_ordered(&self) -> bool {
        self.events
            .windows(2)
            .all(|w| w[0].order_key() <= w[1].order_key())
    }

    /// Returns the sub-trace of events with `from <= time < to` (total
    /// order preserved; same provenance).
    pub fn window(&self, from: Time, to: Time) -> Trace {
        let events = self
            .events
            .iter()
            .filter(|e| e.time >= from && e.time < to)
            .copied()
            .collect();
        Trace {
            kind: self.kind,
            events,
        }
    }

    /// Returns the sub-trace of one processor's events.
    pub fn filter_proc(&self, proc: ProcessorId) -> Trace {
        let events = self
            .events
            .iter()
            .filter(|e| e.proc == proc)
            .copied()
            .collect();
        Trace {
            kind: self.kind,
            events,
        }
    }

    /// Returns the sub-trace of events whose kind satisfies `pred`.
    pub fn filter_kind(&self, mut pred: impl FnMut(&EventKind) -> bool) -> Trace {
        let events = self
            .events
            .iter()
            .filter(|e| pred(&e.kind))
            .copied()
            .collect();
        Trace {
            kind: self.kind,
            events,
        }
    }

    /// Shifts all timestamps so the first event is at [`Time::ZERO`].
    pub fn rebase_to_zero(mut self) -> Trace {
        if let Some(origin) = self.start_time() {
            let delta = origin.as_nanos();
            for e in &mut self.events {
                e.time = Time::from_nanos(e.time.as_nanos() - delta);
            }
        }
        self
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

/// Merges per-processor event streams into one totally ordered trace.
///
/// Each input stream must already be time-ordered (streams from a single
/// thread's trace buffer always are); the merge is a stable k-way merge by
/// [`Event::order_key`].
pub fn merge_streams(kind: TraceKind, streams: Vec<Vec<Event>>) -> Trace {
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut events = Vec::with_capacity(total);
    for s in streams {
        debug_assert!(s.windows(2).all(|w| w[0].order_key() <= w[1].order_key()));
        events.extend(s);
    }
    Trace::from_events(kind, events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::StatementId;

    fn ev(ns: u64, proc: u16, seq: u64) -> Event {
        Event::new(
            Time::from_nanos(ns),
            ProcessorId(proc),
            seq,
            EventKind::Statement {
                stmt: StatementId(0),
            },
        )
    }

    #[test]
    fn from_events_sorts() {
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![ev(30, 0, 2), ev(10, 1, 0), ev(20, 0, 1)],
        );
        assert!(t.is_totally_ordered());
        assert_eq!(t.start_time(), Some(Time::from_nanos(10)));
        assert_eq!(t.end_time(), Some(Time::from_nanos(30)));
        assert_eq!(t.total_time(), Span::from_nanos(20));
    }

    #[test]
    fn push_preserves_order() {
        let mut t = Trace::new(TraceKind::Actual);
        t.push(ev(1, 0, 0));
        t.push(ev(1, 0, 1)); // equal time, higher seq is fine
        t.push(ev(2, 0, 2));
        assert_eq!(t.len(), 3);
    }

    #[test]
    #[should_panic(expected = "total order")]
    fn push_rejects_out_of_order() {
        let mut t = Trace::new(TraceKind::Actual);
        t.push(ev(5, 0, 0));
        t.push(ev(4, 0, 1));
    }

    #[test]
    fn per_processor_views() {
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![ev(1, 0, 0), ev(2, 1, 1), ev(3, 0, 2), ev(4, 2, 3)],
        );
        let by_proc = t.per_processor();
        assert_eq!(by_proc[&ProcessorId(0)], vec![0, 2]);
        assert_eq!(by_proc[&ProcessorId(1)], vec![1]);
        assert_eq!(
            t.processors(),
            vec![ProcessorId(0), ProcessorId(1), ProcessorId(2)]
        );
        assert_eq!(t.thread(ProcessorId(0)).count(), 2);
    }

    #[test]
    fn merge_streams_interleaves() {
        let s0 = vec![ev(1, 0, 0), ev(5, 0, 2)];
        let s1 = vec![ev(2, 1, 1), ev(9, 1, 3)];
        let t = merge_streams(TraceKind::Measured, vec![s0, s1]);
        let times: Vec<u64> = t.iter().map(|e| e.time.as_nanos()).collect();
        assert_eq!(times, vec![1, 2, 5, 9]);
    }

    #[test]
    fn map_times_restores_order() {
        let t = Trace::from_events(TraceKind::Measured, vec![ev(10, 0, 0), ev(20, 1, 1)]);
        // Invert the times: the map must re-sort.
        let t2 = t.map_times(|e| Time::from_nanos(100 - e.time.as_nanos()));
        assert!(t2.is_totally_ordered());
        assert_eq!(t2.events()[0].proc, ProcessorId(1));
    }

    #[test]
    fn rebase_shifts_origin() {
        let t = Trace::from_events(TraceKind::Measured, vec![ev(100, 0, 0), ev(130, 0, 1)]);
        let t = t.rebase_to_zero();
        assert_eq!(t.start_time(), Some(Time::ZERO));
        assert_eq!(t.end_time(), Some(Time::from_nanos(30)));
    }

    #[test]
    fn empty_trace_edge_cases() {
        let t = Trace::new(TraceKind::Actual);
        assert!(t.is_empty());
        assert_eq!(t.total_time(), Span::ZERO);
        assert_eq!(t.start_time(), None);
        assert!(t.processors().is_empty());
        assert!(t.is_totally_ordered());
    }

    #[test]
    fn window_and_filters() {
        let t = Trace::from_events(
            TraceKind::Measured,
            vec![ev(10, 0, 0), ev(20, 1, 1), ev(30, 0, 2), ev(40, 2, 3)],
        );
        let w = t.window(Time::from_nanos(15), Time::from_nanos(40));
        assert_eq!(w.len(), 2);
        assert!(w.is_totally_ordered());
        assert_eq!(w.kind(), TraceKind::Measured);

        let p = t.filter_proc(ProcessorId(0));
        assert_eq!(p.len(), 2);
        assert!(p.iter().all(|e| e.proc == ProcessorId(0)));

        let k = t.filter_kind(|k| matches!(k, EventKind::Statement { .. }));
        assert_eq!(k.len(), 4);
        let none = t.filter_kind(EventKind::is_sync);
        assert!(none.is_empty());
    }

    #[test]
    fn window_bounds_are_half_open() {
        let t = Trace::from_events(TraceKind::Actual, vec![ev(10, 0, 0), ev(20, 0, 1)]);
        let w = t.window(Time::from_nanos(10), Time::from_nanos(20));
        assert_eq!(w.len(), 1);
        assert_eq!(w.events()[0].time, Time::from_nanos(10));
    }

    #[test]
    fn count_helpers() {
        let mut events = vec![ev(1, 0, 0)];
        events.push(Event::new(
            Time::from_nanos(2),
            ProcessorId(0),
            1,
            EventKind::Advance {
                var: crate::ids::SyncVarId(0),
                tag: crate::ids::SyncTag(0),
            },
        ));
        let t = Trace::from_events(TraceKind::Measured, events);
        assert_eq!(t.sync_event_count(), 1);
        assert_eq!(
            t.count_where(|k| matches!(k, EventKind::Statement { .. })),
            1
        );
    }
}
