//! Instrumentation and synchronization overhead specification.
//!
//! Perturbation analysis takes measured instrumentation costs as input
//! ("the overheads `s_nowait` and `s_wait` are empirically determined and
//! are input to the perturbation analysis", §4.2.3). [`OverheadSpec`]
//! bundles every such constant:
//!
//! - per-event *instrumentation* overheads — the cost of executing the
//!   tracing code that records each event kind (the paper's α for
//!   `advance`, β for `awaitB`, plus the generic statement-event cost);
//! - *synchronization processing* overheads — the cost of the await
//!   operation itself in its two outcomes (`s_nowait`, `s_wait`) and the
//!   barrier release cost, which are properties of the synchronization
//!   implementation rather than of the instrumentation.

use crate::event::EventKind;
use crate::time::Span;
use serde::{Deserialize, Serialize};

/// All timing constants fed to the perturbation models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadSpec {
    /// Instrumentation overhead of recording a statement event.
    pub statement_event: Span,
    /// Instrumentation overhead of recording structural markers
    /// (program/loop/iteration begin/end).
    pub marker_event: Span,
    /// Instrumentation overhead of recording an `advance` event (α).
    pub advance_instr: Span,
    /// Instrumentation overhead of recording an `awaitB` event (β).
    pub await_begin_instr: Span,
    /// Instrumentation overhead of recording an `awaitE` event.
    pub await_end_instr: Span,
    /// Instrumentation overhead of recording a barrier enter/exit event.
    pub barrier_instr: Span,
    /// Synchronization processing cost of an `await` that finds its tag
    /// already advanced (the paper's `s_nowait`).
    pub s_nowait: Span,
    /// Synchronization processing cost of an `await` that had to wait,
    /// counted from the moment the advance occurs to the await's
    /// completion (the paper's `s_wait`).
    pub s_wait: Span,
    /// Processing cost of the `advance` operation itself.
    pub advance_op: Span,
    /// Barrier release cost: from last arrival to each participant's exit.
    pub barrier_release: Span,
}

impl OverheadSpec {
    /// A specification with every constant zero — instrumentation that
    /// costs nothing. Under this spec a measured trace *is* the actual
    /// trace, which property tests exploit.
    pub const ZERO: OverheadSpec = OverheadSpec {
        statement_event: Span::ZERO,
        marker_event: Span::ZERO,
        advance_instr: Span::ZERO,
        await_begin_instr: Span::ZERO,
        await_end_instr: Span::ZERO,
        barrier_instr: Span::ZERO,
        s_nowait: Span::ZERO,
        s_wait: Span::ZERO,
        advance_op: Span::ZERO,
        barrier_release: Span::ZERO,
    };

    /// Overheads representative of the paper's software tracing on the
    /// Alliant FX/80: event recording cost of a few microseconds, sync
    /// processing well below a microsecond. These defaults put full
    /// statement-level instrumentation of the Livermore loops in the
    /// 2–16× slowdown regime reported in Figure 1 and Tables 1–2 (the
    /// workload statement costs in `ppa-lfk` are calibrated against this
    /// spec).
    pub fn alliant_default() -> OverheadSpec {
        OverheadSpec {
            statement_event: Span::from_nanos(4_500),
            marker_event: Span::from_nanos(3_000),
            advance_instr: Span::from_nanos(5_000),
            await_begin_instr: Span::from_nanos(5_000),
            await_end_instr: Span::from_nanos(3_800),
            barrier_instr: Span::from_nanos(3_000),
            s_nowait: Span::from_nanos(200),
            s_wait: Span::from_nanos(400),
            advance_op: Span::from_nanos(100),
            barrier_release: Span::from_nanos(900),
        }
    }

    /// A uniform spec: every instrumentation overhead is `cost`, all
    /// synchronization processing costs are zero. Convenient in unit tests
    /// where only the instrumentation term matters.
    pub fn uniform(cost: Span) -> OverheadSpec {
        OverheadSpec {
            statement_event: cost,
            marker_event: cost,
            advance_instr: cost,
            await_begin_instr: cost,
            await_end_instr: cost,
            barrier_instr: cost,
            s_nowait: Span::ZERO,
            s_wait: Span::ZERO,
            advance_op: Span::ZERO,
            barrier_release: Span::ZERO,
        }
    }

    /// The instrumentation overhead charged for recording one event of the
    /// given kind. This is the amount the perturbation models subtract per
    /// event.
    #[inline]
    pub fn instr_overhead(&self, kind: &EventKind) -> Span {
        match kind {
            EventKind::Statement { .. } => self.statement_event,
            EventKind::ProgramBegin
            | EventKind::ProgramEnd
            | EventKind::LoopBegin { .. }
            | EventKind::LoopEnd { .. }
            | EventKind::IterationBegin { .. }
            | EventKind::IterationEnd { .. } => self.marker_event,
            EventKind::Advance { .. } => self.advance_instr,
            EventKind::AwaitBegin { .. } => self.await_begin_instr,
            EventKind::AwaitEnd { .. } => self.await_end_instr,
            EventKind::BarrierEnter { .. } | EventKind::BarrierExit { .. } => self.barrier_instr,
            // Episode kinds reuse the advance/await cost structure: a
            // release/V/fork is an advance-like enabling record (α-class),
            // a blocked completion (acquire/P/join) is awaitE-like.
            EventKind::LockRelease { .. }
            | EventKind::SemRelease { .. }
            | EventKind::TaskFork { .. } => self.advance_instr,
            EventKind::LockAcquire { .. }
            | EventKind::SemAcquire { .. }
            | EventKind::TaskJoin { .. } => self.await_end_instr,
            // A repeat record is a container artifact, not a recorded
            // action: it must be expanded before any perturbation model
            // charges per-event overhead, so its own cost is zero.
            EventKind::Repeat { .. } => Span::ZERO,
        }
    }

    /// Scales every instrumentation overhead by `factor` (synchronization
    /// processing costs are machine properties and stay fixed). Used by the
    /// overhead-sensitivity ablation.
    pub fn scale_instrumentation(mut self, factor: f64) -> OverheadSpec {
        self.statement_event = self.statement_event.scale_f64(factor);
        self.marker_event = self.marker_event.scale_f64(factor);
        self.advance_instr = self.advance_instr.scale_f64(factor);
        self.await_begin_instr = self.await_begin_instr.scale_f64(factor);
        self.await_end_instr = self.await_end_instr.scale_f64(factor);
        self.barrier_instr = self.barrier_instr.scale_f64(factor);
        self
    }

    /// True if every instrumentation overhead is zero.
    pub fn is_instrumentation_free(&self) -> bool {
        self.statement_event.is_zero()
            && self.marker_event.is_zero()
            && self.advance_instr.is_zero()
            && self.await_begin_instr.is_zero()
            && self.await_end_instr.is_zero()
            && self.barrier_instr.is_zero()
    }
}

impl Default for OverheadSpec {
    fn default() -> Self {
        OverheadSpec::alliant_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{BarrierId, LoopId, StatementId, SyncTag, SyncVarId};

    #[test]
    fn instr_overhead_dispatches_by_kind() {
        let spec = OverheadSpec::alliant_default();
        assert_eq!(
            spec.instr_overhead(&EventKind::Statement {
                stmt: StatementId(1)
            }),
            spec.statement_event
        );
        assert_eq!(
            spec.instr_overhead(&EventKind::Advance {
                var: SyncVarId(0),
                tag: SyncTag(0)
            }),
            spec.advance_instr
        );
        assert_eq!(
            spec.instr_overhead(&EventKind::AwaitBegin {
                var: SyncVarId(0),
                tag: SyncTag(0)
            }),
            spec.await_begin_instr
        );
        assert_eq!(
            spec.instr_overhead(&EventKind::AwaitEnd {
                var: SyncVarId(0),
                tag: SyncTag(0)
            }),
            spec.await_end_instr
        );
        assert_eq!(
            spec.instr_overhead(&EventKind::BarrierEnter {
                barrier: BarrierId(0)
            }),
            spec.barrier_instr
        );
        assert_eq!(
            spec.instr_overhead(&EventKind::LoopBegin { loop_id: LoopId(0) }),
            spec.marker_event
        );
        assert_eq!(
            spec.instr_overhead(&EventKind::ProgramBegin),
            spec.marker_event
        );
    }

    #[test]
    fn zero_spec_is_instrumentation_free() {
        assert!(OverheadSpec::ZERO.is_instrumentation_free());
        assert!(!OverheadSpec::alliant_default().is_instrumentation_free());
    }

    #[test]
    fn scaling_touches_only_instrumentation() {
        let spec = OverheadSpec::alliant_default();
        let doubled = spec.scale_instrumentation(2.0);
        assert_eq!(doubled.statement_event, spec.statement_event * 2);
        assert_eq!(doubled.advance_instr, spec.advance_instr * 2);
        assert_eq!(doubled.s_wait, spec.s_wait);
        assert_eq!(doubled.s_nowait, spec.s_nowait);
        assert_eq!(doubled.barrier_release, spec.barrier_release);

        let zeroed = spec.scale_instrumentation(0.0);
        assert!(zeroed.is_instrumentation_free());
        assert_eq!(zeroed.s_wait, spec.s_wait);
    }

    #[test]
    fn uniform_spec() {
        let spec = OverheadSpec::uniform(Span::from_nanos(100));
        assert_eq!(spec.statement_event, Span::from_nanos(100));
        assert_eq!(spec.barrier_instr, Span::from_nanos(100));
        assert_eq!(spec.s_wait, Span::ZERO);
    }

    #[test]
    fn serde_round_trip() {
        let spec = OverheadSpec::alliant_default();
        let json = serde_json::to_string(&spec).unwrap();
        let back: OverheadSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
