//! Typed records of trace data lost during lenient decoding.
//!
//! Strict readers fail fast: the first CRC mismatch, malformed record, or
//! truncation aborts the stream. Lenient readers (see
//! [`AnyTraceReader::set_lenient`](crate::AnyTraceReader::set_lenient))
//! instead skip the damaged region and keep going, recording one
//! [`TraceGap`] per region so nothing is lost silently: every event the
//! reader could not deliver is accounted for in exactly one gap.
//!
//! Gaps carry whatever the damaged region's framing still reveals — for
//! the binary format the frame summary survives a payload CRC failure, so
//! the gap reports the exact event count and the seq/time span lost; for
//! JSONL a malformed line is a single lost event of unknown seq and time.

use crate::time::Time;
use serde::{Deserialize, Serialize};

/// Why a region of a trace could not be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GapCause {
    /// A binary block's payload failed its CRC32 check.
    CrcMismatch,
    /// A binary block's payload passed its CRC but did not decode to the
    /// events its frame promised (a writer bug or in-frame corruption).
    MalformedPayload,
    /// A binary block frame was implausible (zero or oversized count or
    /// payload length). The frame cannot be trusted to locate the next
    /// block, so lenient decoding ends at this point.
    MalformedFrame,
    /// The input ended inside a block whose frame was already read; the
    /// frame summary still tells how many events the block held.
    TruncatedBlock,
    /// The input ended before delivering the header's declared event
    /// count (mid-frame, or cleanly but short).
    TruncatedStream,
    /// A JSONL line failed to parse as an event.
    MalformedLine,
}

impl std::fmt::Display for GapCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            GapCause::CrcMismatch => "crc-mismatch",
            GapCause::MalformedPayload => "malformed-payload",
            GapCause::MalformedFrame => "malformed-frame",
            GapCause::TruncatedBlock => "truncated-block",
            GapCause::TruncatedStream => "truncated-stream",
            GapCause::MalformedLine => "malformed-line",
        })
    }
}

/// One contiguous region of a trace that lenient decoding skipped.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceGap {
    /// Where the gap sits: the 1-based block index for the binary format,
    /// or the 1-based line number for JSONL.
    pub block: usize,
    /// How many events the gap swallowed. Exact when the block frame
    /// survived; `0` when the loss is unknowable (e.g. a truncated stream
    /// whose header declared an advisory count of zero).
    pub events: u64,
    /// Sequence number of the first lost event, when the framing
    /// recorded it.
    pub first_seq: Option<u64>,
    /// Sequence number of the last lost event, when known.
    pub last_seq: Option<u64>,
    /// Timestamp of the first lost event, when known.
    pub first_time: Option<Time>,
    /// Timestamp of the last lost event, when known.
    pub last_time: Option<Time>,
    /// Why the region could not be decoded.
    pub cause: GapCause,
}

impl std::fmt::Display for TraceGap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gap at block {}: {} event(s) lost ({})",
            self.block, self.events, self.cause
        )?;
        if let (Some(a), Some(b)) = (self.first_seq, self.last_seq) {
            write!(f, ", seq {a}..={b}")?;
        }
        if let (Some(a), Some(b)) = (self.first_time, self.last_time) {
            write!(f, ", time {}ns..={}ns", a.as_nanos(), b.as_nanos())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_display_mentions_span_and_cause() {
        let gap = TraceGap {
            block: 3,
            events: 64,
            first_seq: Some(128),
            last_seq: Some(191),
            first_time: Some(Time::from_nanos(10)),
            last_time: Some(Time::from_nanos(600)),
            cause: GapCause::CrcMismatch,
        };
        let s = gap.to_string();
        assert!(s.contains("block 3"), "{s}");
        assert!(s.contains("64 event(s)"), "{s}");
        assert!(s.contains("crc-mismatch"), "{s}");
        assert!(s.contains("seq 128..=191"), "{s}");
    }

    #[test]
    fn gap_round_trips_through_serde() {
        let gap = TraceGap {
            block: 7,
            events: 12,
            first_seq: None,
            last_seq: None,
            first_time: None,
            last_time: None,
            cause: GapCause::TruncatedStream,
        };
        let text = serde_json::to_string(&gap).unwrap();
        let back: TraceGap = serde_json::from_str(&text).unwrap();
        assert_eq!(gap, back);
    }
}
