//! Property tests for span recording: guards are strictly LIFO per
//! thread, so whatever shape of call tree the pipeline executes, the
//! drained log must be a well-formed forest — child intervals inside
//! their parents, non-ancestor spans on one thread disjoint, and the
//! per-stage totals exactly the sum of span durations.

#![cfg(feature = "enabled")]

use ppa_obs::{span_enter, SpanEvent, SpanRecorder, Stage, STAGE_COUNT};
use proptest::prelude::*;
use std::collections::HashMap;

/// A random call tree: each node opens one stage span and executes its
/// children inside it.
#[derive(Clone, Debug)]
struct Node {
    stage: usize,
    children: Vec<Node>,
}

fn node_count(node: &Node) -> usize {
    1 + node.children.iter().map(node_count).sum::<usize>()
}

fn exec(node: &Node) {
    let _guard = span_enter(Stage::ALL[node.stage]);
    for child in &node.children {
        exec(child);
    }
}

fn arb_tree() -> impl Strategy<Value = Node> {
    let leaf = (0..STAGE_COUNT).prop_map(|stage| Node {
        stage,
        children: Vec::new(),
    });
    leaf.prop_recursive(4, 24, 4, |inner| {
        (0..STAGE_COUNT, proptest::collection::vec(inner, 0..4))
            .prop_map(|(stage, children)| Node { stage, children })
    })
}

fn is_ancestor(by_id: &HashMap<u64, &SpanEvent>, anc: &SpanEvent, e: &SpanEvent) -> bool {
    let mut cur = e.parent;
    while let Some(id) = cur {
        if id == anc.id {
            return true;
        }
        cur = by_id[&id].parent;
    }
    false
}

/// The forest invariants every drained log must satisfy.
fn assert_well_nested(events: &[SpanEvent]) {
    let by_id: HashMap<u64, &SpanEvent> = events.iter().map(|e| (e.id, e)).collect();
    for e in events {
        assert!(
            e.end_ns >= e.start_ns,
            "span {} ends before it starts",
            e.id
        );
        match e.parent {
            None => assert_eq!(e.depth, 0, "parentless span {} must be a root", e.id),
            Some(pid) => {
                let p = by_id.get(&pid).expect("parent span recorded");
                assert_eq!(e.thread, p.thread, "parent on another thread");
                assert_eq!(e.depth, p.depth + 1, "depth is not parent+1");
                assert!(
                    e.start_ns >= p.start_ns && e.end_ns <= p.end_ns,
                    "child [{}, {}] outside parent [{}, {}]",
                    e.start_ns,
                    e.end_ns,
                    p.start_ns,
                    p.end_ns
                );
            }
        }
    }
    // On one thread, spans that are not in an ancestor relation must
    // not overlap (the guard stack forbids interleaving).
    for (i, a) in events.iter().enumerate() {
        for b in &events[i + 1..] {
            if a.thread != b.thread || is_ancestor(&by_id, a, b) || is_ancestor(&by_id, b, a) {
                continue;
            }
            assert!(
                a.end_ns <= b.start_ns || b.end_ns <= a.start_ns,
                "non-nested spans {} and {} overlap on thread {}",
                a.id,
                b.id,
                a.thread
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any forest of call trees on one thread drains to a well-nested
    /// log whose stage totals equal the sum of span durations.
    #[test]
    fn drained_forest_is_well_nested(trees in proptest::collection::vec(arb_tree(), 1..5)) {
        let rec = SpanRecorder::new();
        let bind = rec.bind_current_thread();
        for tree in &trees {
            exec(tree);
        }
        drop(bind);
        let log = rec.drain();

        let expected: usize = trees.iter().map(node_count).sum();
        prop_assert_eq!(log.events.len(), expected);
        prop_assert_eq!(log.dropped, 0);
        assert_well_nested(&log.events);

        // drain sorts by (start_ns, id).
        for w in log.events.windows(2) {
            prop_assert!((w[0].start_ns, w[0].id) < (w[1].start_ns, w[1].id));
        }

        // Totals are exactly the recorded durations, per stage.
        let mut by_stage = [0u64; STAGE_COUNT];
        for e in &log.events {
            by_stage[e.stage.index()] += e.duration_ns();
        }
        prop_assert_eq!(by_stage, log.stage_ns);

        // Sibling roots on a thread execute in entry order.
        let mut roots: Vec<&SpanEvent> = log.events.iter().filter(|e| e.depth == 0).collect();
        prop_assert_eq!(roots.len(), trees.len());
        roots.sort_by_key(|e| e.id);
        for w in roots.windows(2) {
            prop_assert!(w[0].end_ns <= w[1].start_ns);
        }
    }

    /// Concurrent threads recording the same tree into one recorder get
    /// distinct thread ids and independently well-nested forests.
    #[test]
    fn per_thread_forests_stay_separate(tree in arb_tree(), threads in 2usize..4) {
        let rec = SpanRecorder::new();
        std::thread::scope(|s| {
            for _ in 0..threads {
                let rec = rec.clone();
                let tree = &tree;
                s.spawn(move || {
                    let _bind = rec.bind_current_thread();
                    exec(tree);
                });
            }
        });
        let log = rec.drain();
        prop_assert_eq!(log.events.len(), threads * node_count(&tree));
        assert_well_nested(&log.events);

        let mut ids: Vec<u32> = log.events.iter().map(|e| e.thread).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), threads);
    }
}
