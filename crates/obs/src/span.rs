//! Causal span recording: the pipeline tracing itself.
//!
//! The paper's thesis is that an event trace of a system is the ground
//! truth for understanding where its time goes. This module applies
//! that to the reproduction's own pipeline: stages (decode, analysis,
//! checkpointing, ingest...) record [`SpanEvent`]s — begin/end
//! nanosecond intervals with parent attribution — into a
//! [`SpanRecorder`], and exporters in `ppa-trace` turn the recording
//! into a ppa trace the analyzer can be dogfooded on, or a Chrome
//! trace-event file for chrome://tracing.
//!
//! The design follows the crate's probe rules:
//!
//! - **Thread-local, bounded buffers.** A recording thread appends to
//!   its own buffer (one uncontended mutex per span end, taken only by
//!   that thread until drain); buffers are capped and overflow is
//!   counted in [`SpanLog::dropped`], never unbounded.
//! - **RAII nesting.** [`span_enter`] returns a [`SpanGuard`]; guards
//!   are strictly LIFO per thread, so parent/depth attribution falls
//!   out of scope discipline.
//! - **Compile-time erasable.** When the `enabled` feature is off the
//!   crate root aliases the zero-sized mirrors in [`crate::noop`]; a
//!   `span_enter` call then compiles to nothing and `drain` returns an
//!   empty [`SpanLog`]. The data types here ([`Stage`], [`SpanEvent`],
//!   [`SpanLog`]) stay real in both configurations so exporters
//!   downstream keep one code path.
//!
//! Recorders reach code that cannot be handed one explicitly in two
//! ways: [`SpanRecorder::bind_current_thread`] pins a recorder to the
//! calling thread (one server session = one recorder), and
//! [`SpanRecorder::install_global`] makes a recorder the process-wide
//! fallback that any thread — including worker threads the trace codec
//! spawns internally — binds to lazily on its first span.

use crate::active::{Counter, Registry};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Number of [`Stage`] variants (the size of per-stage total arrays).
pub const STAGE_COUNT: usize = 15;

/// The pipeline stage a span measures. One label per instrumented
/// region of the real pipeline; `name()` is the value of the `stage`
/// label on `ppa_stage_ns_total` and the span name in both exporters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Root span: one whole `ppa analyze` run or one server session.
    Run,
    /// Decoding one binary trace block (varint payload -> events).
    Decode,
    /// CRC32 verification of one block payload.
    CrcVerify,
    /// Reorder-buffer drain at end of stream.
    Reorder,
    /// K-way merge of sorted per-shard streams (initial heap fill).
    Merge,
    /// One batch of measured events pushed through the analyzer
    /// (including inline output emission) in `ppa analyze --stream`.
    AnalyzePush,
    /// Analyzer finish: the end-of-stream tail emission.
    AnalyzeEmit,
    /// One resumable checkpoint written (tmp + fsync + rename).
    CheckpointWrite,
    /// One protocol frame header fetched off a server session socket
    /// (covers the wait for the client's next frame).
    FrameRead,
    /// One batch of events ingested by a server session.
    Ingest,
    /// Parking a server session: the eviction/shutdown checkpoint.
    Park,
    /// In-order stitching of decoded blocks in the pipelined parallel
    /// reader (stash lookups plus waiting on decode workers).
    Reassemble,
    /// One incremental (delta) checkpoint record appended.
    DeltaWrite,
    /// Evaluating a slice predicate over a trace stream (`ppa slice`
    /// and `analyze --slice`): filtering plus skip-index accounting.
    Slice,
    /// Redundancy suppression: detecting repeated per-processor
    /// patterns and emitting counted repeat records.
    Suppress,
}

impl Stage {
    /// Every stage, in `index()` order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Run,
        Stage::Decode,
        Stage::CrcVerify,
        Stage::Reorder,
        Stage::Merge,
        Stage::AnalyzePush,
        Stage::AnalyzeEmit,
        Stage::CheckpointWrite,
        Stage::FrameRead,
        Stage::Ingest,
        Stage::Park,
        Stage::Reassemble,
        Stage::DeltaWrite,
        Stage::Slice,
        Stage::Suppress,
    ];

    /// Dense index, `0..STAGE_COUNT` (per-stage array slot and the
    /// sync-variable id in the ppa-trace export).
    pub const fn index(self) -> usize {
        match self {
            Stage::Run => 0,
            Stage::Decode => 1,
            Stage::CrcVerify => 2,
            Stage::Reorder => 3,
            Stage::Merge => 4,
            Stage::AnalyzePush => 5,
            Stage::AnalyzeEmit => 6,
            Stage::CheckpointWrite => 7,
            Stage::FrameRead => 8,
            Stage::Ingest => 9,
            Stage::Park => 10,
            Stage::Reassemble => 11,
            Stage::DeltaWrite => 12,
            Stage::Slice => 13,
            Stage::Suppress => 14,
        }
    }

    /// The `stage` label value / exported span name.
    pub const fn name(self) -> &'static str {
        match self {
            Stage::Run => "run",
            Stage::Decode => "decode",
            Stage::CrcVerify => "crc_verify",
            Stage::Reorder => "reorder",
            Stage::Merge => "merge",
            Stage::AnalyzePush => "analyze_push",
            Stage::AnalyzeEmit => "analyze_emit",
            Stage::CheckpointWrite => "checkpoint_write",
            Stage::FrameRead => "frame_read",
            Stage::Ingest => "ingest",
            Stage::Park => "park",
            Stage::Reassemble => "reassemble",
            Stage::DeltaWrite => "delta_write",
            Stage::Slice => "slice",
            Stage::Suppress => "suppress",
        }
    }
}

/// One recorded span: a closed `[start_ns, end_ns]` interval on one
/// thread, with causal (parent) and data (block/seq) attribution.
/// Times are nanoseconds since the owning recorder's epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Recorder-unique span id (also the exported sync tag, negated).
    pub id: u64,
    /// The span open on the same thread when this one began.
    pub parent: Option<u64>,
    /// Recorder-assigned dense thread number (not the OS tid).
    pub thread: u32,
    /// Nesting depth at entry (0 = root span of its thread).
    pub depth: u16,
    /// Which pipeline stage this span measures.
    pub stage: Stage,
    /// Start, nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the recorder epoch (`>= start_ns`).
    pub end_ns: u64,
    /// Input block index attribution, if the stage has one.
    pub block: Option<u64>,
    /// Event sequence-number attribution, if the stage has one.
    pub seq: Option<u64>,
}

impl SpanEvent {
    /// The span's duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// A drained recording: every completed span, overflow accounting, and
/// per-stage wall-time totals (indexed by [`Stage::index`]).
#[derive(Clone, Debug, Default)]
pub struct SpanLog {
    /// Completed spans, sorted by `(start_ns, id)`.
    pub events: Vec<SpanEvent>,
    /// Spans discarded because a thread's buffer hit its cap.
    pub dropped: u64,
    /// Total nanoseconds per stage (includes dropped spans).
    pub stage_ns: [u64; STAGE_COUNT],
}

impl SpanLog {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.dropped == 0
    }
}

/// Default per-thread span buffer capacity. Spans are batch-grained
/// (one per ~4096 events or per block), so 64 Ki spans per thread
/// covers billions of events before overflow accounting kicks in.
pub const DEFAULT_THREAD_SPAN_CAP: usize = 1 << 16;

struct RecorderCore {
    epoch: Instant,
    next_id: AtomicU64,
    next_thread: AtomicU64,
    cap: usize,
    dropped: AtomicU64,
    stage_ns: [AtomicU64; STAGE_COUNT],
    /// Every thread buffer ever handed out (drain walks them all).
    bufs: Mutex<Vec<Arc<Mutex<Vec<SpanEvent>>>>>,
}

/// Collects [`SpanEvent`]s from any number of threads.
///
/// Clone-cheap (an `Arc` around shared state). See the module docs for
/// the binding model; [`SpanRecorder::drain`] extracts everything
/// recorded so far as a [`SpanLog`].
#[derive(Clone)]
pub struct SpanRecorder {
    core: Arc<RecorderCore>,
}

impl SpanRecorder {
    /// A recorder with the default per-thread buffer cap.
    pub fn new() -> Self {
        Self::with_thread_cap(DEFAULT_THREAD_SPAN_CAP)
    }

    /// A recorder whose per-thread buffers hold at most `cap` spans
    /// (further spans are dropped and counted, never allocated).
    pub fn with_thread_cap(cap: usize) -> Self {
        SpanRecorder {
            core: Arc::new(RecorderCore {
                epoch: Instant::now(),
                next_id: AtomicU64::new(0),
                next_thread: AtomicU64::new(0),
                cap,
                dropped: AtomicU64::new(0),
                stage_ns: [const { AtomicU64::new(0) }; STAGE_COUNT],
                bufs: Mutex::new(Vec::new()),
            }),
        }
    }

    fn new_thread_ctx(&self) -> ThreadCtx {
        let buf = Arc::new(Mutex::new(Vec::new()));
        self.core
            .bufs
            .lock()
            .expect("span buffers poisoned")
            .push(buf.clone());
        ThreadCtx {
            core: self.core.clone(),
            buf,
            thread: self.core.next_thread.fetch_add(1, Ordering::Relaxed) as u32,
            stack: Vec::new(),
            generation: None,
        }
    }

    /// Binds this recorder to the calling thread until the returned
    /// guard drops; [`span_enter`] on this thread records here,
    /// shadowing any installed global recorder. Used by server
    /// sessions (one recorder per session, sessions are
    /// thread-per-stream).
    pub fn bind_current_thread(&self) -> BindGuard {
        let ctx = self.new_thread_ctx();
        let prior = CURRENT.with(|cell| cell.borrow_mut().replace(ctx));
        BindGuard { prior }
    }

    /// Installs this recorder as the process-wide fallback until the
    /// returned guard drops. Threads without an explicit binding —
    /// including worker threads spawned inside the trace codec — bind
    /// to it lazily on their first span. Installing replaces any
    /// previously installed recorder.
    pub fn install_global(&self) -> InstallGuard {
        let mut slot = GLOBAL.write().expect("global recorder poisoned");
        *slot = Some(self.clone());
        GLOBAL_GEN.fetch_add(1, Ordering::Relaxed);
        InstallGuard { _private: () }
    }

    /// Takes everything recorded so far: completed spans from every
    /// thread (sorted by start time), the drop count, and per-stage
    /// totals. Buffers are emptied; recording may continue afterwards.
    pub fn drain(&self) -> SpanLog {
        let mut events = Vec::new();
        for buf in self.core.bufs.lock().expect("span buffers poisoned").iter() {
            events.append(&mut buf.lock().expect("span buffer poisoned"));
        }
        events.sort_by_key(|e| (e.start_ns, e.id));
        SpanLog {
            events,
            dropped: self.core.dropped.load(Ordering::Relaxed),
            stage_ns: self.stage_totals(),
        }
    }

    /// Per-stage wall-time totals so far, indexed by [`Stage::index`].
    pub fn stage_totals(&self) -> [u64; STAGE_COUNT] {
        std::array::from_fn(|i| self.core.stage_ns[i].load(Ordering::Relaxed))
    }
}

impl Default for SpanRecorder {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-wide fallback recorder ([`SpanRecorder::install_global`]).
static GLOBAL: RwLock<Option<SpanRecorder>> = RwLock::new(None);
/// Bumped on every install/uninstall so lazily-bound threads notice a
/// recorder change and rebind (tests install several in one process).
static GLOBAL_GEN: AtomicU64 = AtomicU64::new(0);

struct ThreadCtx {
    core: Arc<RecorderCore>,
    buf: Arc<Mutex<Vec<SpanEvent>>>,
    thread: u32,
    /// Ids of the spans currently open on this thread, in entry order.
    stack: Vec<u64>,
    /// `Some(gen)` when lazily bound from the global recorder at
    /// generation `gen`; `None` for explicit `bind_current_thread`.
    generation: Option<u64>,
}

thread_local! {
    static CURRENT: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

/// Restores the thread's previous recorder binding on drop.
pub struct BindGuard {
    prior: Option<ThreadCtx>,
}

impl Drop for BindGuard {
    fn drop(&mut self) {
        let prior = self.prior.take();
        // try_with: a guard dropped during thread teardown must not abort.
        let _ = CURRENT.try_with(|cell| *cell.borrow_mut() = prior);
    }
}

/// Uninstalls the global recorder on drop.
pub struct InstallGuard {
    _private: (),
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let mut slot = GLOBAL.write().expect("global recorder poisoned");
        *slot = None;
        GLOBAL_GEN.fetch_add(1, Ordering::Relaxed);
    }
}

/// Opens a span for `stage` on the calling thread. The span closes
/// (and is recorded) when the returned guard drops; guards must be
/// dropped in LIFO order per thread. When no recorder is bound or
/// installed, the guard is inert and nothing is recorded.
pub fn span_enter(stage: Stage) -> SpanGuard {
    CURRENT
        .try_with(|cell| {
            let mut cur = cell.borrow_mut();
            // Lazily (re)bind from the global recorder — but never while
            // spans are open against the old binding (the stack must
            // close where it opened).
            let stale = match cur.as_ref() {
                None => true,
                Some(ctx) => {
                    ctx.generation
                        .is_some_and(|g| g != GLOBAL_GEN.load(Ordering::Relaxed))
                        && ctx.stack.is_empty()
                }
            };
            if stale {
                let slot = GLOBAL.read().expect("global recorder poisoned");
                *cur = slot.as_ref().map(|rec| {
                    let mut ctx = rec.new_thread_ctx();
                    ctx.generation = Some(GLOBAL_GEN.load(Ordering::Relaxed));
                    ctx
                });
            }
            match cur.as_mut() {
                Some(ctx) => {
                    let id = ctx.core.next_id.fetch_add(1, Ordering::Relaxed);
                    let parent = ctx.stack.last().copied();
                    let depth = ctx.stack.len().min(u16::MAX as usize) as u16;
                    ctx.stack.push(id);
                    SpanGuard {
                        inner: Some(GuardInner {
                            core: ctx.core.clone(),
                            buf: ctx.buf.clone(),
                            id,
                            parent,
                            thread: ctx.thread,
                            depth,
                            stage,
                            start_ns: elapsed_ns(ctx.core.epoch),
                            block: None,
                            seq: None,
                        }),
                    }
                }
                None => SpanGuard { inner: None },
            }
        })
        .unwrap_or(SpanGuard { inner: None })
}

fn elapsed_ns(epoch: Instant) -> u64 {
    epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

struct GuardInner {
    core: Arc<RecorderCore>,
    buf: Arc<Mutex<Vec<SpanEvent>>>,
    id: u64,
    parent: Option<u64>,
    thread: u32,
    depth: u16,
    stage: Stage,
    start_ns: u64,
    block: Option<u64>,
    seq: Option<u64>,
}

/// An open span; recording happens when it drops. Returned by
/// [`span_enter`].
pub struct SpanGuard {
    inner: Option<GuardInner>,
}

impl SpanGuard {
    /// Attributes the span to an input block index.
    #[inline]
    pub fn attr_block(&mut self, block: u64) {
        if let Some(inner) = &mut self.inner {
            inner.block = Some(block);
        }
    }

    /// Attributes the span to an event sequence number.
    #[inline]
    pub fn attr_seq(&mut self, seq: u64) {
        if let Some(inner) = &mut self.inner {
            inner.seq = Some(seq);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let end_ns = elapsed_ns(inner.core.epoch).max(inner.start_ns);
        inner.core.stage_ns[inner.stage.index()]
            .fetch_add(end_ns - inner.start_ns, Ordering::Relaxed);
        {
            let mut buf = inner.buf.lock().expect("span buffer poisoned");
            if buf.len() < inner.core.cap {
                buf.push(SpanEvent {
                    id: inner.id,
                    parent: inner.parent,
                    thread: inner.thread,
                    depth: inner.depth,
                    stage: inner.stage,
                    start_ns: inner.start_ns,
                    end_ns,
                    block: inner.block,
                    seq: inner.seq,
                });
            } else {
                inner.core.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Close this span on the thread's open stack. Robust to
        // out-of-order drops (rposition, not pop) and to guards that
        // outlive the binding that created them.
        let _ = CURRENT.try_with(|cell| {
            if let Some(ctx) = cell.borrow_mut().as_mut() {
                if Arc::ptr_eq(&ctx.core, &inner.core) {
                    if let Some(pos) = ctx.stack.iter().rposition(|&id| id == inner.id) {
                        ctx.stack.remove(pos);
                    }
                }
            }
        });
    }
}

/// Exports per-stage wall-time totals as `ppa_stage_ns_total{stage=...}`
/// counters (one series per [`Stage`], pre-registered so every
/// snapshot carries the full set even before any span closes).
pub struct StageCounters {
    counters: [Counter; STAGE_COUNT],
}

impl StageCounters {
    /// Registers the `ppa_stage_ns_total` family on `registry`.
    pub fn register(registry: &Registry) -> Self {
        StageCounters {
            counters: Stage::ALL.map(|s| {
                registry.counter_with(
                    "ppa_stage_ns_total",
                    &[("stage", s.name())],
                    "Wall-clock nanoseconds spent in this pipeline stage \
                     (from the self-tracing span recorder).",
                )
            }),
        }
    }

    /// Adds `totals` (nanoseconds per stage, indexed by
    /// [`Stage::index`]) into the counters. Callers that publish a
    /// live recorder repeatedly must pass deltas, not running totals.
    pub fn add_totals(&self, totals: &[u64; STAGE_COUNT]) {
        for (counter, &ns) in self.counters.iter().zip(totals) {
            counter.add(ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global recorder slot is process-wide; tests that install or
    /// depend on its absence serialize through this lock.
    static GLOBAL_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn spans_record_nesting_and_attribution() {
        let rec = SpanRecorder::new();
        let _bind = rec.bind_current_thread();
        {
            let _run = span_enter(Stage::Run);
            {
                let mut d = span_enter(Stage::Decode);
                d.attr_block(7);
                d.attr_seq(4096);
                let _c = span_enter(Stage::CrcVerify);
            }
            let _r = span_enter(Stage::Reorder);
        }
        let log = rec.drain();
        assert_eq!(log.events.len(), 4);
        assert_eq!(log.dropped, 0);
        let run = &log.events[0];
        let decode = &log.events[1];
        let crc = &log.events[2];
        let reorder = &log.events[3];
        assert_eq!(run.stage, Stage::Run);
        assert_eq!(run.depth, 0);
        assert_eq!(run.parent, None);
        assert_eq!(decode.stage, Stage::Decode);
        assert_eq!(decode.parent, Some(run.id));
        assert_eq!(decode.depth, 1);
        assert_eq!(decode.block, Some(7));
        assert_eq!(decode.seq, Some(4096));
        assert_eq!(crc.parent, Some(decode.id));
        assert_eq!(crc.depth, 2);
        assert_eq!(reorder.parent, Some(run.id));
        // Child intervals sit within their parents.
        assert!(decode.start_ns >= run.start_ns && decode.end_ns <= run.end_ns);
        assert!(crc.start_ns >= decode.start_ns && crc.end_ns <= decode.end_ns);
        // Siblings on one thread are disjoint.
        assert!(reorder.start_ns >= decode.end_ns);
        // Totals cover every stage that ran.
        assert!(log.stage_ns[Stage::Run.index()] >= log.stage_ns[Stage::Decode.index()]);
    }

    #[test]
    fn unbound_threads_record_nothing() {
        let _serial = GLOBAL_TEST_LOCK.lock().unwrap();
        let rec = SpanRecorder::new();
        {
            let _s = span_enter(Stage::Decode);
        }
        assert!(rec.drain().is_empty());
    }

    #[test]
    fn global_install_reaches_spawned_threads() {
        let _serial = GLOBAL_TEST_LOCK.lock().unwrap();
        let rec = SpanRecorder::new();
        let _g = rec.install_global();
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    let _sp = span_enter(Stage::Decode);
                });
            }
        });
        {
            let _sp = span_enter(Stage::Merge);
        }
        let log = rec.drain();
        assert_eq!(log.events.len(), 4);
        // Each spawned thread got its own dense thread id.
        let mut threads: Vec<u32> = log.events.iter().map(|e| e.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        assert_eq!(threads.len(), 4);
        drop(_g);
        // After uninstall the lazily-bound thread stops recording.
        {
            let _sp = span_enter(Stage::Decode);
        }
        assert_eq!(rec.drain().events.len(), 0);
    }

    #[test]
    fn a_second_global_recorder_takes_over() {
        let _serial = GLOBAL_TEST_LOCK.lock().unwrap();
        let a = SpanRecorder::new();
        {
            let _g = a.install_global();
            let _sp = span_enter(Stage::Run);
        }
        let b = SpanRecorder::new();
        {
            let _g = b.install_global();
            let _sp = span_enter(Stage::Run);
        }
        assert_eq!(a.drain().events.len(), 1);
        assert_eq!(b.drain().events.len(), 1);
    }

    #[test]
    fn bounded_buffers_drop_and_count() {
        let rec = SpanRecorder::with_thread_cap(2);
        let _bind = rec.bind_current_thread();
        for _ in 0..5 {
            let _sp = span_enter(Stage::Decode);
        }
        let log = rec.drain();
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.dropped, 3);
        // Totals still account for the dropped spans' time.
        assert!(log.stage_ns[Stage::Decode.index()] > 0);
    }

    #[test]
    fn stage_counters_export_the_full_family() {
        let registry = Registry::new();
        let counters = StageCounters::register(&registry);
        let mut totals = [0u64; STAGE_COUNT];
        totals[Stage::Decode.index()] = 123;
        counters.add_totals(&totals);
        let snap = registry.snapshot();
        let family: Vec<_> = snap
            .entries
            .iter()
            .filter(|e| e.name == "ppa_stage_ns_total")
            .collect();
        assert_eq!(family.len(), STAGE_COUNT);
        let decode = family
            .iter()
            .find(|e| e.labels.iter().any(|(_, v)| v == "decode"))
            .expect("decode series");
        assert!(matches!(decode.value, crate::MetricValue::Counter(123)));
    }
}
