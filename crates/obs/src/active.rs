//! The real (atomic-backed) metric implementations.
//!
//! This module is always compiled so it can be tested and calibrated even
//! in builds where the crate-level aliases point at [`crate::noop`]; the
//! `enabled` feature only decides which module the aliases re-export.

use crate::snapshot::{MetricKind, MetricSnapshot, MetricValue, Snapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A monotonic counter.
///
/// Cloning shares the underlying cell. The detached form
/// ([`Counter::noop`]) drops every record on the floor at the cost of a
/// single null-pointer branch, so components can hold a `Counter`
/// unconditionally and let callers decide whether to attach one.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A detached counter: records are discarded.
    pub fn noop() -> Self {
        Counter { cell: None }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.cell {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current count (zero when detached).
    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// A gauge holding one `f64` value (stored as bits in an atomic).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// A detached gauge: records are discarded.
    pub fn noop() -> Self {
        Gauge { cell: None }
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(c) = &self.cell {
            c.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds to the value (compare-and-swap loop; rarely contended).
    pub fn add(&self, delta: f64) {
        if let Some(c) = &self.cell {
            let mut cur = c.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + delta).to_bits();
                match c.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// The current value (zero when detached).
    pub fn get(&self) -> f64 {
        self.cell
            .as_ref()
            .map(|c| f64::from_bits(c.load(Ordering::Relaxed)))
            .unwrap_or(0.0)
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Upper bucket bounds, ascending; an implicit `+Inf` bucket follows.
    bounds: Box<[u64]>,
    /// One count per bound, plus the `+Inf` bucket (non-cumulative).
    counts: Box<[AtomicU64]>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram of `u64` samples (typically nanoseconds).
///
/// Buckets are fixed at registration; observing is a binary search over
/// the bounds plus three relaxed atomic adds — no allocation, no locks.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    cell: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// A detached histogram: records are discarded.
    pub fn noop() -> Self {
        Histogram { cell: None }
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&self, value: u64) {
        if let Some(h) = &self.cell {
            let idx = h.bounds.partition_point(|&b| value > b);
            h.counts[idx].fetch_add(1, Ordering::Relaxed);
            h.sum.fetch_add(value, Ordering::Relaxed);
            h.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Starts a span timer that records its elapsed nanoseconds into this
    /// histogram when dropped. Detached histograms skip the clock read.
    pub fn start(&self) -> Stopwatch<'_> {
        Stopwatch {
            hist: self,
            begin: self.cell.is_some().then(Instant::now),
        }
    }

    /// Total samples recorded (zero when detached).
    pub fn count(&self) -> u64 {
        self.cell
            .as_ref()
            .map(|h| h.count.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Sum of all samples recorded (zero when detached).
    pub fn sum(&self) -> u64 {
        self.cell
            .as_ref()
            .map(|h| h.sum.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// A span timer from [`Histogram::start`]: records elapsed nanoseconds
/// into its histogram on drop.
#[derive(Debug)]
pub struct Stopwatch<'a> {
    hist: &'a Histogram,
    begin: Option<Instant>,
}

impl Drop for Stopwatch<'_> {
    fn drop(&mut self) {
        if let Some(begin) = self.begin {
            let ns = begin.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.hist.observe(ns);
        }
    }
}

#[derive(Debug)]
enum Handle {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

#[derive(Debug)]
struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    handle: Handle,
}

/// A collection of registered metrics.
///
/// Registration takes a mutex (cold path, once per metric); the handles
/// it returns record through lock-free atomics. Cloning shares the
/// registry. Metrics with the same name but different labels form one
/// family, exported under a single `# HELP`/`# TYPE` header.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    entries: Arc<Mutex<Vec<Entry>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn push(&self, name: &str, help: &str, labels: &[(&str, &str)], handle: Handle) {
        self.entries
            .lock()
            .expect("registry mutex poisoned")
            .push(Entry {
                name: name.to_string(),
                help: help.to_string(),
                labels: labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                handle,
            });
    }

    /// Registers an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, &[], help)
    }

    /// Registers a counter carrying the given labels.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        let cell = Arc::new(AtomicU64::new(0));
        self.push(name, help, labels, Handle::Counter(cell.clone()));
        Counter { cell: Some(cell) }
    }

    /// Registers an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, &[], help)
    }

    /// Registers a gauge carrying the given labels.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        let cell = Arc::new(AtomicU64::new(0.0f64.to_bits()));
        self.push(name, help, labels, Handle::Gauge(cell.clone()));
        Gauge { cell: Some(cell) }
    }

    /// Registers an unlabelled histogram with the given ascending bucket
    /// bounds (an implicit `+Inf` bucket is appended).
    pub fn histogram(&self, name: &str, help: &str, bounds: &[u64]) -> Histogram {
        self.histogram_with(name, &[], help, bounds)
    }

    /// Registers a labelled histogram.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        bounds: &[u64],
    ) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascend");
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        let core = Arc::new(HistogramCore {
            bounds: bounds.into(),
            counts,
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        });
        self.push(name, help, labels, Handle::Histogram(core.clone()));
        Histogram { cell: Some(core) }
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.entries.lock().expect("registry mutex poisoned");
        Snapshot {
            entries: entries
                .iter()
                .map(|e| MetricSnapshot {
                    name: e.name.clone(),
                    help: e.help.clone(),
                    labels: e.labels.clone(),
                    value: match &e.handle {
                        Handle::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                        Handle::Gauge(g) => {
                            MetricValue::Gauge(f64::from_bits(g.load(Ordering::Relaxed)))
                        }
                        Handle::Histogram(h) => MetricValue::Histogram {
                            bounds: h.bounds.to_vec(),
                            counts: h.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
                            sum: h.sum.load(Ordering::Relaxed),
                            count: h.count.load(Ordering::Relaxed),
                        },
                    },
                })
                .collect(),
        }
    }
}

/// The snapshot kind of a metric (used by the exporters).
pub(crate) fn kind_of(value: &MetricValue) -> MetricKind {
    match value {
        MetricValue::Counter(_) => MetricKind::Counter,
        MetricValue::Gauge(_) => MetricKind::Gauge,
        MetricValue::Histogram { .. } => MetricKind::Histogram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let r = Registry::new();
        let c = r.counter("ppa_events_total", "events");
        let g = r.gauge("ppa_depth", "depth");
        c.inc();
        c.add(9);
        g.set(4.0);
        g.add(0.5);
        assert_eq!(c.get(), 10);
        assert_eq!(g.get(), 4.5);
        let snap = r.snapshot();
        assert_eq!(snap.entries.len(), 2);
        assert!(matches!(snap.entries[0].value, MetricValue::Counter(10)));
    }

    #[test]
    fn histogram_buckets_partition_samples() {
        let r = Registry::new();
        let h = r.histogram("ppa_lat", "latency", &[10, 100, 1000]);
        for v in [5, 10, 11, 100, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5126);
        match &r.snapshot().entries[0].value {
            MetricValue::Histogram { counts, .. } => {
                // le=10: {5,10}; le=100: {11,100}; le=1000: {}; +Inf: {5000}
                assert_eq!(counts, &vec![2, 2, 0, 1]);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn stopwatch_records_on_drop() {
        let r = Registry::new();
        let h = r.histogram("ppa_span", "span", &[1_000_000_000]);
        {
            let _t = h.start();
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn handles_are_shared_across_clones_and_threads() {
        let r = Registry::new();
        let c = r.counter("ppa_shared_total", "shared");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
