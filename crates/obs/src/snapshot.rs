//! Point-in-time metric snapshots and their exporters.
//!
//! A [`Snapshot`] is a plain-data copy of a registry taken at one instant;
//! [`prometheus_text`] and [`json_text`] serialize it. Both exporters are
//! hand-rolled so this crate stays dependency-free.

use crate::active::kind_of;

/// The export kind of a metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// A monotonically increasing count.
    Counter,
    /// A value that can move in either direction.
    Gauge,
    /// A distribution over fixed buckets.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A point-in-time value of one metric.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state.
    Histogram {
        /// Upper bucket bounds, ascending; an implicit `+Inf` bucket follows.
        bounds: Vec<u64>,
        /// Per-bucket (non-cumulative) counts; `bounds.len() + 1` entries,
        /// the last being the `+Inf` bucket.
        counts: Vec<u64>,
        /// Sum of all observed samples.
        sum: u64,
        /// Total number of observed samples.
        count: u64,
    },
}

/// One registered metric captured at snapshot time.
#[derive(Clone, Debug)]
pub struct MetricSnapshot {
    /// Metric name (`ppa_`-prefixed snake_case).
    pub name: String,
    /// Help text shown in the `# HELP` line.
    pub help: String,
    /// Static labels fixed at registration.
    pub labels: Vec<(String, String)>,
    /// The captured value.
    pub value: MetricValue,
}

/// A point-in-time copy of every metric in a registry.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// The captured metrics, in registration order.
    pub entries: Vec<MetricSnapshot>,
}

/// Exponentially spaced histogram bucket bounds: `base * factor^i` for
/// `i in 0..count`, deduplicated and ascending. Handy for latency
/// histograms spanning several orders of magnitude.
///
/// ```
/// assert_eq!(ppa_obs::exponential_bounds(10, 10.0, 4), vec![10, 100, 1000, 10000]);
/// ```
pub fn exponential_bounds(base: u64, factor: f64, count: usize) -> Vec<u64> {
    assert!(base > 0, "base must be positive");
    assert!(factor > 1.0, "factor must exceed 1");
    let mut bounds = Vec::with_capacity(count);
    let mut cur = base as f64;
    for _ in 0..count {
        let b = cur.min(u64::MAX as f64) as u64;
        if bounds.last() != Some(&b) {
            bounds.push(b);
        }
        cur *= factor;
    }
    bounds
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders a snapshot in the Prometheus text exposition format.
///
/// Metrics sharing a name form one family: the `# HELP`/`# TYPE` header is
/// emitted once (from the first registration), followed by one sample line
/// per label set. Histograms expand to cumulative `_bucket{le=...}` lines
/// plus `_sum` and `_count`.
pub fn prometheus_text(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let mut seen: Vec<&str> = Vec::new();
    for entry in &snapshot.entries {
        if !seen.contains(&entry.name.as_str()) {
            seen.push(&entry.name);
            out.push_str(&format!(
                "# HELP {} {}\n# TYPE {} {}\n",
                entry.name,
                entry.help,
                entry.name,
                kind_of(&entry.value).as_str()
            ));
            // Emit every family member together, regardless of
            // registration interleaving.
            for member in snapshot.entries.iter().filter(|m| m.name == entry.name) {
                render_sample(&mut out, member);
            }
        }
    }
    out
}

fn render_sample(out: &mut String, m: &MetricSnapshot) {
    match &m.value {
        MetricValue::Counter(v) => {
            out.push_str(&format!("{}{} {v}\n", m.name, label_block(&m.labels, None)));
        }
        MetricValue::Gauge(v) => {
            out.push_str(&format!(
                "{}{} {}\n",
                m.name,
                label_block(&m.labels, None),
                fmt_f64(*v)
            ));
        }
        MetricValue::Histogram {
            bounds,
            counts,
            sum,
            count,
        } => {
            let mut cumulative = 0u64;
            for (i, c) in counts.iter().enumerate() {
                cumulative += c;
                let le = bounds
                    .get(i)
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "+Inf".to_string());
                out.push_str(&format!(
                    "{}_bucket{} {cumulative}\n",
                    m.name,
                    label_block(&m.labels, Some(("le", &le)))
                ));
            }
            out.push_str(&format!(
                "{}_sum{} {sum}\n",
                m.name,
                label_block(&m.labels, None)
            ));
            out.push_str(&format!(
                "{}_count{} {count}\n",
                m.name,
                label_block(&m.labels, None)
            ));
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_u64_list(values: &[u64]) -> String {
    let items: Vec<String> = values.iter().map(|v| v.to_string()).collect();
    format!("[{}]", items.join(","))
}

/// Renders a snapshot as a JSON document: an object with a `"metrics"`
/// array, each element carrying `name`, `kind`, `help`, `labels`, and a
/// kind-specific `value` (number for counters/gauges; an object with
/// `bounds`/`counts`/`sum`/`count` for histograms).
pub fn json_text(snapshot: &Snapshot) -> String {
    let mut items = Vec::with_capacity(snapshot.entries.len());
    for m in &snapshot.entries {
        let labels: Vec<String> = m
            .labels
            .iter()
            .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
            .collect();
        let value = match &m.value {
            MetricValue::Counter(v) => v.to_string(),
            MetricValue::Gauge(v) => {
                if v.is_finite() {
                    fmt_f64(*v)
                } else {
                    "null".to_string()
                }
            }
            MetricValue::Histogram {
                bounds,
                counts,
                sum,
                count,
            } => format!(
                "{{\"bounds\":{},\"counts\":{},\"sum\":{sum},\"count\":{count}}}",
                json_u64_list(bounds),
                json_u64_list(counts)
            ),
        };
        items.push(format!(
            "{{\"name\":\"{}\",\"kind\":\"{}\",\"help\":\"{}\",\"labels\":{{{}}},\"value\":{value}}}",
            json_escape(&m.name),
            kind_of(&m.value).as_str(),
            json_escape(&m.help),
            labels.join(",")
        ));
    }
    format!("{{\"metrics\":[{}]}}\n", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::active::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        let c = r.counter("ppa_events_pushed_total", "Events pushed.");
        c.add(42);
        let g = r.gauge_with("ppa_watermark_lag", &[("unit", "ns")], "Watermark lag.");
        g.set(1.5);
        let h = r.histogram("ppa_join_wait_ns", "Join wait.", &[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(500);
        r
    }

    #[test]
    fn prometheus_text_renders_all_kinds() {
        let text = prometheus_text(&sample_registry().snapshot());
        assert!(text.contains("# HELP ppa_events_pushed_total Events pushed.\n"));
        assert!(text.contains("# TYPE ppa_events_pushed_total counter\n"));
        assert!(text.contains("ppa_events_pushed_total 42\n"));
        assert!(text.contains("ppa_watermark_lag{unit=\"ns\"} 1.5\n"));
        assert!(text.contains("# TYPE ppa_join_wait_ns histogram\n"));
        assert!(text.contains("ppa_join_wait_ns_bucket{le=\"10\"} 1\n"));
        assert!(text.contains("ppa_join_wait_ns_bucket{le=\"100\"} 2\n"));
        assert!(text.contains("ppa_join_wait_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("ppa_join_wait_ns_sum 555\n"));
        assert!(text.contains("ppa_join_wait_ns_count 3\n"));
    }

    #[test]
    fn prometheus_groups_label_variants_under_one_header() {
        let r = Registry::new();
        r.counter_with("ppa_shard_events_total", &[("shard", "p0")], "Per shard.")
            .add(7);
        r.gauge("ppa_other", "Other.").set(1.0);
        r.counter_with("ppa_shard_events_total", &[("shard", "p1")], "Per shard.")
            .add(9);
        let text = prometheus_text(&r.snapshot());
        assert_eq!(text.matches("# TYPE ppa_shard_events_total").count(), 1);
        let p0 = text.find("ppa_shard_events_total{shard=\"p0\"} 7").unwrap();
        let p1 = text.find("ppa_shard_events_total{shard=\"p1\"} 9").unwrap();
        let other = text.find("ppa_other 1").unwrap();
        // Family members are contiguous even though registration interleaved.
        assert!(p0 < p1 && (other < p0 || other > p1));
    }

    #[test]
    fn json_text_is_valid_json_with_expected_shape() {
        let text = json_text(&sample_registry().snapshot());
        let doc: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        let metrics = doc["metrics"].as_array().unwrap();
        assert_eq!(metrics.len(), 3);
        assert_eq!(metrics[0]["name"].as_str(), Some("ppa_events_pushed_total"));
        assert_eq!(metrics[0]["kind"].as_str(), Some("counter"));
        assert_eq!(metrics[0]["value"].as_u64(), Some(42));
        assert_eq!(metrics[1]["labels"]["unit"].as_str(), Some("ns"));
        assert_eq!(metrics[2]["value"]["count"].as_u64(), Some(3));
        assert_eq!(metrics[2]["value"]["counts"][2].as_u64(), Some(1));
    }

    #[test]
    fn json_escapes_control_and_quote_characters() {
        let r = Registry::new();
        r.counter_with("ppa_q_total", &[("k", "a\"b\\c\nd")], "he\"lp")
            .add(1);
        let text = json_text(&r.snapshot());
        let doc: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        assert_eq!(
            doc["metrics"][0]["labels"]["k"].as_str(),
            Some("a\"b\\c\nd")
        );
        assert_eq!(doc["metrics"][0]["help"].as_str(), Some("he\"lp"));
    }

    #[test]
    fn exponential_bounds_deduplicate_and_ascend() {
        let b = exponential_bounds(1, 2.0, 6);
        assert_eq!(b, vec![1, 2, 4, 8, 16, 32]);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
    }
}
