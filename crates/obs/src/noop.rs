//! Zero-sized, zero-cost mirrors of the active metric types.
//!
//! Every type here is a unit struct and every method an empty `#[inline]`
//! body, so a probe compiled against this module costs nothing — no
//! memory, no branches, no atomics. The crate-level tests assert the
//! zero-size property at compile time. When the `enabled` feature is off,
//! the crate root aliases these types, erasing all observability from the
//! build; they are also always available under `ppa_obs::noop` so the
//! erased configuration stays testable from an enabled build.

use crate::snapshot::Snapshot;

/// No-op mirror of [`crate::active::Counter`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Counter;

impl Counter {
    /// A detached counter (indistinguishable from any other).
    #[inline]
    pub fn noop() -> Self {
        Counter
    }

    /// Discards the record.
    #[inline]
    pub fn inc(&self) {}

    /// Discards the record.
    #[inline]
    pub fn add(&self, _n: u64) {}

    /// Always zero.
    #[inline]
    pub fn get(&self) -> u64 {
        0
    }
}

/// No-op mirror of [`crate::active::Gauge`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Gauge;

impl Gauge {
    /// A detached gauge (indistinguishable from any other).
    #[inline]
    pub fn noop() -> Self {
        Gauge
    }

    /// Discards the record.
    #[inline]
    pub fn set(&self, _v: f64) {}

    /// Discards the record.
    #[inline]
    pub fn add(&self, _delta: f64) {}

    /// Always zero.
    #[inline]
    pub fn get(&self) -> f64 {
        0.0
    }
}

/// No-op mirror of [`crate::active::Histogram`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Histogram;

impl Histogram {
    /// A detached histogram (indistinguishable from any other).
    #[inline]
    pub fn noop() -> Self {
        Histogram
    }

    /// Discards the record.
    #[inline]
    pub fn observe(&self, _value: u64) {}

    /// A stopwatch that reads no clock and records nothing.
    #[inline]
    pub fn start(&self) -> Stopwatch {
        Stopwatch
    }

    /// Always zero.
    #[inline]
    pub fn count(&self) -> u64 {
        0
    }

    /// Always zero.
    #[inline]
    pub fn sum(&self) -> u64 {
        0
    }
}

/// No-op mirror of [`crate::active::Stopwatch`]: no clock read, no record.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stopwatch;

/// No-op mirror of [`crate::active::Registry`]: hands out no-op handles
/// and snapshots to nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct Registry;

impl Registry {
    /// An empty registry.
    #[inline]
    pub fn new() -> Self {
        Registry
    }

    /// A no-op counter.
    #[inline]
    pub fn counter(&self, _name: &str, _help: &str) -> Counter {
        Counter
    }

    /// A no-op counter.
    #[inline]
    pub fn counter_with(&self, _name: &str, _labels: &[(&str, &str)], _help: &str) -> Counter {
        Counter
    }

    /// A no-op gauge.
    #[inline]
    pub fn gauge(&self, _name: &str, _help: &str) -> Gauge {
        Gauge
    }

    /// A no-op gauge.
    #[inline]
    pub fn gauge_with(&self, _name: &str, _labels: &[(&str, &str)], _help: &str) -> Gauge {
        Gauge
    }

    /// A no-op histogram.
    #[inline]
    pub fn histogram(&self, _name: &str, _help: &str, _bounds: &[u64]) -> Histogram {
        Histogram
    }

    /// A no-op histogram.
    #[inline]
    pub fn histogram_with(
        &self,
        _name: &str,
        _labels: &[(&str, &str)],
        _help: &str,
        _bounds: &[u64],
    ) -> Histogram {
        Histogram
    }

    /// Always empty.
    #[inline]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::default()
    }
}
