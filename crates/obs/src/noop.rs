//! Zero-sized, zero-cost mirrors of the active metric types.
//!
//! Every type here is a unit struct and every method an empty `#[inline]`
//! body, so a probe compiled against this module costs nothing — no
//! memory, no branches, no atomics. The crate-level tests assert the
//! zero-size property at compile time. When the `enabled` feature is off,
//! the crate root aliases these types, erasing all observability from the
//! build; they are also always available under `ppa_obs::noop` so the
//! erased configuration stays testable from an enabled build.

use crate::snapshot::Snapshot;
use crate::span::{SpanLog, Stage, STAGE_COUNT};

/// No-op mirror of [`crate::active::Counter`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Counter;

impl Counter {
    /// A detached counter (indistinguishable from any other).
    #[inline]
    pub fn noop() -> Self {
        Counter
    }

    /// Discards the record.
    #[inline]
    pub fn inc(&self) {}

    /// Discards the record.
    #[inline]
    pub fn add(&self, _n: u64) {}

    /// Always zero.
    #[inline]
    pub fn get(&self) -> u64 {
        0
    }
}

/// No-op mirror of [`crate::active::Gauge`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Gauge;

impl Gauge {
    /// A detached gauge (indistinguishable from any other).
    #[inline]
    pub fn noop() -> Self {
        Gauge
    }

    /// Discards the record.
    #[inline]
    pub fn set(&self, _v: f64) {}

    /// Discards the record.
    #[inline]
    pub fn add(&self, _delta: f64) {}

    /// Always zero.
    #[inline]
    pub fn get(&self) -> f64 {
        0.0
    }
}

/// No-op mirror of [`crate::active::Histogram`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Histogram;

impl Histogram {
    /// A detached histogram (indistinguishable from any other).
    #[inline]
    pub fn noop() -> Self {
        Histogram
    }

    /// Discards the record.
    #[inline]
    pub fn observe(&self, _value: u64) {}

    /// A stopwatch that reads no clock and records nothing.
    #[inline]
    pub fn start(&self) -> Stopwatch {
        Stopwatch
    }

    /// Always zero.
    #[inline]
    pub fn count(&self) -> u64 {
        0
    }

    /// Always zero.
    #[inline]
    pub fn sum(&self) -> u64 {
        0
    }
}

/// No-op mirror of [`crate::active::Stopwatch`]: no clock read, no record.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stopwatch;

/// No-op mirror of [`crate::active::Registry`]: hands out no-op handles
/// and snapshots to nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct Registry;

impl Registry {
    /// An empty registry.
    #[inline]
    pub fn new() -> Self {
        Registry
    }

    /// A no-op counter.
    #[inline]
    pub fn counter(&self, _name: &str, _help: &str) -> Counter {
        Counter
    }

    /// A no-op counter.
    #[inline]
    pub fn counter_with(&self, _name: &str, _labels: &[(&str, &str)], _help: &str) -> Counter {
        Counter
    }

    /// A no-op gauge.
    #[inline]
    pub fn gauge(&self, _name: &str, _help: &str) -> Gauge {
        Gauge
    }

    /// A no-op gauge.
    #[inline]
    pub fn gauge_with(&self, _name: &str, _labels: &[(&str, &str)], _help: &str) -> Gauge {
        Gauge
    }

    /// A no-op histogram.
    #[inline]
    pub fn histogram(&self, _name: &str, _help: &str, _bounds: &[u64]) -> Histogram {
        Histogram
    }

    /// A no-op histogram.
    #[inline]
    pub fn histogram_with(
        &self,
        _name: &str,
        _labels: &[(&str, &str)],
        _help: &str,
        _bounds: &[u64],
    ) -> Histogram {
        Histogram
    }

    /// Always empty.
    #[inline]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::default()
    }
}

/// No-op mirror of [`crate::span::SpanRecorder`]: accepts bindings and
/// drains to an empty [`SpanLog`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SpanRecorder;

impl SpanRecorder {
    /// A recorder that records nothing.
    #[inline]
    pub fn new() -> Self {
        SpanRecorder
    }

    /// A recorder that records nothing (the cap is irrelevant).
    #[inline]
    pub fn with_thread_cap(_cap: usize) -> Self {
        SpanRecorder
    }

    /// Binds nothing; the guard restores nothing.
    #[inline]
    pub fn bind_current_thread(&self) -> BindGuard {
        BindGuard
    }

    /// Installs nothing; the guard uninstalls nothing.
    #[inline]
    pub fn install_global(&self) -> InstallGuard {
        InstallGuard
    }

    /// Always an empty log.
    #[inline]
    pub fn drain(&self) -> SpanLog {
        SpanLog::default()
    }

    /// Always all-zero totals.
    #[inline]
    pub fn stage_totals(&self) -> [u64; STAGE_COUNT] {
        [0; STAGE_COUNT]
    }
}

/// No-op mirror of [`crate::span::BindGuard`]. Not `Copy`: like the
/// active guard, dropping it is meaningful to callers.
#[derive(Debug, Default)]
pub struct BindGuard;

/// No-op mirror of [`crate::span::InstallGuard`].
#[derive(Debug, Default)]
pub struct InstallGuard;

/// No-op mirror of [`crate::span::SpanGuard`]: no clock read, no record.
#[derive(Debug, Default)]
pub struct SpanGuard;

impl SpanGuard {
    /// Discards the attribution.
    #[inline]
    pub fn attr_block(&mut self, _block: u64) {}

    /// Discards the attribution.
    #[inline]
    pub fn attr_seq(&mut self, _seq: u64) {}
}

/// No-op mirror of [`crate::span::span_enter`]: an inert guard.
#[inline]
pub fn span_enter(_stage: Stage) -> SpanGuard {
    SpanGuard
}

/// No-op mirror of [`crate::span::StageCounters`].
#[derive(Clone, Copy, Debug, Default)]
pub struct StageCounters;

impl StageCounters {
    /// Registers nothing.
    #[inline]
    pub fn register(_registry: &Registry) -> Self {
        StageCounters
    }

    /// Discards the totals.
    #[inline]
    pub fn add_totals(&self, _totals: &[u64; STAGE_COUNT]) {}
}
