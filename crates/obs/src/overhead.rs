//! Self-overhead calibration: what does a probe cost on this machine?
//!
//! The paper's discipline is that instrumentation cost must be measured,
//! not assumed. This module times the *active* probe operations in a
//! tight loop (the same in-vitro technique as the clock calibration in
//! `crates/native`) so snapshots can report their own perturbation.

use crate::active;
use std::time::Instant;

/// Calibrated per-operation cost of the active probes, in nanoseconds.
///
/// Produced by [`calibrate_self_overhead`]. These are in-vitro estimates:
/// a hot loop over a resident cache line, so they are a lower bound on
/// the in-situ cost (real call sites may add cache misses and contention)
/// but the right number for first-order perturbation accounting — total
/// overhead ≈ probe count × per-probe cost.
#[derive(Clone, Copy, Debug)]
pub struct SelfOverhead {
    /// Cost of one attached `Counter::inc`, in nanoseconds.
    pub counter_inc_ns: f64,
    /// Cost of one attached `Gauge::set`, in nanoseconds.
    pub gauge_set_ns: f64,
    /// Cost of one attached `Histogram::observe`, in nanoseconds.
    pub histogram_observe_ns: f64,
}

impl SelfOverhead {
    /// The mean cost across the three probe kinds — the single
    /// `ppa_obs_self_overhead_ns_per_probe` figure exported in snapshots.
    pub fn per_probe_ns(&self) -> f64 {
        (self.counter_inc_ns + self.gauge_set_ns + self.histogram_observe_ns) / 3.0
    }

    /// Registers the calibration as gauges on `registry` so every export
    /// carries its own perturbation estimate:
    /// `ppa_obs_self_overhead_ns_per_probe` plus one
    /// `ppa_obs_self_overhead_ns{probe=...}` gauge per probe kind.
    ///
    /// On a no-op registry (observability erased) this is itself a no-op.
    pub fn export(&self, registry: &crate::Registry) {
        registry
            .gauge(
                "ppa_obs_self_overhead_ns_per_probe",
                "Calibrated mean cost of one metric probe, in nanoseconds.",
            )
            .set(self.per_probe_ns());
        for (kind, ns) in [
            ("counter_inc", self.counter_inc_ns),
            ("gauge_set", self.gauge_set_ns),
            ("histogram_observe", self.histogram_observe_ns),
        ] {
            registry
                .gauge_with(
                    "ppa_obs_self_overhead_ns",
                    &[("probe", kind)],
                    "Calibrated cost of one probe operation by kind, in nanoseconds.",
                )
                .set(ns);
        }
    }
}

/// Number of probe operations timed per calibration loop. Large enough to
/// amortize the two `Instant::now` reads bracketing the loop, small
/// enough to finish in microseconds.
const N: u64 = 100_000;

fn time_loop(mut op: impl FnMut(u64)) -> f64 {
    let begin = Instant::now();
    for i in 0..N {
        op(i);
    }
    begin.elapsed().as_nanos() as f64 / N as f64
}

/// Measures the per-operation cost of attached active probes on the
/// running machine.
///
/// Always times the [`active`](crate::active) implementation — even in a
/// build where observability is erased, the question "what would a probe
/// cost here?" has a real answer. Takes a few hundred microseconds.
pub fn calibrate_self_overhead() -> SelfOverhead {
    let registry = active::Registry::new();
    let counter = registry.counter("ppa_obs_calibration_counter", "calibration scratch");
    let gauge = registry.gauge("ppa_obs_calibration_gauge", "calibration scratch");
    let histogram = registry.histogram(
        "ppa_obs_calibration_histogram",
        "calibration scratch",
        &[16, 64, 256, 1024, 4096],
    );

    // Warm the cells (first touch allocates cache lines, not probe cost).
    counter.inc();
    gauge.set(0.0);
    histogram.observe(1);

    SelfOverhead {
        counter_inc_ns: time_loop(|_| counter.inc()),
        gauge_set_ns: time_loop(|i| gauge.set(i as f64)),
        histogram_observe_ns: time_loop(|i| histogram.observe(i & 0xFFF)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_yields_sane_positive_costs() {
        let oh = calibrate_self_overhead();
        for ns in [oh.counter_inc_ns, oh.gauge_set_ns, oh.histogram_observe_ns] {
            assert!(ns > 0.0, "probe cost must be positive, got {ns}");
            assert!(ns < 10_000.0, "probe cost implausibly high: {ns} ns");
        }
        let mean = oh.per_probe_ns();
        assert!(
            mean >= oh
                .counter_inc_ns
                .min(oh.gauge_set_ns.min(oh.histogram_observe_ns))
        );
        assert!(
            mean <= oh
                .counter_inc_ns
                .max(oh.gauge_set_ns.max(oh.histogram_observe_ns))
        );
    }

    #[test]
    fn export_registers_the_per_probe_gauge() {
        let oh = SelfOverhead {
            counter_inc_ns: 3.0,
            gauge_set_ns: 5.0,
            histogram_observe_ns: 10.0,
        };
        let registry = crate::Registry::new();
        oh.export(&registry);
        let text = crate::prometheus_text(&registry.snapshot());
        if crate::ENABLED {
            assert!(text.contains("ppa_obs_self_overhead_ns_per_probe 6\n"));
            assert!(text.contains("ppa_obs_self_overhead_ns{probe=\"counter_inc\"} 3\n"));
        } else {
            assert!(text.is_empty());
        }
    }
}
