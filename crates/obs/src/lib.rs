//! # ppa-obs — self-observability for the analysis pipeline
//!
//! The paper's subject is the Instrumentation Uncertainty Principle:
//! measurement perturbs the system being measured. This crate applies
//! that discipline to the reproduction's own pipeline — it provides the
//! probes the analyzer, stream I/O, sharded runner, simulator, and CLI
//! use to watch themselves, *and* the machinery to account for what those
//! probes cost ([`calibrate_self_overhead`]).
//!
//! ## Design
//!
//! - **Lock-free hot path.** [`Counter`], [`Gauge`], and [`Histogram`]
//!   are single atomics (or a fixed array of atomics for histogram
//!   buckets); recording is a relaxed atomic op with no allocation.
//!   Registration ([`Registry`]) is the only locking operation and
//!   happens once per metric, off the hot path.
//! - **Detachable.** Every handle has a detached ([`Counter::noop`])
//!   state whose record operations reduce to one branch on a null
//!   pointer. Components take probe structs by value and default to
//!   detached probes, so un-observed pipelines pay almost nothing.
//! - **Compile-time erasable.** With the `enabled` feature off (build
//!   with `--no-default-features` through the `obs` feature chain), the
//!   top-level types alias the zero-sized mirrors in [`noop`] and every
//!   probe call compiles to nothing. [`ENABLED`] reports which
//!   configuration was built. Both implementations are always compiled
//!   and testable as [`active`] and [`noop`]; the feature only selects
//!   which one the rest of the workspace sees.
//! - **Self-overhead accounting.** [`calibrate_self_overhead`] times the
//!   *active* probe operations on the running machine, so exported
//!   snapshots can carry `ppa_obs_self_overhead_ns_per_probe` — an
//!   estimate of the perturbation the metrics themselves introduce, in
//!   the spirit of the paper's in-vitro overhead calibration (§2).
//!
//! ## Conventions
//!
//! Metric names are `snake_case` with a `ppa_` prefix; counters end in
//! `_total`; durations are nanoseconds unless the name says otherwise.
//! Labels are static key/value pairs fixed at registration (e.g.
//! `shard="p3"`). Snapshots export to the Prometheus text format
//! ([`prometheus_text`]) or a JSON document ([`json_text`]).
//!
//! Loss and recovery are first-class observables: lenient trace decoding
//! accounts for damage in `ppa_stream_gaps_total` /
//! `ppa_stream_events_lost_total` (labelled `dir="read"|"write"` like
//! the other stream metrics), the reorder buffer reports
//! `ppa_reorder_resorted_total` / `ppa_reorder_rejected_total`, and
//! checkpointing reports `ppa_checkpoints_written_total`. A consumer can
//! therefore tell a clean run from a degraded one by metrics alone —
//! README's metric table is the complete inventory.
//!
//! ```
//! use ppa_obs::{Registry, prometheus_text};
//!
//! let registry = Registry::new();
//! let pushed = registry.counter("ppa_events_pushed_total", "Events pushed.");
//! pushed.add(3);
//! let text = prometheus_text(&registry.snapshot());
//! # #[cfg(feature = "enabled")]
//! assert!(text.contains("ppa_events_pushed_total 3"));
//! ```

#![warn(missing_docs)]

pub mod active;
pub mod noop;
mod overhead;
mod snapshot;
pub mod span;

pub use overhead::{calibrate_self_overhead, SelfOverhead};
pub use snapshot::{
    exponential_bounds, json_text, prometheus_text, MetricKind, MetricSnapshot, MetricValue,
    Snapshot,
};
// The span data model is real in both configurations (exporters
// downstream consume a drained SpanLog either way); only the recording
// machinery below is feature-selected.
pub use span::{SpanEvent, SpanLog, Stage, DEFAULT_THREAD_SPAN_CAP, STAGE_COUNT};

/// Whether observability is compiled in (`true`) or erased (`false`).
pub const ENABLED: bool = cfg!(feature = "enabled");

#[cfg(feature = "enabled")]
pub use active::{Counter, Gauge, Histogram, Registry, Stopwatch};
#[cfg(feature = "enabled")]
pub use span::{span_enter, BindGuard, InstallGuard, SpanGuard, SpanRecorder, StageCounters};

#[cfg(not(feature = "enabled"))]
pub use noop::{span_enter, BindGuard, InstallGuard, SpanGuard, SpanRecorder, StageCounters};
#[cfg(not(feature = "enabled"))]
pub use noop::{Counter, Gauge, Histogram, Registry, Stopwatch};

#[cfg(test)]
mod tests {
    use super::*;

    /// The no-op mirrors are truly zero-sized — a probe struct made of
    /// them occupies no memory and its methods can compile to nothing.
    /// These are compile-time assertions: a non-zero size fails to build.
    const _: () = assert!(std::mem::size_of::<noop::Counter>() == 0);
    const _: () = assert!(std::mem::size_of::<noop::Gauge>() == 0);
    const _: () = assert!(std::mem::size_of::<noop::Histogram>() == 0);
    const _: () = assert!(std::mem::size_of::<noop::Registry>() == 0);
    const _: () = assert!(std::mem::size_of::<noop::Stopwatch>() == 0);
    const _: () = assert!(std::mem::size_of::<noop::SpanRecorder>() == 0);
    const _: () = assert!(std::mem::size_of::<noop::SpanGuard>() == 0);
    const _: () = assert!(std::mem::size_of::<noop::BindGuard>() == 0);
    const _: () = assert!(std::mem::size_of::<noop::InstallGuard>() == 0);
    const _: () = assert!(std::mem::size_of::<noop::StageCounters>() == 0);

    #[test]
    fn noop_registry_records_and_exports_nothing() {
        let r = noop::Registry::new();
        let c = r.counter("ppa_x_total", "x");
        let g = r.gauge("ppa_y", "y");
        let h = r.histogram("ppa_z", "z", &[1, 10, 100]);
        c.inc();
        c.add(41);
        g.set(7.0);
        g.add(1.0);
        h.observe(5);
        let _sw = h.start();
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert!(r.snapshot().entries.is_empty());
        assert_eq!(prometheus_text(&r.snapshot()), "");
    }

    #[test]
    fn detached_active_handles_record_nothing() {
        let c = active::Counter::noop();
        let g = active::Gauge::noop();
        let h = active::Histogram::noop();
        c.inc();
        g.set(3.5);
        h.observe(9);
        drop(h.start());
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
    }

    #[test]
    fn enabled_flag_matches_the_selected_implementation() {
        // Whichever mirror the feature selects, the alias API works.
        let r = Registry::new();
        let c = r.counter("ppa_events_total", "events");
        c.add(5);
        if ENABLED {
            assert_eq!(c.get(), 5);
            assert_eq!(r.snapshot().entries.len(), 1);
        } else {
            assert_eq!(c.get(), 0);
            assert!(r.snapshot().entries.is_empty());
        }
    }
}
