//! # ppa-lfk — the Lawrence Livermore loops
//!
//! The paper's workload substrate, in two forms:
//!
//! - **Numeric kernels** ([`kernels`]): Rust implementations of all 24
//!   Livermore Fortran Kernels (McMahon, UCRL-53745) with deterministic
//!   data and checksums. Kernels 13–17 are documented structural
//!   reconstructions where the original listing is not reproducible; the
//!   computational pattern (indirection, conditionals, serial recurrences)
//!   is preserved. The native executor runs these as real workloads.
//! - **Statement graphs** ([`graphs`]): the simulator workloads — the
//!   sequential forms of the Figure-1 kernels and the DOACROSS forms of
//!   loops 3, 4, and 17 with the synchronization structure of the paper's
//!   Figure 3, cost-calibrated to the paper's measured slowdowns.
//!
//! [`class`] records each kernel's execution classification and the
//! paper's reported numbers, which the benchmark harness prints beside the
//! reproduced ones.

#![warn(missing_docs)]

pub mod class;
pub mod data;
pub mod graphs;
mod kernels_a;
mod kernels_b;

pub use class::{doacross_kernels, fig1_kernels, kernel_meta, KernelClass, KernelMeta, KERNELS};
pub use graphs::{
    doacross_graph, doacross_graph_with, generic_graph, graph, sequential_graph, vector_twin,
    DoacrossParams,
};

/// The numeric kernels, `k01`–`k24`.
pub mod kernels {
    pub use crate::kernels_a::{
        k01, k02, k03, k03_with, k04, k05, k06, k07, k08, k09, k10, k11, k12,
    };
    pub use crate::kernels_b::{k13, k14, k15, k16, k17, k18, k19, k20, k21, k22, k23, k24};

    /// Runs a kernel by number (1–24) at loop length `n`.
    pub fn run(id: u8, n: usize) -> Option<f64> {
        let f: fn(usize) -> f64 = match id {
            1 => k01,
            2 => k02,
            3 => k03,
            4 => k04,
            5 => k05,
            6 => k06,
            7 => k07,
            8 => k08,
            9 => k09,
            10 => k10,
            11 => k11,
            12 => k12,
            13 => k13,
            14 => k14,
            15 => k15,
            16 => k16,
            17 => k17,
            18 => k18,
            19 => k19,
            20 => k20,
            21 => k21,
            22 => k22,
            23 => k23,
            24 => k24,
            _ => return None,
        };
        Some(f(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_covers_all_24() {
        for id in 1u8..=24 {
            let v = kernels::run(id, 64).unwrap_or_else(|| panic!("kernel {id} missing"));
            assert!(v.is_finite(), "kernel {id} returned {v}");
        }
        assert!(kernels::run(0, 64).is_none());
        assert!(kernels::run(25, 64).is_none());
    }

    #[test]
    fn every_experiment_kernel_has_a_graph() {
        for meta in fig1_kernels() {
            assert!(
                graph(meta.id).is_some(),
                "missing graph for kernel {}",
                meta.id
            );
        }
        for meta in doacross_kernels() {
            assert!(
                graph(meta.id).is_some(),
                "missing graph for kernel {}",
                meta.id
            );
        }
    }
}
