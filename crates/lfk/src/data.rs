//! Deterministic workload data for the Livermore kernels.
//!
//! McMahon's benchmark initializes its arrays from a fixed generator so
//! results are comparable across machines; we do the same with a small
//! 64-bit LCG. Values land in (0, 1) — small enough that recurrences and
//! products stay finite over the kernel loop lengths.

/// A 64-bit multiplicative LCG (Knuth's MMIX constants).
#[derive(Debug, Clone)]
pub struct LfkRng {
    state: u64,
}

impl LfkRng {
    /// Creates a generator from a seed (zero is mapped to a fixed odd
    /// constant).
    pub fn new(seed: u64) -> Self {
        LfkRng {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state
    }

    /// Next value uniform in (0, 1).
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> [0,1), then nudge off zero.
        let v = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        v.max(1e-12)
    }

    /// Next value uniform in (0, scale).
    pub fn next_scaled(&mut self, scale: f64) -> f64 {
        self.next_f64() * scale
    }
}

/// Fills a vector with `n` deterministic values in (0, scale).
pub fn fill(n: usize, seed: u64, scale: f64) -> Vec<f64> {
    let mut rng = LfkRng::new(seed);
    (0..n).map(|_| rng.next_scaled(scale)).collect()
}

/// Fills an `rows x cols` matrix (row-major) deterministically.
pub fn fill2(rows: usize, cols: usize, seed: u64, scale: f64) -> Vec<Vec<f64>> {
    let mut rng = LfkRng::new(seed);
    (0..rows)
        .map(|_| (0..cols).map(|_| rng.next_scaled(scale)).collect())
        .collect()
}

/// The benchmark's result digest: a magnitude-weighted sum that any
/// reordering or dropped element changes.
pub fn checksum(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut acc = 0.0f64;
    let mut k = 1.0f64;
    for v in values {
        acc += v / k;
        k += 1.0;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = LfkRng::new(7);
        let mut b = LfkRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn values_in_unit_interval() {
        let mut rng = LfkRng::new(3);
        for _ in 0..1_000 {
            let v = rng.next_f64();
            assert!(v > 0.0 && v < 1.0, "out of range: {v}");
        }
    }

    #[test]
    fn fill_shapes() {
        assert_eq!(fill(10, 1, 1.0).len(), 10);
        let m = fill2(3, 5, 1, 1.0);
        assert_eq!(m.len(), 3);
        assert!(m.iter().all(|r| r.len() == 5));
    }

    #[test]
    fn seeds_differ() {
        assert_ne!(fill(4, 1, 1.0), fill(4, 2, 1.0));
    }

    #[test]
    fn checksum_is_order_sensitive() {
        let a = checksum([1.0, 2.0, 3.0]);
        let b = checksum([3.0, 2.0, 1.0]);
        assert_ne!(a, b);
        assert!((a - (1.0 + 1.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut rng = LfkRng::new(0);
        assert!(rng.next_f64() > 0.0);
    }
}
