//! Kernel classification and experiment metadata.
//!
//! The Alliant FX/Fortran compiler classified each Livermore loop by how
//! it could execute; the paper's experiments split along that line:
//! loops without cross-iteration dependencies ran scalar/vector/DOALL and
//! were handled by time-based analysis (Figure 1), while loops 3, 4, and
//! 17 ran as DOACROSS with advance/await and needed event-based analysis
//! (Tables 1–3, Figures 4–5).

use serde::{Deserialize, Serialize};

/// How a kernel's main loop executes on the reference machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelClass {
    /// No profitable parallel form: runs sequentially.
    Serial,
    /// Vectorizable, no cross-iteration dependence.
    Vectorizable,
    /// Concurrent with independent iterations (DOALL).
    Parallel,
    /// Concurrent with cross-iteration dependencies: DOACROSS with
    /// advance/await synchronization.
    Doacross,
}

/// Static description of one Livermore kernel in this reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelMeta {
    /// Kernel number, 1–24.
    pub id: u8,
    /// Conventional name.
    pub name: &'static str,
    /// Execution classification on the reference machine.
    pub class: KernelClass,
    /// Standard loop length (McMahon's spans, approximately).
    pub loop_length: u64,
    /// The paper's Figure 1 measured/actual ratio for this kernel under
    /// full sequential instrumentation, where reported. The bar labels in
    /// the figure are partially garbled in the available scan; this
    /// mapping assigns the 16.89 bar to loop 19 (named in the text) and
    /// the remaining bars to the listed loops in order.
    pub fig1_measured_ratio: Option<f64>,
    /// Paper Table 1 measured/actual (time-based experiment), loops
    /// 3/4/17 only.
    pub table1_measured: Option<f64>,
    /// Paper Table 1 approximated/actual.
    pub table1_approx: Option<f64>,
    /// Paper Table 2 measured/actual (event-based experiment).
    pub table2_measured: Option<f64>,
    /// Paper Table 2 approximated/actual.
    pub table2_approx: Option<f64>,
}

/// The 24 kernels.
pub const KERNELS: [KernelMeta; 24] = [
    m(
        1,
        "hydro fragment",
        KernelClass::Vectorizable,
        1001,
        Some(10.76),
    ),
    m(2, "ICCG excerpt", KernelClass::Serial, 101, Some(11.14)),
    doacross(3, "inner product", 1001, 2.48, 0.37, 4.56, 0.96),
    doacross(4, "banded linear equations", 1001, 2.64, 0.57, 3.38, 1.06),
    m(
        5,
        "tri-diagonal elimination",
        KernelClass::Serial,
        1001,
        None,
    ),
    m(
        6,
        "general linear recurrence",
        KernelClass::Serial,
        64,
        Some(11.52),
    ),
    m(
        7,
        "equation of state",
        KernelClass::Vectorizable,
        995,
        Some(8.96),
    ),
    m(8, "ADI integration", KernelClass::Parallel, 100, Some(9.36)),
    m(
        9,
        "integrate predictors",
        KernelClass::Vectorizable,
        101,
        None,
    ),
    m(
        10,
        "difference predictors",
        KernelClass::Vectorizable,
        101,
        None,
    ),
    m(11, "first sum", KernelClass::Serial, 1001, None),
    m(
        12,
        "first difference",
        KernelClass::Vectorizable,
        1000,
        None,
    ),
    m(
        13,
        "2-D particle in cell",
        KernelClass::Serial,
        128,
        Some(7.63),
    ),
    m(14, "1-D particle in cell", KernelClass::Serial, 1001, None),
    m(15, "casual Fortran", KernelClass::Serial, 101, None),
    m(
        16,
        "Monte Carlo search",
        KernelClass::Serial,
        75,
        Some(4.98),
    ),
    doacross(
        17,
        "implicit conditional computation",
        101,
        9.97,
        8.31,
        14.08,
        0.97,
    ),
    m(18, "2-D explicit hydro", KernelClass::Parallel, 100, None),
    m(
        19,
        "general linear recurrence II",
        KernelClass::Serial,
        101,
        Some(16.89),
    ),
    m(
        20,
        "discrete ordinates transport",
        KernelClass::Serial,
        1000,
        Some(4.81),
    ),
    m(21, "matrix product", KernelClass::Parallel, 101, None),
    m(
        22,
        "Planckian distribution",
        KernelClass::Vectorizable,
        101,
        Some(3.90),
    ),
    m(23, "2-D implicit hydro", KernelClass::Serial, 100, None),
    m(24, "first minimum", KernelClass::Serial, 1001, None),
];

const fn m(
    id: u8,
    name: &'static str,
    class: KernelClass,
    loop_length: u64,
    fig1: Option<f64>,
) -> KernelMeta {
    KernelMeta {
        id,
        name,
        class,
        loop_length,
        fig1_measured_ratio: fig1,
        table1_measured: None,
        table1_approx: None,
        table2_measured: None,
        table2_approx: None,
    }
}

const fn doacross(
    id: u8,
    name: &'static str,
    loop_length: u64,
    t1m: f64,
    t1a: f64,
    t2m: f64,
    t2a: f64,
) -> KernelMeta {
    KernelMeta {
        id,
        name,
        class: KernelClass::Doacross,
        loop_length,
        fig1_measured_ratio: None,
        table1_measured: Some(t1m),
        table1_approx: Some(t1a),
        table2_measured: Some(t2m),
        table2_approx: Some(t2a),
    }
}

/// Looks up a kernel's metadata by number (1–24).
pub fn kernel_meta(id: u8) -> Option<&'static KernelMeta> {
    KERNELS.get(id.checked_sub(1)? as usize)
}

/// The kernels the paper's Figure 1 reports (sequential experiment).
pub fn fig1_kernels() -> impl Iterator<Item = &'static KernelMeta> {
    KERNELS.iter().filter(|k| k.fig1_measured_ratio.is_some())
}

/// The DOACROSS kernels of Tables 1–3 (loops 3, 4, 17).
pub fn doacross_kernels() -> impl Iterator<Item = &'static KernelMeta> {
    KERNELS.iter().filter(|k| k.class == KernelClass::Doacross)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_ordered() {
        for (i, k) in KERNELS.iter().enumerate() {
            assert_eq!(k.id as usize, i + 1);
        }
    }

    #[test]
    fn lookup_by_id() {
        assert_eq!(kernel_meta(3).unwrap().name, "inner product");
        assert_eq!(kernel_meta(17).unwrap().class, KernelClass::Doacross);
        assert!(kernel_meta(0).is_none());
        assert!(kernel_meta(25).is_none());
    }

    #[test]
    fn experiment_sets() {
        let fig1: Vec<u8> = fig1_kernels().map(|k| k.id).collect();
        assert_eq!(fig1, vec![1, 2, 6, 7, 8, 13, 16, 19, 20, 22]);
        let da: Vec<u8> = doacross_kernels().map(|k| k.id).collect();
        assert_eq!(da, vec![3, 4, 17]);
    }

    #[test]
    fn doacross_kernels_carry_all_targets() {
        for k in doacross_kernels() {
            assert!(k.table1_measured.is_some());
            assert!(k.table1_approx.is_some());
            assert!(k.table2_measured.is_some());
            assert!(k.table2_approx.is_some());
        }
    }
}
