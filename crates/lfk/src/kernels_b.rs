//! Livermore kernels 13–24, numeric form.
//!
//! Kernels 13–17 involve indirection, conditionals, and search loops whose
//! published Fortran is long; where the exact listing is not reproducible
//! here, the implementation is a documented *structural reconstruction*
//! preserving the computational pattern the benchmark exercises
//! (gather/scatter for the PIC kernels, branchy state machines for 16/17).
//! The reproduction's experiments depend on the loop *structures* (Fig. 3
//! of the paper), which `crate::graphs` encodes separately; these numeric
//! forms feed the native executor and checksum tests.

use crate::data::{checksum, fill, fill2, LfkRng};

/// Kernel 13 — 2-D particle-in-cell (structural reconstruction:
/// gather from a 2-D grid, charge deposit with wraparound).
pub fn k13(n: usize) -> f64 {
    let grid = 64usize;
    let b = fill2(grid, grid, 1301, 1.0);
    let c = fill2(grid, grid, 1302, 1.0);
    let mut y = fill2(grid, grid, 1303, 0.0);
    let mut p = fill2(n, 4, 1304, grid as f64 - 2.0);
    for part in p.iter_mut() {
        let i1 = (part[0] as usize) % grid;
        let j1 = (part[1] as usize) % grid;
        part[2] += b[j1][i1];
        part[3] += c[j1][i1];
        part[0] += part[2];
        part[1] += part[3];
        let i2 = (part[0].abs() as usize) % grid;
        let j2 = (part[1].abs() as usize) % grid;
        part[0] += y[j2][i2 % grid];
        y[j2][i2] += 0.2;
    }
    checksum(p.iter().flat_map(|r| r.iter().copied()))
}

/// Kernel 14 — 1-D particle-in-cell (structural reconstruction).
pub fn k14(n: usize) -> f64 {
    let cells = n.max(8);
    let flx = 0.001;
    let grd = fill(cells, 1401, cells as f64 - 2.0);
    let mut vx = fill(n, 1402, 1.0);
    let mut xx = fill(n, 1403, cells as f64 - 2.0);
    let ex = fill(cells, 1404, 1.0);
    let dex = fill(cells, 1405, 0.5);
    let mut rx = vec![0.0; cells + 1];
    for k in 0..n {
        let ix = (grd[k % cells] as usize) % cells;
        let xi = ix as f64;
        vx[k] += ex[ix] + (xx[k] - xi) * dex[ix];
        xx[k] += vx[k] + flx;
        // Wrap positions into the grid.
        while xx[k] < 0.0 {
            xx[k] += cells as f64;
        }
        while xx[k] >= cells as f64 {
            xx[k] -= cells as f64;
        }
        let ir = xx[k] as usize % cells;
        rx[ir] += 1.0 - (xx[k] - ir as f64);
        rx[ir + 1] += xx[k] - ir as f64;
    }
    checksum(vx) + checksum(rx)
}

/// Kernel 15 — casual Fortran, development version (structural
/// reconstruction of the doubly nested conditional grid sweep).
pub fn k15(n: usize) -> f64 {
    let ng = 7usize.min(n.max(2));
    let nz = n.max(4);
    let vy = fill2(ng, nz, 1501, 1.0);
    let vh = fill2(ng + 1, nz + 1, 1502, 1.0);
    let vf = fill2(ng, nz, 1503, 1.0);
    let vg = fill2(ng, nz, 1504, 1.0);
    let mut vs = vec![vec![0.0f64; nz]; ng];
    for j in 1..ng {
        for k in 1..nz - 1 {
            // Conditional selection between neighbours, as in the original
            // "development version" kernel.
            let t = if vh[j][k + 1] > vh[j][k] {
                vh[j][k + 1]
            } else {
                vh[j][k]
            };
            let s = if vf[j][k] < vf[j - 1][k] {
                vg[j - 1][k]
            } else {
                vg[j][k]
            };
            let r = if t > vy[j][k] { t - s } else { vy[j][k] + s };
            vs[j][k] = (r * r + vy[j - 1][k]).sqrt();
        }
    }
    checksum(vs.iter().flat_map(|r| r.iter().copied()))
}

/// Kernel 16 — Monte Carlo search loop (structural reconstruction of the
/// branchy zone search: a data-driven walk with three-way branching).
pub fn k16(n: usize) -> f64 {
    let zones = n.max(16);
    let zone = {
        let mut rng = LfkRng::new(1601);
        (0..zones)
            .map(|_| (rng.next_u64() % 3) as i64 - 1) // in {-1, 0, 1}
            .collect::<Vec<i64>>()
    };
    let plan = fill(zones, 1602, 1.0);
    let d = fill(zones, 1603, 1.0);
    let mut k = 0usize;
    let mut m = zones / 2;
    let mut steps = 0u64;
    let mut acc = 0.0;
    let budget = 4 * zones as u64;
    while steps < budget {
        steps += 1;
        match zone[m % zones] {
            z if z < 0 => {
                acc += d[m % zones];
                m = (m + 7) % zones;
            }
            0 => {
                acc += plan[m % zones];
                k += 1;
                m = (m + k) % zones;
            }
            _ => {
                acc -= 0.5 * plan[m % zones];
                m = (m * 3 + 1) % zones;
            }
        }
        if acc > zones as f64 {
            break;
        }
    }
    acc + steps as f64
}

/// Kernel 17 — implicit, conditional computation (structural
/// reconstruction: a backward sweep with a data-dependent two-way branch
/// feeding a serial recurrence — the large critical section of the
/// paper's loop 17).
pub fn k17(n: usize) -> f64 {
    let scale = 5.0 / 3.0;
    let mut xnm = 1.0 / 3.0;
    let mut e6 = 1.03 / 3.07;
    let vlr = fill(n, 1701, 1.0);
    let vlin = fill(n, 1702, 1.0);
    let z = fill(n, 1703, 1.0);
    let mut vxne = vec![0.0; n];
    let mut vxnd = vec![0.0; n];
    for i in (0..n).rev() {
        let e3 = xnm * vlr[i] + e6;
        let e2 = vlin[i] * e3;
        let vx = if z[i] > 0.5 {
            e3 - e2 / scale
        } else {
            e2 + z[i] * e3
        };
        vxne[i] = vx.abs();
        vxnd[i] = e3 + e2;
        // The serial recurrence: both state variables depend on this
        // iteration's outputs, which is what forces DOACROSS execution.
        xnm = 0.9 * vx.abs().min(1.0) + 0.1 * xnm;
        e6 = 0.5 * (e6 + e3.min(1.0));
    }
    checksum(vxne) + checksum(vxnd)
}

/// Kernel 18 — 2-D explicit hydrodynamics fragment.
pub fn k18(n: usize) -> f64 {
    let kn = 6usize;
    let jn = n.max(4);
    let t = 0.0037;
    let s = 0.0041;
    let mut za = fill2(kn + 1, jn + 1, 1801, 1.0);
    let mut zb = fill2(kn + 1, jn + 1, 1802, 1.0);
    let zm = fill2(kn + 1, jn + 1, 1803, 1.0);
    let mut zp = fill2(kn + 1, jn + 1, 1804, 1.0);
    let mut zq = fill2(kn + 1, jn + 1, 1805, 1.0);
    let mut zr = fill2(kn + 1, jn + 1, 1806, 1.0);
    let mut zu = fill2(kn + 1, jn + 1, 1807, 1.0);
    let mut zv = fill2(kn + 1, jn + 1, 1808, 1.0);
    let zz = fill2(kn + 1, jn + 1, 1809, 1.0);
    for k in 1..kn {
        for j in 1..jn {
            za[k][j] = (zp[k + 1][j - 1] + zq[k + 1][j - 1] - zp[k][j - 1] - zq[k][j - 1])
                * (zr[k][j] + zr[k][j - 1])
                / (zm[k][j - 1] + zm[k + 1][j - 1]);
            zb[k][j] = (zp[k][j - 1] + zq[k][j - 1] - zp[k][j] - zq[k][j])
                * (zr[k][j] + zr[k - 1][j])
                / (zm[k][j] + zm[k][j - 1]);
        }
    }
    for k in 1..kn {
        for j in 1..jn {
            zu[k][j] += s
                * (za[k][j] * (zz[k][j] - zz[k][j + 1].min(zz[k][j]))
                    - za[k][j - 1] * (zz[k][j] - zz[k][j - 1]))
                - zb[k][j] * (zz[k][j] - zz[k - 1][j]);
            zv[k][j] += s
                * (za[k][j] * (zr[k][j] - zr[k][j.min(jn - 1)])
                    - za[k][j - 1] * (zr[k][j] - zr[k][j - 1]))
                - zb[k][j] * (zr[k][j] - zr[k - 1][j]);
        }
    }
    for k in 1..kn {
        for j in 1..jn {
            zr[k][j] += t * zu[k][j];
            zp[k][j] = za[k][j] * 0.5 + zp[k][j] * 0.5;
            zq[k][j] = zb[k][j] * 0.5 + zq[k][j] * 0.5;
        }
    }
    let _ = (&mut zq, &mut zv);
    checksum(zr.iter().flat_map(|r| r.iter().copied()))
        + checksum(zu.iter().flat_map(|r| r.iter().copied()))
}

/// Kernel 19 — general linear recurrence equations (forward and backward
/// sweeps with a carried product).
pub fn k19(n: usize) -> f64 {
    let sa = fill(n, 1901, 0.5);
    let sb = fill(n, 1902, 0.5);
    let mut b5 = vec![0.0f64; n];
    let mut stb5 = 0.1;
    for k in 0..n {
        b5[k] = sa[k] + stb5 * sb[k];
        stb5 = b5[k] - stb5;
    }
    for k in (0..n).rev() {
        b5[k] = sa[k] + stb5 * sb[k];
        stb5 = b5[k] - stb5;
    }
    checksum(b5)
}

/// Kernel 20 — discrete ordinates transport, conditional recurrence.
pub fn k20(n: usize) -> f64 {
    let g = fill(n, 2001, 1.0);
    let u = fill(n, 2002, 1.0);
    let v = fill(n, 2003, 0.5);
    let w = fill(n, 2004, 0.5);
    let y = fill(n, 2005, 0.5);
    let z = fill(n, 2006, 0.5);
    let dk = 0.01;
    let mut xx = vec![0.0; n + 1];
    xx[0] = 0.1;
    let mut vx = vec![0.0; n];
    for k in 0..n {
        let di = y[k] - g[k] / (xx[k] + dk);
        let dn = if di > 0.0 {
            (0.2_f64).min(z[k] / di).max(v[k])
        } else {
            0.2
        };
        vx[k] = u[k] + dn * (w[k] + dn * y[k]);
        xx[k + 1] = (vx[k] - xx[k]) * dn + xx[k];
    }
    checksum(xx)
}

/// Kernel 21 — matrix * matrix product: `px += vy * cx`.
pub fn k21(n: usize) -> f64 {
    let rows = 25usize;
    let inner = 25usize;
    let cols = n.max(4);
    let vy = fill2(rows, inner, 2101, 0.2);
    let cx = fill2(inner, cols, 2102, 0.2);
    let mut px = vec![vec![0.0f64; cols]; rows];
    for i in 0..inner {
        for j in 0..rows {
            for k in 0..cols {
                px[j][k] += vy[j][i] * cx[i][k];
            }
        }
    }
    checksum(px.iter().flat_map(|r| r.iter().copied()))
}

/// Kernel 22 — Planckian distribution: `w = x / (e^y - 1)` with the
/// guarded exponent.
pub fn k22(n: usize) -> f64 {
    let expmax = 20.0;
    let x = fill(n, 2201, 1.0);
    let mut y = fill(n, 2202, 19.0);
    let u = fill(n, 2203, 1.0);
    let mut w = vec![0.0; n];
    for k in 0..n {
        y[k] = y[k].min(expmax) * u[k].max(0.5);
        w[k] = x[k] / (y[k].exp() - 1.0).max(1e-9);
    }
    checksum(w)
}

/// Kernel 23 — 2-D implicit hydrodynamics fragment (red-black style
/// relaxation update).
pub fn k23(n: usize) -> f64 {
    let kn = 6usize;
    let jn = n.max(4);
    let za = fill2(kn + 1, jn + 1, 2301, 1.0);
    let zb = fill2(kn + 1, jn + 1, 2302, 1.0);
    let zu = fill2(kn + 1, jn + 1, 2303, 1.0);
    let zv = fill2(kn + 1, jn + 1, 2304, 1.0);
    let mut zr = fill2(kn + 1, jn + 1, 2305, 1.0);
    let fw = 0.175;
    for j in 1..kn {
        for k in 1..jn {
            let qa = za[j][k + 1.min(jn - k)] * zr[j][k.saturating_sub(1)]
                + za[j][k.saturating_sub(1)] * zb[j][k]
                + zu[j][k] * zr[j.saturating_sub(1)][k]
                + zv[j][k] * zr[(j + 1).min(kn)][k];
            zr[j][k] += fw * (qa - zr[j][k]);
        }
    }
    checksum(zr.iter().flat_map(|r| r.iter().copied()))
}

/// Kernel 24 — find location of first minimum in array.
pub fn k24(n: usize) -> f64 {
    let x = fill(n, 2401, 1.0);
    let mut m = 0usize;
    for k in 1..n {
        if x[k] < x[m] {
            m = k;
        }
    }
    m as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::fill;

    #[test]
    fn k17_matches_inline_recurrence() {
        let n = 64;
        let vlr = fill(n, 1701, 1.0);
        let vlin = fill(n, 1702, 1.0);
        let z = fill(n, 1703, 1.0);
        let scale = 5.0 / 3.0;
        let mut xnm = 1.0 / 3.0;
        let mut e6 = 1.03 / 3.07;
        let mut vxne = vec![0.0; n];
        let mut vxnd = vec![0.0; n];
        for i in (0..n).rev() {
            let e3 = xnm * vlr[i] + e6;
            let e2 = vlin[i] * e3;
            let vx = if z[i] > 0.5 {
                e3 - e2 / scale
            } else {
                e2 + z[i] * e3
            };
            vxne[i] = vx.abs();
            vxnd[i] = e3 + e2;
            xnm = 0.9 * vx.abs().min(1.0) + 0.1 * xnm;
            e6 = 0.5 * (e6 + e3.min(1.0));
        }
        let expect = crate::data::checksum(vxne) + crate::data::checksum(vxnd);
        assert_eq!(k17(n), expect);
    }

    #[test]
    fn k24_finds_the_minimum() {
        let n = 256;
        let x = fill(n, 2401, 1.0);
        let m = k24(n) as usize;
        assert!(x.iter().all(|&v| v >= x[m]));
    }

    #[test]
    fn k21_small_case_matches_naive() {
        // 25x25 times 25x4, checked against a directly computed cell.
        let n = 4;
        let vy = crate::data::fill2(25, 25, 2101, 0.2);
        let cx = crate::data::fill2(25, n, 2102, 0.2);
        let mut cell = 0.0;
        for i in 0..25 {
            cell += vy[3][i] * cx[i][2];
        }
        // Recompute px fully and compare the probe cell.
        let mut px = vec![vec![0.0f64; n]; 25];
        for i in 0..25 {
            for j in 0..25 {
                for k in 0..n {
                    px[j][k] += vy[j][i] * cx[i][k];
                }
            }
        }
        assert!((px[3][2] - cell).abs() < 1e-12);
        assert!(k21(n).is_finite());
    }

    #[test]
    fn k22_outputs_positive() {
        let n = 101;
        let x = fill(n, 2201, 1.0);
        let _ = x;
        assert!(k22(n).is_finite());
    }

    #[test]
    fn k19_double_sweep_differs_from_single() {
        // The backward sweep must contribute: recompute with only the
        // forward pass and check the checksum differs.
        let n = 64;
        let sa = fill(n, 1901, 0.5);
        let sb = fill(n, 1902, 0.5);
        let mut b5 = vec![0.0f64; n];
        let mut stb5 = 0.1;
        for k in 0..n {
            b5[k] = sa[k] + stb5 * sb[k];
            stb5 = b5[k] - stb5;
        }
        let single = crate::data::checksum(b5);
        assert_ne!(k19(n).to_bits(), single.to_bits());
    }

    #[test]
    fn k20_state_is_carried() {
        // xx is a recurrence: truncating the loop changes later state, so
        // prefix checksums are not prefixes of each other trivially —
        // check the recurrence is actually coupled by perturbing length.
        assert_ne!(k20(50), k20(51));
    }

    #[test]
    fn k23_relaxation_stays_finite_under_iteration() {
        for n in [4usize, 16, 64] {
            assert!(k23(n).is_finite());
        }
    }

    #[test]
    fn all_kernels_finite_and_deterministic() {
        for (i, f) in [k13, k14, k15, k16, k17, k18, k19, k20, k21, k22, k23, k24]
            .iter()
            .enumerate()
        {
            let a = f(64);
            let b = f(64);
            assert!(a.is_finite(), "kernel {} not finite", i + 13);
            assert_eq!(a, b, "kernel {} not deterministic", i + 13);
        }
    }

    #[test]
    fn kernels_scale_with_n() {
        for f in [k13, k14, k17, k19, k20, k22] {
            assert_ne!(f(32), f(64));
        }
    }
}
