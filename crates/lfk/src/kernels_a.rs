//! Livermore kernels 1–12, numeric form.
//!
//! Each function sets up its data deterministically, runs the kernel once,
//! and returns a checksum of its results. Kernels follow McMahon's
//! published loop structures (UCRL-53745); array sizes take the standard
//! loop length as a parameter so tests can shrink them.
//!
//! These numeric forms serve two purposes: the native executor runs them
//! as real workloads, and the checksums let parallelized (DOACROSS)
//! executions be verified against the sequential reference.

use crate::data::{checksum, fill, fill2};

/// Kernel 1 — hydrodynamics fragment:
/// `x[k] = q + y[k] * (r*z[k+10] + t*z[k+11])`.
pub fn k01(n: usize) -> f64 {
    let (q, r, t) = (0.5, 0.2, 0.1);
    let y = fill(n, 101, 1.0);
    let z = fill(n + 11, 102, 1.0);
    let mut x = vec![0.0; n];
    for k in 0..n {
        x[k] = q + y[k] * (r * z[k + 10] + t * z[k + 11]);
    }
    checksum(x)
}

/// Kernel 2 — ICCG excerpt (incomplete Cholesky conjugate gradient): the
/// cascade-halving recurrence.
pub fn k02(n: usize) -> f64 {
    let v = fill(2 * n + 2, 201, 0.5);
    let mut x = fill(2 * n + 2, 202, 1.0);
    let mut ii = n;
    let mut ipntp = 0usize;
    while ii > 0 {
        let ipnt = ipntp;
        ipntp += ii;
        ii /= 2;
        let mut i = ipntp;
        let mut k = ipnt + 1;
        while k < ipntp {
            x[i] = x[k] - v[k] * x[k - 1] - v[k + 1] * x[k + 1];
            i += 1;
            k += 2;
        }
    }
    checksum(x)
}

/// Kernel 3 — inner product: `q = Σ z[k] * x[k]`.
///
/// On the Alliant this is a DOACROSS loop: the accumulation into the
/// shared `q` is the critical section the paper's Table 1/2 experiments
/// revolve around.
pub fn k03(n: usize) -> f64 {
    let z = fill(n, 301, 1.0);
    let x = fill(n, 302, 1.0);
    let mut q = 0.0;
    for k in 0..n {
        q += z[k] * x[k];
    }
    q
}

/// Kernel 3 with externally supplied arrays (used by the native DOACROSS
/// executor so the parallel result can be checked against this reference).
pub fn k03_with(z: &[f64], x: &[f64]) -> f64 {
    z.iter().zip(x).map(|(a, b)| a * b).sum()
}

/// Kernel 4 — banded linear equations.
pub fn k04(n: usize) -> f64 {
    let mut x = fill(n.max(8), 401, 1.0);
    let y = fill(n.max(8), 402, 0.25);
    let m = ((n.max(8) - 7) / 2).max(1);
    let mut k = 6;
    while k < x.len() {
        let mut lw = k - 6;
        let mut temp = x[k - 1];
        let mut j = 4;
        while j < y.len() && lw < x.len() {
            temp -= x[lw] * y[j];
            lw += 1;
            j += 5;
        }
        x[k - 1] = y[4] * temp;
        k += m;
    }
    checksum(x)
}

/// Kernel 5 — tri-diagonal elimination, below diagonal:
/// `x[i] = z[i] * (y[i] - x[i-1])` — a first-order linear recurrence.
pub fn k05(n: usize) -> f64 {
    let z = fill(n, 501, 0.5);
    let y = fill(n, 502, 1.0);
    let mut x = vec![0.0; n];
    for i in 1..n {
        x[i] = z[i] * (y[i] - x[i - 1]);
    }
    checksum(x)
}

/// Kernel 6 — general linear recurrence equations:
/// `w[i] += b[k][i] * w[i-k-1]` over the lower triangle.
pub fn k06(n: usize) -> f64 {
    let b = fill2(n, n, 601, 0.1);
    let mut w = vec![0.01; n];
    for i in 1..n {
        let mut acc = w[i];
        for k in 0..i {
            acc += b[k][i] * w[(i - k) - 1];
        }
        w[i] = acc;
    }
    checksum(w)
}

/// Kernel 7 — equation of state fragment (long independent expression).
pub fn k07(n: usize) -> f64 {
    let (q, r, t) = (0.5, 0.2, 0.1);
    let u = fill(n + 6, 701, 1.0);
    let y = fill(n, 702, 1.0);
    let z = fill(n, 703, 1.0);
    let mut x = vec![0.0; n];
    for k in 0..n {
        x[k] = u[k]
            + r * (z[k] + r * y[k])
            + t * (u[k + 3]
                + r * (u[k + 2] + r * u[k + 1])
                + t * (u[k + 6] + q * (u[k + 5] + q * u[k + 4])));
    }
    checksum(x)
}

/// Kernel 8 — ADI (alternating direction implicit) integration fragment.
pub fn k08(n: usize) -> f64 {
    let nl1 = 0usize;
    let nl2 = 1usize;
    let cols = n.max(2);
    let mut u1 = vec![vec![vec![0.0f64; 5]; cols]; 2];
    let mut u2 = u1.clone();
    let mut u3 = u1.clone();
    // Deterministic init.
    {
        let mut rng = crate::data::LfkRng::new(801);
        for grid in [&mut u1, &mut u2, &mut u3] {
            for plane in grid.iter_mut() {
                for row in plane.iter_mut() {
                    for v in row.iter_mut() {
                        *v = rng.next_f64();
                    }
                }
            }
        }
    }
    let (a11, a12, a13, a21, a22, a23, a31, a32, a33) =
        (0.50, 0.33, 0.25, 0.20, 0.17, 0.14, 0.12, 0.11, 0.10);
    let sig = 0.5;
    let du1 = |ky: usize, u1: &Vec<Vec<Vec<f64>>>| u1[nl1][ky + 1][0] - u1[nl1][ky - 1][0];
    let du2 = |ky: usize, u2: &Vec<Vec<Vec<f64>>>| u2[nl1][ky + 1][0] - u2[nl1][ky - 1][0];
    let du3 = |ky: usize, u3: &Vec<Vec<Vec<f64>>>| u3[nl1][ky + 1][0] - u3[nl1][ky - 1][0];
    for kx in 1..4.min(cols.saturating_sub(1)).max(1) {
        for ky in 1..cols - 1 {
            let d1 = du1(ky, &u1);
            let d2 = du2(ky, &u2);
            let d3 = du3(ky, &u3);
            u1[nl2][ky][kx.min(4)] =
                u1[nl1][ky][kx.min(4)] + a11 * d1 + a12 * d2 + a13 * d3 + sig * u1[nl1][ky][0];
            u2[nl2][ky][kx.min(4)] =
                u2[nl1][ky][kx.min(4)] + a21 * d1 + a22 * d2 + a23 * d3 + sig * u2[nl1][ky][0];
            u3[nl2][ky][kx.min(4)] =
                u3[nl1][ky][kx.min(4)] + a31 * d1 + a32 * d2 + a33 * d3 + sig * u3[nl1][ky][0];
        }
    }
    checksum(
        u1[nl2]
            .iter()
            .flat_map(|r| r.iter().copied())
            .collect::<Vec<_>>(),
    ) + checksum(
        u2[nl2]
            .iter()
            .flat_map(|r| r.iter().copied())
            .collect::<Vec<_>>(),
    ) + checksum(
        u3[nl2]
            .iter()
            .flat_map(|r| r.iter().copied())
            .collect::<Vec<_>>(),
    )
}

/// Kernel 9 — numerical integration of predictors.
pub fn k09(n: usize) -> f64 {
    let coeffs = [
        0.0625, 0.125, 0.25, 0.5, 1.0, 0.5, 0.25, 0.125, 0.0625, 0.03125, 0.015625, 0.0078125,
    ];
    let mut px = fill2(n, 13, 901, 1.0);
    for row in px.iter_mut() {
        let mut acc = row[12];
        for (c, coeff) in coeffs.iter().enumerate() {
            acc += coeff * row[c];
        }
        row[0] = acc;
    }
    checksum(px.iter().map(|r| r[0]))
}

/// Kernel 10 — numerical differentiation: difference predictors.
pub fn k10(n: usize) -> f64 {
    let cx = fill(n, 1001, 1.0);
    let mut px = fill2(n, 13, 1002, 1.0);
    for (i, row) in px.iter_mut().enumerate() {
        let ar = cx[i];
        let br = ar - row[4];
        row[4] = ar;
        let cr = br - row[5];
        row[5] = br;
        let ar2 = cr - row[6];
        row[6] = cr;
        let br2 = ar2 - row[7];
        row[7] = ar2;
        let cr2 = br2 - row[8];
        row[8] = br2;
        let ar3 = cr2 - row[9];
        row[9] = cr2;
        let br3 = ar3 - row[10];
        row[10] = ar3;
        let cr3 = br3 - row[11];
        row[11] = br3;
        row[12] = cr3 - row[12];
    }
    checksum(px.iter().flat_map(|r| r[4..13].iter().copied()))
}

/// Kernel 11 — first sum (prefix sum): `x[k] = x[k-1] + y[k]`.
pub fn k11(n: usize) -> f64 {
    let y = fill(n, 1101, 1.0);
    let mut x = vec![0.0; n];
    x[0] = y[0];
    for k in 1..n {
        x[k] = x[k - 1] + y[k];
    }
    checksum(x)
}

/// Kernel 12 — first difference: `x[k] = y[k+1] - y[k]`.
pub fn k12(n: usize) -> f64 {
    let y = fill(n + 1, 1201, 1.0);
    let mut x = vec![0.0; n];
    for k in 0..n {
        x[k] = y[k + 1] - y[k];
    }
    checksum(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k01_matches_direct_formula() {
        let n = 16;
        let y = fill(n, 101, 1.0);
        let z = fill(n + 11, 102, 1.0);
        let expected: Vec<f64> = (0..n)
            .map(|k| 0.5 + y[k] * (0.2 * z[k + 10] + 0.1 * z[k + 11]))
            .collect();
        assert_eq!(k01(n), checksum(expected));
    }

    #[test]
    fn k03_is_the_inner_product() {
        let n = 64;
        let z = fill(n, 301, 1.0);
        let x = fill(n, 302, 1.0);
        let direct: f64 = z.iter().zip(&x).map(|(a, b)| a * b).sum();
        assert!((k03(n) - direct).abs() < 1e-12);
        assert!((k03_with(&z, &x) - direct).abs() < 1e-12);
    }

    #[test]
    fn k05_recurrence_property() {
        // Every element is bounded by |z| * (|y| + |x_prev|) with values in
        // (0,1): |x[i]| < 1 for all i.
        let n = 128;
        let c = k05(n);
        assert!(c.is_finite());
        let z = fill(n, 501, 0.5);
        let y = fill(n, 502, 1.0);
        let mut x = vec![0.0; n];
        for i in 1..n {
            x[i] = z[i] * (y[i] - x[i - 1]);
            assert!(x[i].abs() < 1.0);
        }
        assert_eq!(c, checksum(x));
    }

    #[test]
    fn k11_prefix_sum_total() {
        let n = 100;
        let y = fill(n, 1101, 1.0);
        // The last prefix equals the total sum.
        let mut x = vec![0.0; n];
        x[0] = y[0];
        for k in 1..n {
            x[k] = x[k - 1] + y[k];
        }
        let total: f64 = y.iter().sum();
        assert!((x[n - 1] - total).abs() < 1e-9);
        assert_eq!(k11(n), checksum(x));
    }

    #[test]
    fn k12_telescopes() {
        let n = 50;
        let y = fill(n + 1, 1201, 1.0);
        // Sum of first differences telescopes to y[n] - y[0].
        let x: Vec<f64> = (0..n).map(|k| y[k + 1] - y[k]).collect();
        let sum: f64 = x.iter().sum();
        assert!((sum - (y[n] - y[0])).abs() < 1e-9);
        assert_eq!(k12(n), checksum(x));
    }

    #[test]
    fn k02_halving_cascade_terminates_for_odd_and_even_sizes() {
        for n in [1usize, 2, 3, 7, 8, 100, 101] {
            assert!(k02(n).is_finite(), "n={n}");
        }
    }

    #[test]
    fn k06_lower_triangle_grows_monotonically_from_seed() {
        // With positive b and the 0.01 seed, each w[i] only accumulates
        // positive terms: the sequence is bounded below by the seed.
        let n = 32;
        let b = crate::data::fill2(n, n, 601, 0.1);
        let mut w = vec![0.01; n];
        for i in 1..n {
            let mut acc = w[i];
            for k in 0..i {
                acc += b[k][i] * w[(i - k) - 1];
            }
            w[i] = acc;
            assert!(w[i] >= 0.01, "w[{i}] = {}", w[i]);
        }
        assert_eq!(k06(n), checksum(w));
    }

    #[test]
    fn k09_uses_all_thirteen_terms() {
        // Changing any of the 13 input columns changes the result; check a
        // couple of spot columns through recomputation.
        let n = 16;
        let base = k09(n);
        let coeffs = [
            0.0625, 0.125, 0.25, 0.5, 1.0, 0.5, 0.25, 0.125, 0.0625, 0.03125, 0.015625, 0.0078125,
        ];
        let mut px = crate::data::fill2(n, 13, 901, 1.0);
        for row in px.iter_mut() {
            let mut acc = row[12];
            for (c, coeff) in coeffs.iter().enumerate() {
                acc += coeff * row[c];
            }
            row[0] = acc;
        }
        assert_eq!(base, checksum(px.iter().map(|r| r[0])));
    }

    #[test]
    fn all_kernels_finite_and_deterministic() {
        for (i, f) in [k01, k02, k03, k04, k05, k06, k07, k08, k09, k10, k11, k12]
            .iter()
            .enumerate()
        {
            let a = f(64);
            let b = f(64);
            assert!(a.is_finite(), "kernel {} not finite", i + 1);
            assert_eq!(a, b, "kernel {} not deterministic", i + 1);
        }
    }

    #[test]
    fn kernels_scale_with_n() {
        // Different n gives different checksums (no accidental constants).
        for f in [k01, k03, k05, k07, k11, k12] {
            assert_ne!(f(32), f(64));
        }
    }
}
