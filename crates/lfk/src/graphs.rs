//! Statement-graph forms of the Livermore loops.
//!
//! These are the workloads the experiments simulate. Loop *structures*
//! (statement counts, critical-section placement, advance/await positions)
//! follow the kernels and the paper's Figure 3; statement *costs* are
//! calibrated so that, under [`ppa_trace::OverheadSpec::alliant_default`]
//! and full instrumentation, the measured-to-actual slowdowns land at the
//! paper's reported values (the paper does not report per-statement costs,
//! so the intrusion level is the experimental condition we calibrate; the
//! *analysis accuracy* is then the reproduced result).
//!
//! Costs are in nanoseconds: the experiment configuration uses a 1 GHz
//! simulator clock so one cost unit is one nanosecond.
//!
//! For loops 3 and 4 the critical section — the synchronized update of the
//! shared variable — is *unobservable* to source-level statement
//! instrumentation (the compiler fuses it with the advance/await at the
//! assembly level, paper §5.1 fn. 5), so statement tracing lengthens only
//! the independent phase and blocking *decreases* under instrumentation.
//! Loop 17's large critical section consists of ordinary source statements,
//! so tracing lengthens the serialized chain and blocking *increases* —
//! the two failure modes of time-based analysis that Table 1 reports.

use crate::class::{kernel_meta, KernelClass};
use ppa_program::{Program, ProgramBuilder, ProgramError};

/// Calibrated per-statement cost (ns) for a Figure-1 sequential kernel:
/// with statement overhead `oh`, the measured/actual ratio of a fully
/// instrumented sequential loop is `1 + oh / cost`, so
/// `cost = oh / (target - 1)`.
fn fig1_cost(target_ratio: f64) -> u64 {
    const STATEMENT_OVERHEAD_NS: f64 = 4_500.0;
    (STATEMENT_OVERHEAD_NS / (target_ratio - 1.0)).round() as u64
}

/// Builds the sequential statement-graph form of a Figure-1 kernel.
///
/// Statement counts per iteration reflect each kernel's body; trip counts
/// are the standard loop lengths (scaled for the two kernels whose inner
/// loops dominate).
pub fn sequential_graph(id: u8) -> Option<Program> {
    let (stmts, trip, cost) = fig1_shape(id)?;
    let name = format!("lfk{id:02}");
    let b = ProgramBuilder::new(name).sequential_loop(trip, |mut body| {
        for s in 0..stmts {
            body = body.compute(format!("s{s}"), cost);
        }
        body
    });
    b.build().ok()
}

/// Body shape of a Figure-1 kernel: (statements per iteration, trip
/// count, calibrated cost per statement).
fn fig1_shape(id: u8) -> Option<(usize, u64, u64)> {
    let meta = kernel_meta(id)?;
    let target = meta.fig1_measured_ratio?;
    let cost = fig1_cost(target);
    let (stmts, trip): (usize, u64) = match id {
        1 => (1, 1001),  // x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])
        2 => (1, 300),   // ICCG cascade: ~2n inner executions
        6 => (1, 2016),  // lower-triangle inner loop, n = 64
        7 => (1, 995),   // one long equation-of-state expression
        8 => (3, 200),   // u1/u2/u3 updates per (kx, ky)
        13 => (7, 128),  // gather, push, deposit steps per particle
        16 => (4, 300),  // branchy zone-search step
        19 => (2, 202),  // b5/stb5 updates, two sweeps of 101
        20 => (4, 1000), // di/dn/vx/xx updates
        22 => (2, 101),  // guarded exponent + quotient
        _ => return None,
    };
    Some((stmts, trip, cost))
}

/// The vector-mode twin of a Figure-1 kernel (same body, 4x vector
/// speedup), for scalar-vs-vector mode studies. Only meaningful for
/// kernels the Alliant could vectorize.
pub fn vector_twin(id: u8) -> Option<Program> {
    if kernel_meta(id)?.class != KernelClass::Vectorizable {
        return None;
    }
    let (stmts, trip, cost) = fig1_shape(id)?;
    let name = format!("lfk{id:02}v");
    let b = ProgramBuilder::new(name).vector_loop(trip, 4_000, |mut body| {
        for s in 0..stmts {
            body = body.compute(format!("s{s}"), cost);
        }
        body
    });
    b.build().ok()
}

/// Cost parameters for one DOACROSS workload (all in nanoseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct DoacrossParams {
    /// Loop trip count.
    pub trip: u64,
    /// Dependence distance.
    pub distance: u64,
    /// Observable statement costs before the await (independent phase).
    pub head: Vec<u64>,
    /// Observable statement costs inside the critical section.
    pub cs_observable: Vec<u64>,
    /// Unobservable (fused) computation inside the critical section.
    pub cs_unobservable: u64,
    /// Observable statement costs after the advance.
    pub tail: Vec<u64>,
    /// Serial prologue statement costs (processor 0, before the loop).
    pub serial_head: Vec<u64>,
    /// Serial epilogue statement costs.
    pub serial_tail: Vec<u64>,
}

impl DoacrossParams {
    /// Loop 3 (inner product). Tiny fused critical section (`q += z*x`
    /// accumulation), moderate independent phase: deeply blocked without
    /// instrumentation, unblocked under statement tracing.
    pub fn lfk03() -> Self {
        DoacrossParams {
            trip: 1001,
            distance: 1,
            head: vec![650, 650, 650, 640],
            cs_observable: vec![],
            cs_unobservable: 566,
            tail: vec![],
            serial_head: vec![800],
            serial_tail: vec![800],
        }
    }

    /// Loop 4 (banded linear equations). Same shape as loop 3 with a
    /// longer independent phase (the inner reduction over the band).
    pub fn lfk04() -> Self {
        DoacrossParams {
            trip: 1001,
            distance: 1,
            head: vec![1070, 1070, 1070, 1070, 1057],
            cs_observable: vec![],
            cs_unobservable: 859,
            tail: vec![],
            serial_head: vec![1000],
            serial_tail: vec![1000],
        }
    }

    /// Loop 17 (implicit, conditional computation). A *large, observable*
    /// critical section (the conditional recurrence on `xnm`/`e6`) with
    /// enough independent work that the uninstrumented loop runs nearly
    /// parallel — instrumentation inside the critical section then
    /// serializes it (the paper's over-approximation case).
    pub fn lfk17() -> Self {
        DoacrossParams {
            trip: 101,
            distance: 1,
            head: vec![2500, 2500, 2500],
            cs_observable: vec![125, 125, 125, 125],
            cs_unobservable: 0,
            tail: vec![2500],
            serial_head: vec![4000; 5],
            serial_tail: vec![5000, 5000],
        }
    }

    /// Default parameters for a DOACROSS kernel id (3, 4, or 17).
    pub fn for_kernel(id: u8) -> Option<Self> {
        match id {
            3 => Some(Self::lfk03()),
            4 => Some(Self::lfk04()),
            17 => Some(Self::lfk17()),
            _ => None,
        }
    }
}

/// Builds the DOACROSS statement-graph of Figure 3 from cost parameters.
///
/// Every [`DoacrossParams`] produced by this crate builds successfully;
/// hand-written parameters that violate the program invariants (e.g. a
/// zero trip count) surface as the builder's [`ProgramError`].
pub fn doacross_graph_with(name: &str, p: &DoacrossParams) -> Result<Program, ProgramError> {
    let mut b = ProgramBuilder::new(name);
    let v = b.sync_var();
    let mut b = b.serial(
        p.serial_head
            .iter()
            .enumerate()
            .map(|(i, &c)| (format!("pre{i}"), c)),
    );
    let d = p.distance as i64;
    b = b.doacross(p.distance, p.trip, |mut body| {
        for (i, &c) in p.head.iter().enumerate() {
            body = body.compute(format!("head{i}"), c);
        }
        body = body.await_var(v, -d);
        for (i, &c) in p.cs_observable.iter().enumerate() {
            body = body.compute(format!("cs{i}"), c);
        }
        if p.cs_unobservable > 0 {
            body = body.compute_unobservable("fused-update", p.cs_unobservable);
        }
        body = body.advance(v);
        for (i, &c) in p.tail.iter().enumerate() {
            body = body.compute(format!("tail{i}"), c);
        }
        body
    });
    b = b.serial(
        p.serial_tail
            .iter()
            .enumerate()
            .map(|(i, &c)| (format!("post{i}"), c)),
    );
    b.build()
}

/// Builds the DOACROSS graph of a Table 1/2 kernel (3, 4, or 17) with its
/// calibrated default parameters.
pub fn doacross_graph(id: u8) -> Option<Program> {
    let p = DoacrossParams::for_kernel(id)?;
    doacross_graph_with(&format!("lfk{id:02}"), &p).ok()
}

/// Builds the experiment graph for any kernel covered by the paper:
/// sequential form for Figure-1 kernels, DOACROSS form for loops 3/4/17.
pub fn graph(id: u8) -> Option<Program> {
    match kernel_meta(id)?.class {
        KernelClass::Doacross => doacross_graph(id),
        _ => sequential_graph(id),
    }
}

/// Builds a statement-graph form for **any** of the 24 kernels, for
/// intrusion studies beyond the paper's figure set.
///
/// Kernels with paper-calibrated graphs use those; the rest get
/// flop-structure-derived bodies (statement counts from the kernel's
/// published shape, costs from rough operation counts at the experiment
/// clock) and run in the mode their classification dictates —
/// [`KernelClass::Vectorizable`] as 4x vector loops,
/// [`KernelClass::Parallel`] as DOALL, the rest sequential.
pub fn generic_graph(id: u8) -> Option<Program> {
    if let Some(g) = graph(id) {
        return Some(g);
    }
    let meta = kernel_meta(id)?;
    // (statements per iteration, trip count, cost per statement in ns)
    let (stmts, trip, cost): (usize, u64, u64) = match id {
        5 => (1, 994, 500),    // x[i] = z[i]*(y[i] - x[i-1])
        9 => (1, 101, 2_000),  // 13-term predictor integration
        10 => (9, 101, 300),   // difference-predictor cascade
        11 => (1, 1_000, 300), // prefix sum
        12 => (1, 1_000, 250), // first difference
        14 => (6, 1_001, 500), // 1-D PIC gather/push/deposit
        15 => (4, 600, 600),   // casual grid sweep (ng*nz points)
        18 => (6, 500, 800),   // 2-D explicit hydro, per grid point
        21 => (1, 2_525, 150), // matmul inner updates (25*101)
        23 => (1, 500, 900),   // 2-D implicit relaxation point
        24 => (1, 1_001, 120), // argmin scan step
        _ => return None,
    };
    fn add_body<'a>(
        mut body: ppa_program::BodyBuilder<'a>,
        stmts: usize,
        cost: u64,
    ) -> ppa_program::BodyBuilder<'a> {
        for s in 0..stmts {
            body = body.compute(format!("s{s}"), cost);
        }
        body
    }
    let name = format!("lfk{id:02}");
    let builder = ProgramBuilder::new(name);
    let b = match meta.class {
        KernelClass::Vectorizable => {
            builder.vector_loop(trip, 4_000, |body| add_body(body, stmts, cost))
        }
        KernelClass::Parallel => builder.doall(trip, |body| add_body(body, stmts, cost)),
        _ => builder.sequential_loop(trip, |body| add_body(body, stmts, cost)),
    };
    b.build().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_program::{validate, LoopKind, Segment, StatementKind};

    #[test]
    fn fig1_cost_formula() {
        // target 10: cost 500 -> ratio 1 + 4500/500 = 10.
        assert_eq!(fig1_cost(10.0), 500);
        assert_eq!(fig1_cost(2.0), 4500);
    }

    #[test]
    fn all_fig1_graphs_build_and_validate() {
        for id in [1u8, 2, 6, 7, 8, 13, 16, 19, 20, 22] {
            let g = sequential_graph(id).unwrap_or_else(|| panic!("no graph for {id}"));
            validate(&g).unwrap();
            let l = g.loops().next().unwrap();
            assert_eq!(l.kind, LoopKind::Sequential);
            assert!(l.sync_statements().count() == 0);
        }
    }

    #[test]
    fn non_fig1_sequential_ids_return_none() {
        assert!(sequential_graph(3).is_none());
        assert!(sequential_graph(5).is_none());
        assert!(sequential_graph(24).is_none());
    }

    #[test]
    fn doacross_graphs_have_figure3_shape() {
        for id in [3u8, 4, 17] {
            let g = doacross_graph(id).unwrap();
            validate(&g).unwrap();
            // serial head, loop, serial tail
            assert_eq!(g.segments.len(), 3);
            assert!(matches!(g.segments[0], Segment::Serial(_)));
            assert!(matches!(g.segments[2], Segment::Serial(_)));
            let l = g.loops().next().unwrap();
            assert_eq!(l.kind, LoopKind::Doacross { distance: 1 });
            assert_eq!(l.sync_statements().count(), 2);
        }
    }

    #[test]
    fn loops_3_and_4_have_unobservable_cs() {
        for id in [3u8, 4] {
            let g = doacross_graph(id).unwrap();
            let l = g.loops().next().unwrap();
            let unobs: Vec<_> = l.body.iter().filter(|s| !s.observable).collect();
            assert_eq!(unobs.len(), 1, "loop {id} should have one fused update");
            assert!(matches!(unobs[0].kind, StatementKind::Compute { .. }));
        }
    }

    #[test]
    fn loop_17_cs_is_observable() {
        let g = doacross_graph(17).unwrap();
        let l = g.loops().next().unwrap();
        assert!(l.body.iter().all(|s| s.observable));
        // Critical section cost between await and advance:
        assert_eq!(l.critical_cost(), 500);
    }

    #[test]
    fn graph_dispatches_by_class() {
        assert!(graph(3).unwrap().has_concurrency());
        assert!(!graph(1).unwrap().has_concurrency());
        assert!(graph(5).is_none()); // not part of any experiment
    }

    #[test]
    fn vector_twin_only_for_vectorizable_kernels() {
        // Kernel 1 is vectorizable; kernel 2 (ICCG) is not.
        let v = vector_twin(1).unwrap();
        assert!(matches!(
            v.loops().next().unwrap().kind,
            LoopKind::Vector { .. }
        ));
        assert!(vector_twin(2).is_none());
        assert!(vector_twin(3).is_none());
        // Same body shape as the sequential form.
        let s = sequential_graph(1).unwrap();
        assert_eq!(
            v.loops().next().unwrap().body.len(),
            s.loops().next().unwrap().body.len()
        );
        assert_eq!(
            v.loops().next().unwrap().trip_count,
            s.loops().next().unwrap().trip_count
        );
    }

    #[test]
    fn generic_graph_covers_all_24_kernels() {
        for id in 1u8..=24 {
            let g = generic_graph(id).unwrap_or_else(|| panic!("kernel {id} missing"));
            validate(&g).unwrap();
            assert!(g.dynamic_statement_count() > 0);
        }
        assert!(generic_graph(0).is_none());
        assert!(generic_graph(25).is_none());
    }

    #[test]
    fn generic_graph_respects_classification() {
        // Kernel 12 is vectorizable, 21 parallel, 5 serial.
        let v = generic_graph(12).unwrap();
        assert!(matches!(
            v.loops().next().unwrap().kind,
            LoopKind::Vector { .. }
        ));
        let p = generic_graph(21).unwrap();
        assert_eq!(p.loops().next().unwrap().kind, LoopKind::Doall);
        let s = generic_graph(5).unwrap();
        assert_eq!(s.loops().next().unwrap().kind, LoopKind::Sequential);
    }

    #[test]
    fn params_round_trip_through_builder() {
        let p = DoacrossParams::lfk17();
        let g = doacross_graph_with("x", &p).unwrap();
        let l = g.loops().next().unwrap();
        assert_eq!(l.trip_count, p.trip);
        assert_eq!(l.pre_await_cost(), p.head.iter().sum::<u64>());
    }
}
