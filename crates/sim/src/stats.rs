//! Execution statistics gathered during simulation.
//!
//! Stats are byproducts of the run, not of trace analysis — for an
//! uninstrumented run they are the *ground truth* the paper could not
//! observe directly, which the integration tests compare analysis results
//! against.

use ppa_trace::{LoopId, ProcessorId, Span, Time};
use serde::{Deserialize, Serialize};

/// Per-processor accounting within one loop execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcStats {
    /// Time spent computing (statement costs, sync processing, dispatch).
    pub busy: Span,
    /// Time spent blocked in `await` operations.
    pub sync_wait: Span,
    /// Time spent blocked at the loop-end barrier.
    pub barrier_wait: Span,
    /// Iterations executed.
    pub iterations: u64,
}

impl ProcStats {
    /// Total waiting (sync + barrier).
    pub fn total_wait(&self) -> Span {
        self.sync_wait + self.barrier_wait
    }
}

/// Statistics for one concurrent-loop execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopStats {
    /// Which loop.
    pub loop_id: LoopId,
    /// Time the loop was entered (dispatch start).
    pub start: Time,
    /// Time the closing barrier released.
    pub end: Time,
    /// Per-processor accounting (index = processor id).
    pub per_proc: Vec<ProcStats>,
    /// Iteration-to-processor assignment actually used.
    pub assignment: Vec<ProcessorId>,
}

impl LoopStats {
    /// Wall-clock span of the loop.
    pub fn span(&self) -> Span {
        self.end.saturating_since(self.start)
    }

    /// Aggregate waiting across processors.
    pub fn total_wait(&self) -> Span {
        self.per_proc.iter().map(ProcStats::total_wait).sum()
    }
}

/// Statistics for one whole simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SimStats {
    /// Per-loop statistics, in execution order (concurrent loops only).
    pub loops: Vec<LoopStats>,
    /// Events emitted.
    pub events: usize,
    /// Total instrumentation overhead charged (zero for actual runs).
    pub instr_overhead: Span,
}

impl SimStats {
    /// The stats of the loop with the given id, if it executed.
    pub fn loop_stats(&self, loop_id: LoopId) -> Option<&LoopStats> {
        self.loops.iter().find(|l| l.loop_id == loop_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_stats_sum() {
        let p = ProcStats {
            busy: Span::from_nanos(10),
            sync_wait: Span::from_nanos(3),
            barrier_wait: Span::from_nanos(4),
            iterations: 2,
        };
        assert_eq!(p.total_wait(), Span::from_nanos(7));
    }

    #[test]
    fn loop_stats_span_and_lookup() {
        let ls = LoopStats {
            loop_id: LoopId(3),
            start: Time::from_nanos(100),
            end: Time::from_nanos(150),
            per_proc: vec![ProcStats::default(); 2],
            assignment: vec![],
        };
        assert_eq!(ls.span(), Span::from_nanos(50));
        let stats = SimStats {
            loops: vec![ls.clone()],
            events: 0,
            instr_overhead: Span::ZERO,
        };
        assert_eq!(stats.loop_stats(LoopId(3)), Some(&ls));
        assert_eq!(stats.loop_stats(LoopId(9)), None);
    }
}
