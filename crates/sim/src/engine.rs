//! The execution engine.
//!
//! A structured discrete-event simulation of an Alliant-FX/80-style shared
//! memory multiprocessor. Programs are serial/parallel segment sequences
//! (`ppa-program`), which lets the engine simulate segment by segment:
//! serial segments and sequential/vector loops advance processor 0's
//! clock statement by statement; concurrent loops simulate all processors,
//! dispatching iterations by the configured policy and resolving
//! advance/await blocking exactly (iterations are processed in index
//! order, so every awaited tag's advance time is already known — awaits
//! only ever name *earlier* iterations, which program validation
//! guarantees).
//!
//! ## Timing semantics (mirroring the paper's §4.2.2 instrumentation)
//!
//! - A compute statement advances the clock by its (possibly jittered)
//!   cost; if instrumented, the recording code then runs (statement
//!   overhead) and the event is stamped *after* it.
//! - `await`: instrumentation (β) + `awaitB` event, then the await
//!   operation — `s_nowait` if the tag is already advanced, otherwise
//!   block until the advance makes the tag visible, then `s_wait` —
//!   then instrumentation + `awaitE` event.
//! - `advance`: the operation (`advance_op`) completes and the tag becomes
//!   visible to waiters; instrumentation (α) runs after that, so the
//!   recorded `advance` event trails visibility by α, exactly the bias the
//!   event-based model's `− α` term removes.
//! - Loop-end barrier: enter event per processor, release at the last
//!   arrival plus `barrier_release`, exit events after.
//!
//! In *actual* mode every event is emitted with zero instrumentation cost:
//! the run **is** the ground truth `τ`, something the paper's authors
//! could only approximate on real hardware.

use crate::config::{SchedulePolicy, SimConfig};
use crate::jitter::jittered_cost;
use crate::stats::{LoopStats, ProcStats, SimStats};
use ppa_obs::{exponential_bounds, Counter, Histogram, Registry};
use ppa_program::{
    validate, InstrumentationPlan, Loop, LoopKind, Program, ProgramError, Segment, Statement,
    StatementKind,
};
use ppa_trace::{
    Event, EventKind, LoopId, ProcessorId, Span, SyncTag, SyncVarId, Time, Trace, TraceKind,
};
use std::collections::HashMap;
use std::fmt;

/// Observability probes for the simulation engines.
///
/// Shared by the primary structured engine (this module) and the
/// cross-validating event-queue engine (`run_*_eventq`). The default
/// ([`EngineProbes::noop`]) is fully detached; attach real metrics with
/// [`EngineProbes::register`].
#[derive(Clone, Debug, Default)]
pub struct EngineProbes {
    /// Trace events emitted by the engine (`ppa_sim_events_total`).
    pub events_emitted: Counter,
    /// Concurrent-loop iterations dispatched to processors
    /// (`ppa_sim_iterations_dispatched_total`).
    pub iterations_dispatched: Counter,
    /// Ready-queue depth sampled at each event-queue step
    /// (`ppa_sim_ready_queue_depth`). Only the event-queue engine has an
    /// explicit ready queue; the structured engine never records here.
    pub queue_depth: Histogram,
}

impl EngineProbes {
    /// Detached probes: every record is discarded.
    pub fn noop() -> Self {
        EngineProbes::default()
    }

    /// Registers the engine metrics on `registry`.
    pub fn register(registry: &Registry) -> Self {
        EngineProbes {
            events_emitted: registry.counter(
                "ppa_sim_events_total",
                "Trace events emitted by the simulation engine.",
            ),
            iterations_dispatched: registry.counter(
                "ppa_sim_iterations_dispatched_total",
                "Concurrent-loop iterations dispatched to processors.",
            ),
            queue_depth: registry.histogram(
                "ppa_sim_ready_queue_depth",
                "Ready-queue depth at each event-queue simulation step.",
                &exponential_bounds(1, 2.0, 8),
            ),
        }
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The program failed validation.
    Program(ProgramError),
    /// The configuration has zero processors.
    NoProcessors,
    /// An await named a tag whose advance never executed (cannot happen
    /// for validated programs; kept as a hard check).
    UnsatisfiableAwait {
        /// The variable awaited.
        var: SyncVarId,
        /// The tag that was never advanced.
        tag: SyncTag,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Program(e) => write!(f, "invalid program: {e}"),
            SimError::NoProcessors => write!(f, "configuration has zero processors"),
            SimError::UnsatisfiableAwait { var, tag } => {
                write!(f, "await on {var} {tag} can never be satisfied")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<ProgramError> for SimError {
    fn from(e: ProgramError) -> Self {
        SimError::Program(e)
    }
}

/// The product of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// The event trace (actual or measured, by mode).
    pub trace: Trace,
    /// Ground-truth execution statistics.
    pub stats: SimStats,
}

/// Simulates the program without instrumentation, producing the *actual*
/// trace (every event present, zero instrumentation cost).
pub fn run_actual(program: &Program, config: &SimConfig) -> Result<SimResult, SimError> {
    Executor::new(config, Mode::Actual, EngineProbes::noop()).run(program)
}

/// [`run_actual`] with observability: emitted events and dispatched
/// iterations are recorded into `probes`.
pub fn run_actual_probed(
    program: &Program,
    config: &SimConfig,
    probes: EngineProbes,
) -> Result<SimResult, SimError> {
    Executor::new(config, Mode::Actual, probes).run(program)
}

/// Simulates the program under the given instrumentation plan, producing
/// the *measured* trace (only planned events, each charged its recording
/// overhead).
pub fn run_measured(
    program: &Program,
    plan: &InstrumentationPlan,
    config: &SimConfig,
) -> Result<SimResult, SimError> {
    Executor::new(config, Mode::Measured(plan), EngineProbes::noop()).run(program)
}

/// [`run_measured`] with observability: emitted events and dispatched
/// iterations are recorded into `probes`.
pub fn run_measured_probed(
    program: &Program,
    plan: &InstrumentationPlan,
    config: &SimConfig,
    probes: EngineProbes,
) -> Result<SimResult, SimError> {
    Executor::new(config, Mode::Measured(plan), probes).run(program)
}

#[derive(Clone, Copy)]
enum Mode<'a> {
    Actual,
    Measured(&'a InstrumentationPlan),
}

struct Executor<'a> {
    config: &'a SimConfig,
    mode: Mode<'a>,
    events: Vec<Event>,
    seq: u64,
    instr_total: Span,
    stats: SimStats,
    probes: EngineProbes,
}

/// Sentinel loop id for jitter keys of statements outside any loop.
const SERIAL_LOOP_KEY: LoopId = LoopId(u32::MAX);

impl<'a> Executor<'a> {
    fn new(config: &'a SimConfig, mode: Mode<'a>, probes: EngineProbes) -> Self {
        Executor {
            config,
            mode,
            events: Vec::new(),
            seq: 0,
            instr_total: Span::ZERO,
            stats: SimStats::default(),
            probes,
        }
    }

    /// Whether an event of this kind gets recorded, and at what
    /// instrumentation cost.
    fn recording(&self, kind: &EventKind, stmt: Option<&Statement>) -> Option<Span> {
        match self.mode {
            Mode::Actual => Some(Span::ZERO),
            Mode::Measured(plan) => {
                let wanted = match kind {
                    EventKind::Statement { stmt: id } => {
                        stmt.map(|s| s.observable).unwrap_or(true) && plan.traces_statement(*id)
                    }
                    EventKind::IterationBegin { .. } | EventKind::IterationEnd { .. } => {
                        plan.iteration_markers
                    }
                    k if k.is_sync() => plan.sync_ops,
                    k if k.is_barrier() => plan.barriers,
                    _ => plan.markers,
                };
                wanted.then(|| self.config.overheads.instr_overhead(kind))
            }
        }
    }

    /// Charges instrumentation (if recording) and emits the event at the
    /// post-instrumentation clock.
    fn emit(&mut self, clock: &mut Time, proc: ProcessorId, kind: EventKind) {
        self.emit_stmt(clock, proc, kind, None)
    }

    fn emit_stmt(
        &mut self,
        clock: &mut Time,
        proc: ProcessorId,
        kind: EventKind,
        stmt: Option<&Statement>,
    ) {
        if let Some(overhead) = self.recording(&kind, stmt) {
            *clock += overhead;
            self.instr_total += overhead;
            self.events.push(Event::new(*clock, proc, self.seq, kind));
            self.seq += 1;
            self.probes.events_emitted.inc();
        }
    }

    fn cycles(&self, c: u64) -> Span {
        self.config.clock.cycles(c)
    }

    fn run(mut self, program: &Program) -> Result<SimResult, SimError> {
        validate(program)?;
        if self.config.processors == 0 {
            return Err(SimError::NoProcessors);
        }

        let p0 = ProcessorId(0);
        let mut t0 = Time::ZERO;
        self.emit(&mut t0, p0, EventKind::ProgramBegin);

        for seg in &program.segments {
            match seg {
                Segment::Serial(stmts) => {
                    for s in stmts {
                        self.exec_compute(&mut t0, p0, s, SERIAL_LOOP_KEY, 0, 1000);
                    }
                }
                Segment::Loop(l) if !l.kind.is_concurrent() => {
                    self.run_serial_loop(&mut t0, l);
                }
                Segment::Loop(l) => {
                    t0 = self.run_parallel_loop(t0, l)?;
                }
            }
        }

        self.emit(&mut t0, p0, EventKind::ProgramEnd);

        self.stats.events = self.events.len();
        self.stats.instr_overhead = self.instr_total;
        let kind = match self.mode {
            Mode::Actual => TraceKind::Actual,
            Mode::Measured(_) => TraceKind::Measured,
        };
        Ok(SimResult {
            trace: Trace::from_events(kind, self.events),
            stats: self.stats,
        })
    }

    /// Executes one compute statement: cost (jittered, scaled for vector
    /// loops by `speedup_permille`), then instrumentation + event.
    fn exec_compute(
        &mut self,
        clock: &mut Time,
        proc: ProcessorId,
        s: &Statement,
        loop_key: LoopId,
        iter: u64,
        speedup_permille: u32,
    ) {
        let nominal = s.cost();
        let cost = jittered_cost(self.config.jitter, loop_key, iter, s.id, nominal);
        let cost = if speedup_permille == 1000 {
            cost
        } else {
            (cost as u128 * 1000 / speedup_permille as u128) as u64
        };
        *clock += self.cycles(cost);
        self.emit_stmt(clock, proc, EventKind::Statement { stmt: s.id }, Some(s));
    }

    fn run_serial_loop(&mut self, t0: &mut Time, l: &Loop) {
        let p0 = ProcessorId(0);
        let speedup = match l.kind {
            LoopKind::Vector { speedup_permille } => speedup_permille.max(1),
            _ => 1000,
        };
        self.emit(t0, p0, EventKind::LoopBegin { loop_id: l.id });
        for i in 0..l.trip_count {
            self.emit(
                t0,
                p0,
                EventKind::IterationBegin {
                    loop_id: l.id,
                    iter: i,
                },
            );
            for s in &l.body {
                // Validation guarantees serial loops contain no sync
                // statements.
                self.exec_compute(t0, p0, s, l.id, i, speedup);
            }
            self.emit(
                t0,
                p0,
                EventKind::IterationEnd {
                    loop_id: l.id,
                    iter: i,
                },
            );
        }
        self.emit(t0, p0, EventKind::LoopEnd { loop_id: l.id });
    }

    fn run_parallel_loop(&mut self, mut t0: Time, l: &Loop) -> Result<Time, SimError> {
        let p = self.config.processors;
        let p0 = ProcessorId(0);
        self.emit(&mut t0, p0, EventKind::LoopBegin { loop_id: l.id });

        let loop_start = t0;
        let mut clocks = vec![loop_start; p];
        let mut proc_stats = vec![ProcStats::default(); p];
        // (var, tag) -> time the advance made the tag visible.
        let mut advances: HashMap<(SyncVarId, i64), Time> = HashMap::new();
        let mut assignment = Vec::with_capacity(l.trip_count as usize);

        let chunk = l.trip_count.div_ceil(p as u64).max(1);
        for i in 0..l.trip_count {
            let proc = match self.config.schedule {
                SchedulePolicy::StaticCyclic => (i % p as u64) as usize,
                SchedulePolicy::StaticBlock => ((i / chunk) as usize).min(p - 1),
                SchedulePolicy::SelfScheduled => {
                    // The earliest-free processor takes the next iteration
                    // (ties to the lowest id) — exactly what a shared
                    // iteration counter produces.
                    (0..p).min_by_key(|&q| (clocks[q], q)).unwrap_or(0)
                }
            };
            assignment.push(ProcessorId(proc as u16));
            self.probes.iterations_dispatched.inc();
            let pid = ProcessorId(proc as u16);
            let mut clock = clocks[proc];
            clock += self.cycles(self.config.dispatch_cycles);
            self.emit(
                &mut clock,
                pid,
                EventKind::IterationBegin {
                    loop_id: l.id,
                    iter: i,
                },
            );

            for s in &l.body {
                match s.kind {
                    StatementKind::Compute { .. } => {
                        self.exec_compute(&mut clock, pid, s, l.id, i, 1000);
                    }
                    StatementKind::Await { var, offset } => {
                        let tag = SyncTag(i as i64 + offset);
                        self.emit(&mut clock, pid, EventKind::AwaitBegin { var, tag });
                        if tag.is_pre_advanced() {
                            clock += self.config.overheads.s_nowait;
                        } else {
                            let visible = *advances
                                .get(&(var, tag.0))
                                .ok_or(SimError::UnsatisfiableAwait { var, tag })?;
                            if visible <= clock {
                                clock += self.config.overheads.s_nowait;
                            } else {
                                proc_stats[proc].sync_wait += visible - clock;
                                clock = visible + self.config.overheads.s_wait;
                            }
                        }
                        self.emit(&mut clock, pid, EventKind::AwaitEnd { var, tag });
                    }
                    StatementKind::Advance { var } => {
                        clock += self.config.overheads.advance_op;
                        advances.insert((var, i as i64), clock);
                        self.emit(
                            &mut clock,
                            pid,
                            EventKind::Advance {
                                var,
                                tag: SyncTag(i as i64),
                            },
                        );
                    }
                }
            }

            self.emit(
                &mut clock,
                pid,
                EventKind::IterationEnd {
                    loop_id: l.id,
                    iter: i,
                },
            );
            proc_stats[proc].iterations += 1;
            clocks[proc] = clock;
        }

        // Loop-end barrier: every processor participates.
        for (q, clock) in clocks.iter_mut().enumerate() {
            self.emit(
                clock,
                ProcessorId(q as u16),
                EventKind::BarrierEnter { barrier: l.barrier },
            );
        }
        let release = clocks.iter().copied().max().unwrap_or(loop_start);
        for (q, clock) in clocks.iter_mut().enumerate() {
            proc_stats[q].barrier_wait += release - *clock;
            *clock = release + self.config.overheads.barrier_release;
            self.emit(
                clock,
                ProcessorId(q as u16),
                EventKind::BarrierExit { barrier: l.barrier },
            );
        }

        // Busy time = in-loop wall time minus waiting.
        for (q, ps) in proc_stats.iter_mut().enumerate() {
            let wall = clocks[q].saturating_since(loop_start);
            ps.busy = wall.saturating_sub(ps.sync_wait + ps.barrier_wait);
        }

        let mut t_end = clocks[0];
        self.emit(&mut t_end, p0, EventKind::LoopEnd { loop_id: l.id });

        self.stats.loops.push(LoopStats {
            loop_id: l.id,
            start: loop_start,
            end: t_end,
            per_proc: proc_stats,
            assignment,
        });
        Ok(t_end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_program::ProgramBuilder;
    use ppa_trace::{pair_sync_events, ClockRate, OverheadSpec};

    fn test_config() -> SimConfig {
        SimConfig {
            processors: 4,
            clock: ClockRate::GHZ_1, // 1 cycle == 1 ns: costs are legible
            overheads: OverheadSpec::ZERO,
            schedule: SchedulePolicy::StaticCyclic,
            dispatch_cycles: 0,
            jitter: None,
        }
    }

    fn doacross_program(n: u64, head: u64, cs: u64, tail: u64) -> Program {
        let mut b = ProgramBuilder::new("doacross");
        let v = b.sync_var();
        b.doacross(1, n, |body| {
            body.compute("head", head)
                .await_var(v, -1)
                .compute("cs", cs)
                .advance(v)
                .compute("tail", tail)
        })
        .build()
        .unwrap()
    }

    #[test]
    fn serial_program_times_add_up() {
        let p = ProgramBuilder::new("serial")
            .serial([("a", 10u64), ("b", 20), ("c", 30)])
            .build()
            .unwrap();
        let r = run_actual(&p, &test_config()).unwrap();
        // ProgramBegin @0, statements @10,@30,@60, ProgramEnd @60.
        assert_eq!(r.trace.total_time(), Span::from_nanos(60));
        assert_eq!(r.trace.len(), 5);
    }

    #[test]
    fn sequential_loop_runs_on_proc0() {
        let p = ProgramBuilder::new("seq")
            .sequential_loop(5, |b| b.compute("x", 7))
            .build()
            .unwrap();
        let r = run_actual(&p, &test_config()).unwrap();
        assert_eq!(r.trace.processors(), vec![ProcessorId(0)]);
        assert_eq!(r.trace.total_time(), Span::from_nanos(35));
    }

    #[test]
    fn vector_loop_scales_cost() {
        let p = ProgramBuilder::new("vec")
            .vector_loop(10, 4000, |b| b.compute("x", 40))
            .build()
            .unwrap();
        let r = run_actual(&p, &test_config()).unwrap();
        // 40 cycles at 4x speedup = 10 ns per iteration.
        assert_eq!(r.trace.total_time(), Span::from_nanos(100));
    }

    #[test]
    fn doall_spreads_over_processors() {
        let p = ProgramBuilder::new("doall")
            .doall(8, |b| b.compute("x", 100))
            .build()
            .unwrap();
        let r = run_actual(&p, &test_config()).unwrap();
        // 8 iterations on 4 procs, 2 each, perfectly balanced: 200 ns.
        assert_eq!(r.trace.total_time(), Span::from_nanos(200));
        let stats = &r.stats.loops[0];
        assert!(stats.per_proc.iter().all(|ps| ps.iterations == 2));
        assert!(stats.per_proc.iter().all(|ps| ps.barrier_wait.is_zero()));
    }

    #[test]
    fn doacross_chain_serializes_critical_section() {
        // head=0, cs=10, tail=0: the loop is a pure dependence chain, so
        // total time == n * cs regardless of processor count.
        let p = doacross_program(12, 0, 10, 0);
        let r = run_actual(&p, &test_config()).unwrap();
        assert_eq!(r.trace.total_time(), Span::from_nanos(120));
        // Everyone but the processor of iteration 0 waits.
        let stats = &r.stats.loops[0];
        assert!(stats.per_proc[1].sync_wait > Span::ZERO);
    }

    #[test]
    fn doacross_without_contention_runs_parallel() {
        // head so long that advances always land before the next await:
        // iteration i on proc i%4 starts at (i/4)*body; await of i-1 is
        // satisfied long before. Total ~= ceil(n/4)*body.
        let p = doacross_program(8, 1_000, 10, 0);
        let r = run_actual(&p, &test_config()).unwrap();
        let stats = &r.stats.loops[0];
        let total_sync_wait: Span = stats.per_proc.iter().map(|ps| ps.sync_wait).sum();
        // Only the pipeline fill (first round) can wait.
        assert!(
            total_sync_wait < Span::from_nanos(100),
            "unexpected waiting: {total_sync_wait}"
        );
        // Two rounds of head(1000)+cs(10) plus the tail of the pipeline:
        // the last iteration (i=7) finishes its second-round critical
        // section at 2050 (first-round fill delays propagate one cs per
        // iteration).
        assert_eq!(r.trace.total_time(), Span::from_nanos(2050));
    }

    #[test]
    fn actual_trace_passes_sync_validation() {
        let p = doacross_program(16, 50, 10, 20);
        let r = run_actual(&p, &test_config()).unwrap();
        let idx = pair_sync_events(&r.trace).unwrap();
        assert_eq!(idx.awaits.len(), 16);
        assert_eq!(idx.advances.len(), 16);
        assert_eq!(idx.barriers.len(), 1);
    }

    #[test]
    fn measured_trace_passes_sync_validation_and_is_slower() {
        let p = doacross_program(16, 50, 10, 20);
        let config = test_config().with_overheads(OverheadSpec::uniform(Span::from_nanos(25)));
        let actual = run_actual(&p, &config).unwrap();
        let measured = run_measured(&p, &InstrumentationPlan::full_with_sync(), &config).unwrap();
        assert!(pair_sync_events(&measured.trace).is_ok());
        assert!(measured.trace.total_time() > actual.trace.total_time());
        assert!(measured.stats.instr_overhead > Span::ZERO);
        assert_eq!(actual.stats.instr_overhead, Span::ZERO);
    }

    #[test]
    fn measured_without_sync_plan_has_no_sync_events() {
        let p = doacross_program(4, 50, 10, 20);
        let r = run_measured(&p, &InstrumentationPlan::full_statements(), &test_config()).unwrap();
        assert_eq!(r.trace.sync_event_count(), 0);
        assert!(
            r.trace
                .count_where(|k| matches!(k, EventKind::Statement { .. }))
                > 0
        );
    }

    #[test]
    fn unobservable_statements_emit_no_events_and_no_overhead() {
        let mut b = ProgramBuilder::new("unobs");
        let v = b.sync_var();
        let p = b
            .doacross(1, 4, |body| {
                body.compute("head", 10)
                    .await_var(v, -1)
                    .compute_unobservable("fused", 5)
                    .advance(v)
            })
            .build()
            .unwrap();
        let cfg = test_config().with_overheads(OverheadSpec::uniform(Span::from_nanos(100)));
        let m = run_measured(&p, &InstrumentationPlan::full_statements(), &cfg).unwrap();
        // Only the observable "head" statements appear.
        assert_eq!(
            m.trace
                .count_where(|k| matches!(k, EventKind::Statement { .. })),
            4
        );
        // In the actual trace, unobservable statements do appear (ground
        // truth sees everything).
        let a = run_actual(&p, &cfg).unwrap();
        assert_eq!(
            a.trace
                .count_where(|k| matches!(k, EventKind::Statement { .. })),
            8
        );
    }

    #[test]
    fn zero_overhead_measured_equals_actual_times() {
        let p = doacross_program(10, 30, 10, 15);
        let cfg = test_config();
        let a = run_actual(&p, &cfg).unwrap();
        let m = run_measured(&p, &InstrumentationPlan::full_with_sync(), &cfg).unwrap();
        assert_eq!(a.trace.total_time(), m.trace.total_time());
        // Every measured event appears in the actual trace at the same
        // time (the measured trace omits unplanned kinds such as
        // iteration markers, so it is a sub-multiset).
        use std::collections::HashMap;
        let mut actual_times: HashMap<(EventKind, u64), Vec<ppa_trace::Time>> = HashMap::new();
        for e in a.trace.iter() {
            actual_times
                .entry((e.kind, e.proc.0 as u64))
                .or_default()
                .push(e.time);
        }
        for e in m.trace.iter() {
            let times = actual_times
                .get(&(e.kind, e.proc.0 as u64))
                .unwrap_or_else(|| panic!("measured event {e} missing from actual"));
            assert!(times.contains(&e.time), "measured event {e} at wrong time");
        }
    }

    #[cfg(feature = "obs")]
    #[test]
    fn probes_count_emitted_events_and_dispatches() {
        use crate::eventq::run_actual_eventq_probed;

        let p = doacross_program(8, 50, 10, 20);
        let cfg = test_config();

        let registry = Registry::new();
        let r = run_actual_probed(&p, &cfg, EngineProbes::register(&registry)).unwrap();
        let snap = registry.snapshot();
        let counter = |name: &str| {
            snap.entries
                .iter()
                .find(|m| m.name == name)
                .map(|m| match m.value {
                    ppa_obs::MetricValue::Counter(c) => c,
                    _ => 0,
                })
                .unwrap_or(0)
        };
        assert_eq!(counter("ppa_sim_events_total"), r.trace.len() as u64);
        assert_eq!(counter("ppa_sim_iterations_dispatched_total"), 8);

        // The event-queue engine additionally samples ready-queue depth.
        let registry = Registry::new();
        let r = run_actual_eventq_probed(&p, &cfg, EngineProbes::register(&registry)).unwrap();
        let snap = registry.snapshot();
        assert!(snap.entries.iter().any(|m| m.name == "ppa_sim_events_total"
            && matches!(m.value, ppa_obs::MetricValue::Counter(c) if c == r.trace.len() as u64)));
        assert!(snap
            .entries
            .iter()
            .any(|m| m.name == "ppa_sim_ready_queue_depth"));
    }

    #[test]
    fn determinism_same_config_same_trace() {
        let p = doacross_program(32, 40, 12, 9);
        let cfg = test_config().with_jitter(1234, 150);
        let r1 = run_actual(&p, &cfg).unwrap();
        let r2 = run_actual(&p, &cfg).unwrap();
        assert_eq!(r1.trace, r2.trace);
        assert_eq!(r1.stats, r2.stats);
    }

    #[test]
    fn self_scheduling_balances_uneven_work() {
        // One long iteration (i=0) and many short ones: static cyclic
        // piles shorts behind the long on proc 0's successors; self
        // scheduling gives the long iteration a dedicated processor.
        let mut b = ProgramBuilder::new("skew");
        let v = b.sync_var();
        // Jitter-free skew via distance-1 chain is complex; use DOALL-like
        // behavior (await always pre-advanced with distance > trip_count).
        let p = b
            .doacross(100, 9, |body| {
                body.compute("w", 50).await_var(v, -100).advance(v)
            })
            .build()
            .unwrap();
        let cyclic = run_actual(&p, &test_config()).unwrap();
        let selfsched = run_actual(
            &p,
            &test_config().with_schedule(SchedulePolicy::SelfScheduled),
        )
        .unwrap();
        // 9 iterations, 4 procs: both give ceil(9/4)=3 rounds here; they
        // must at least agree on total iterations and assign differently
        // only if beneficial. Sanity: same iteration count.
        let c: u64 = cyclic.stats.loops[0]
            .per_proc
            .iter()
            .map(|p| p.iterations)
            .sum();
        let s: u64 = selfsched.stats.loops[0]
            .per_proc
            .iter()
            .map(|p| p.iterations)
            .sum();
        assert_eq!(c, 9);
        assert_eq!(s, 9);
    }

    #[test]
    fn static_block_assigns_contiguous_chunks() {
        let p = doacross_program(8, 1000, 1, 0);
        let r = run_actual(
            &p,
            &test_config().with_schedule(SchedulePolicy::StaticBlock),
        )
        .unwrap();
        let assign = &r.stats.loops[0].assignment;
        assert_eq!(
            assign.iter().map(|p| p.0).collect::<Vec<_>>(),
            vec![0, 0, 1, 1, 2, 2, 3, 3]
        );
    }

    #[test]
    fn barrier_waits_accounted() {
        // Unbalanced DOALL: 5 iterations on 4 procs; proc 0 runs 2, the
        // rest run 1 and wait at the barrier.
        let p = ProgramBuilder::new("unbalanced")
            .doall(5, |b| b.compute("x", 100))
            .build()
            .unwrap();
        let r = run_actual(&p, &test_config()).unwrap();
        let st = &r.stats.loops[0];
        assert_eq!(st.per_proc[0].iterations, 2);
        assert_eq!(st.per_proc[0].barrier_wait, Span::ZERO);
        assert_eq!(st.per_proc[1].barrier_wait, Span::from_nanos(100));
    }

    #[test]
    fn zero_processors_rejected() {
        let p = doacross_program(4, 1, 1, 1);
        let mut cfg = test_config();
        cfg.processors = 0;
        assert_eq!(run_actual(&p, &cfg), Err(SimError::NoProcessors));
    }

    #[test]
    fn invalid_program_rejected() {
        let mut b = ProgramBuilder::new("bad");
        let v = b.sync_var();
        // Build manually to bypass builder validation.
        let program = Program {
            name: "bad".into(),
            segments: vec![Segment::Serial(vec![Statement::advance(
                ppa_trace::StatementId(0),
                "adv",
                v,
            )])],
        };
        assert!(matches!(
            run_actual(&program, &test_config()),
            Err(SimError::Program(_))
        ));
    }

    #[test]
    fn two_concurrent_loops_in_sequence() {
        let mut b = ProgramBuilder::new("two-loops");
        let v1 = b.sync_var();
        let v2 = b.sync_var();
        let p = b
            .doacross(1, 8, |body| {
                body.compute("a", 100).await_var(v1, -1).advance(v1)
            })
            .serial([("between", 500u64)])
            .doacross(2, 12, |body| {
                body.compute("b", 80).await_var(v2, -2).advance(v2)
            })
            .build()
            .unwrap();
        let r = run_actual(&p, &test_config()).unwrap();
        assert_eq!(r.stats.loops.len(), 2);
        let idx = pair_sync_events(&r.trace).unwrap();
        assert_eq!(idx.advances.len(), 8 + 12);
        assert_eq!(idx.barriers.len(), 2);
        // The second loop starts after the first's barrier and the serial
        // segment.
        assert!(r.stats.loops[1].start > r.stats.loops[0].end);
    }

    #[test]
    fn dispatch_cycles_are_charged_per_iteration() {
        let p = ProgramBuilder::new("dispatch")
            .doall(8, |b| b.compute("x", 100))
            .build()
            .unwrap();
        let mut slow = test_config();
        slow.dispatch_cycles = 25;
        let fast = run_actual(&p, &test_config()).unwrap();
        let charged = run_actual(&p, &slow).unwrap();
        // 2 iterations per processor at 25ns dispatch each: +50ns.
        assert_eq!(
            charged.trace.total_time(),
            fast.trace.total_time() + Span::from_nanos(50)
        );
    }

    #[test]
    fn measured_vector_loop_scales_costs_not_overheads() {
        let p = ProgramBuilder::new("vec-measured")
            .vector_loop(10, 2000, |b| b.compute("x", 100))
            .build()
            .unwrap();
        let cfg = test_config().with_overheads(OverheadSpec::uniform(Span::from_nanos(30)));
        let actual = run_actual(&p, &cfg).unwrap();
        let measured = run_measured(&p, &InstrumentationPlan::full_statements(), &cfg).unwrap();
        // Actual: 10 iterations at 50ns (2x speedup). Measured adds the
        // full 30ns recording per statement (overhead is not vectorized)
        // plus markers (program begin/end + loop begin/end at 30ns each).
        assert_eq!(actual.trace.total_time(), Span::from_nanos(500));
        assert_eq!(
            measured.trace.total_time(),
            Span::from_nanos(500 + 10 * 30 + 2 * 30 + 30)
        );
    }

    #[test]
    fn fewer_iterations_than_processors() {
        let mut b = ProgramBuilder::new("tiny");
        let v = b.sync_var();
        let p = b
            .doacross(1, 2, |body| {
                body.compute("x", 50).await_var(v, -1).advance(v)
            })
            .build()
            .unwrap();
        let r = run_actual(&p, &test_config()).unwrap();
        let st = &r.stats.loops[0];
        assert_eq!(st.per_proc[0].iterations, 1);
        assert_eq!(st.per_proc[1].iterations, 1);
        assert_eq!(st.per_proc[2].iterations, 0);
        assert_eq!(st.per_proc[3].iterations, 0);
        // Idle processors still synchronize at the barrier.
        assert!(st.per_proc[2].barrier_wait > Span::ZERO);
    }

    #[test]
    fn instrumentation_reduces_blocking_when_cs_unobservable() {
        // The Table 1 mechanism for loops 3/4: cs is unobservable, so
        // statement instrumentation lengthens only the independent phase;
        // waiting decreases in the measured run.
        let mut b = ProgramBuilder::new("mech34");
        let v = b.sync_var();
        let p = b
            .doacross(1, 64, |body| {
                body.compute("h1", 20)
                    .compute("h2", 20)
                    .await_var(v, -1)
                    .compute_unobservable("cs", 30)
                    .advance(v)
                    .compute("t1", 20)
            })
            .build()
            .unwrap();
        let cfg = test_config().with_overheads(OverheadSpec {
            statement_event: Span::from_nanos(40),
            ..OverheadSpec::ZERO
        });
        let actual = run_actual(&p, &cfg).unwrap();
        let measured = run_measured(&p, &InstrumentationPlan::full_statements(), &cfg).unwrap();
        let wait = |r: &SimResult| -> Span {
            r.stats.loops[0]
                .per_proc
                .iter()
                .map(|ps| ps.sync_wait)
                .sum()
        };
        assert!(
            wait(&measured) < wait(&actual),
            "measured wait {} should drop below actual {}",
            wait(&measured),
            wait(&actual)
        );
    }

    #[test]
    fn instrumentation_increases_blocking_when_cs_observable() {
        // The Table 1 mechanism for loop 17: a large observable cs gains
        // tracing code, lengthening the serialized chain.
        let mut b = ProgramBuilder::new("mech17");
        let v = b.sync_var();
        let p = b
            .doacross(1, 64, |body| {
                body.compute("h", 200)
                    .await_var(v, -1)
                    .compute("cs1", 30)
                    .compute("cs2", 30)
                    .compute("cs3", 30)
                    .advance(v)
            })
            .build()
            .unwrap();
        let cfg = test_config().with_overheads(OverheadSpec {
            statement_event: Span::from_nanos(40),
            ..OverheadSpec::ZERO
        });
        let actual = run_actual(&p, &cfg).unwrap();
        let measured = run_measured(&p, &InstrumentationPlan::full_statements(), &cfg).unwrap();
        let wait = |r: &SimResult| -> Span {
            r.stats.loops[0]
                .per_proc
                .iter()
                .map(|ps| ps.sync_wait)
                .sum()
        };
        assert!(
            wait(&measured) > wait(&actual),
            "measured wait {} should exceed actual {}",
            wait(&measured),
            wait(&actual)
        );
    }
}
