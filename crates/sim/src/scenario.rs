//! Seeded lock/semaphore/fork-join scenario workloads.
//!
//! The statement-graph engine ([`run_measured`](crate::run_measured))
//! covers DOACROSS advance/await programs; the episode extension of
//! §4.2.3 needs measured traces whose blocking comes from *mutual
//! exclusion*, *counting semaphores*, and *fork/join task graphs*
//! instead. This module generates them directly: a small deterministic
//! resource simulation stamps every event under the measured-trace
//! ordering convention — an enabling event (`lockR`, `semV`, `taskF`
//! spawn, `taskJ` child end) is always recorded *before* the blocked
//! event it enables (`lockA`, `semP`, task begin, join-return) — so the
//! result is a well-formed measured trace the differential oracle can
//! feed to all three analysis paths.
//!
//! Everything is a pure function of `(seed, config)`: workload shape,
//! contention pattern, and per-step costs (jittered through
//! [`jittered_cost`](crate::jittered_cost)) are all derived from the
//! seed, so a failing scenario reproduces from one number.

use crate::config::JitterConfig;
use crate::jitter::jittered_cost;
use ppa_trace::{LoopId, OverheadSpec, StatementId, Trace, TraceBuilder};
use std::collections::{HashMap, VecDeque};

/// Which synchronization episode family a scenario exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioFamily {
    /// Every processor loops over acquire → critical section → release
    /// on a small set of contended locks.
    Spinlock,
    /// Producer processors `semV` tokens that consumer processors
    /// `semP`, with matching totals per semaphore.
    Semaphore,
    /// Processor 0 forks one task per worker each round, the workers
    /// run them, and the parent joins them all before the next round.
    ForkJoin,
}

impl ScenarioFamily {
    /// All families, in a fixed order (used to round-robin seeds).
    pub const ALL: [ScenarioFamily; 3] = [
        ScenarioFamily::Spinlock,
        ScenarioFamily::Semaphore,
        ScenarioFamily::ForkJoin,
    ];
}

impl std::fmt::Display for ScenarioFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ScenarioFamily::Spinlock => "spinlock",
            ScenarioFamily::Semaphore => "semaphore",
            ScenarioFamily::ForkJoin => "forkjoin",
        })
    }
}

/// Shape of one generated scenario.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Episode family to generate.
    pub family: ScenarioFamily,
    /// Processor count (clamped to ≥ 2 — every family needs a peer).
    pub processors: usize,
    /// Rounds per processor: critical sections, tokens, or task waves.
    pub rounds: usize,
    /// Distinct locks or semaphores contended over (ignored by
    /// fork/join, which keys episodes by task id).
    pub objects: usize,
    /// Instrumentation overheads charged after each recorded event.
    pub overheads: OverheadSpec,
}

impl ScenarioConfig {
    /// A small default shape for `family`: 4 processors, 6 rounds,
    /// 2 contended objects, Alliant-default overheads.
    pub fn small(family: ScenarioFamily) -> Self {
        ScenarioConfig {
            family,
            processors: 4,
            rounds: 6,
            objects: 2,
            overheads: OverheadSpec::alliant_default(),
        }
    }
}

/// One step of a processor's script.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Compute for a jittered cost; recorded as a statement event.
    Work {
        stmt: u32,
        cost: u64,
    },
    Acquire(u32),
    Release(u32),
    SemP(u32),
    SemV(u32),
    /// Parent-side spawn (first `taskF`).
    Fork(u32),
    /// Child-side begin (second `taskF`); blocked on the spawn.
    Begin(u32),
    /// Child-side end (first `taskJ`).
    End(u32),
    /// Parent-side join-return (second `taskJ`); blocked on the end.
    JoinRet(u32),
}

/// Deterministically generates the measured trace of one scenario.
///
/// The returned trace is totally ordered, honors the enabling-before-
/// blocked recording convention, and closes every episode (no lock held
/// or task unjoined at end of trace), so it passes the structural lint
/// and all three analyzers accept it.
pub fn scenario_trace(seed: u64, cfg: &ScenarioConfig) -> Trace {
    let procs = cfg.processors.max(2);
    let rounds = cfg.rounds.max(1);
    let objects = cfg.objects.max(1) as u32;
    let scripts = match cfg.family {
        ScenarioFamily::Spinlock => spinlock_scripts(seed, procs, rounds, objects),
        ScenarioFamily::Semaphore => semaphore_scripts(seed, procs, rounds, objects),
        ScenarioFamily::ForkJoin => forkjoin_scripts(seed, procs, rounds),
    };
    simulate(seed, &scripts, &cfg.overheads)
}

/// Seeded cost draw: `base ± 30%`, keyed so the same step always costs
/// the same regardless of interleaving.
fn cost(seed: u64, proc: usize, step: u64, base: u64) -> u64 {
    let jitter = JitterConfig {
        seed,
        amplitude_permille: 300,
    };
    jittered_cost(
        Some(jitter),
        LoopId(proc as u32),
        step,
        StatementId(0),
        base,
    )
}

/// Pick-a-resource mixer (SplitMix64 finalizer over the step key).
fn pick(seed: u64, proc: usize, round: usize, modulus: u32) -> u32 {
    let mut z = seed ^ ((proc as u64) << 32 | round as u64);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) % modulus as u64) as u32
}

fn spinlock_scripts(seed: u64, procs: usize, rounds: usize, locks: u32) -> Vec<Vec<Op>> {
    (0..procs)
        .map(|p| {
            let mut ops = Vec::with_capacity(rounds * 4);
            for r in 0..rounds {
                let lock = pick(seed, p, r, locks);
                ops.push(Op::Work {
                    stmt: 1,
                    cost: cost(seed, p, 4 * r as u64, 400),
                });
                ops.push(Op::Acquire(lock));
                ops.push(Op::Work {
                    stmt: 2,
                    cost: cost(seed, p, 4 * r as u64 + 1, 150),
                });
                ops.push(Op::Release(lock));
            }
            ops
        })
        .collect()
}

fn semaphore_scripts(seed: u64, procs: usize, rounds: usize, sems: u32) -> Vec<Vec<Op>> {
    // First half produces, second half consumes; token `t` goes to
    // semaphore `t % sems` on both sides, so per-semaphore V and P
    // counts match exactly and every consumer eventually unblocks.
    let producers = procs.div_ceil(2);
    let consumers = procs - producers;
    let tokens = producers * rounds;
    (0..procs)
        .map(|p| {
            let mut ops = Vec::new();
            if p < producers {
                for (step, t) in (0..tokens).filter(|t| t % producers == p).enumerate() {
                    ops.push(Op::Work {
                        stmt: 1,
                        cost: cost(seed, p, step as u64, 300),
                    });
                    ops.push(Op::SemV(t as u32 % sems));
                }
            } else {
                let c = p - producers;
                for (step, t) in (0..tokens).filter(|t| t % consumers == c).enumerate() {
                    ops.push(Op::SemP(t as u32 % sems));
                    ops.push(Op::Work {
                        stmt: 2,
                        cost: cost(seed, p, step as u64, 250),
                    });
                }
            }
            ops
        })
        .collect()
}

fn forkjoin_scripts(seed: u64, procs: usize, rounds: usize) -> Vec<Vec<Op>> {
    let workers = procs - 1;
    let mut scripts: Vec<Vec<Op>> = vec![Vec::new(); procs];
    for r in 0..rounds {
        // The parent forks every worker's task before joining any, so a
        // wave runs concurrently; task ids are unique across the trace.
        for w in 0..workers {
            let task = (r * workers + w) as u32;
            scripts[0].push(Op::Work {
                stmt: 1,
                cost: cost(seed, 0, 2 * (r * workers + w) as u64, 120),
            });
            scripts[0].push(Op::Fork(task));
            scripts[w + 1].push(Op::Begin(task));
            scripts[w + 1].push(Op::Work {
                stmt: 2,
                cost: cost(seed, w + 1, r as u64, 500),
            });
            scripts[w + 1].push(Op::End(task));
        }
        for w in 0..workers {
            let task = (r * workers + w) as u32;
            scripts[0].push(Op::Work {
                stmt: 3,
                cost: cost(seed, 0, 2 * (r * workers + w) as u64 + 1, 80),
            });
            scripts[0].push(Op::JoinRet(task));
        }
    }
    scripts
}

/// Executes the scripts under a greedy earliest-stamp discrete
/// simulation and records the events. Blocked ops (acquire of a held
/// lock, P of an empty semaphore, begin before spawn, join-return
/// before child end) are simply not runnable until their enabling
/// event has been recorded, which is exactly the measured ordering
/// convention.
fn simulate(seed: u64, scripts: &[Vec<Op>], oh: &OverheadSpec) -> Trace {
    struct ProcSt {
        time: u64,
        next: usize,
    }
    let mut procs: Vec<ProcSt> = scripts
        .iter()
        .enumerate()
        // Seeded start skew so contention order varies across seeds.
        .map(|(p, _)| ProcSt {
            time: pick(seed ^ 0xA5A5, p, 0, 200) as u64,
            next: 0,
        })
        .collect();
    // `None` holder means free; the value is the releasing stamp.
    let mut lock_free: HashMap<u32, u64> = HashMap::new();
    let mut lock_held: HashMap<u32, bool> = HashMap::new();
    let mut sem_tokens: HashMap<u32, VecDeque<u64>> = HashMap::new();
    let mut spawned: HashMap<u32, u64> = HashMap::new();
    let mut ended: HashMap<u32, u64> = HashMap::new();

    let mut b = TraceBuilder::measured();
    loop {
        // Earliest-stamp runnable op; ties break on (arrival, proc) so
        // grants are FIFO in arrival order and fully deterministic.
        let mut best: Option<(u64, u64, usize)> = None;
        for (p, st) in procs.iter().enumerate() {
            let Some(op) = scripts[p].get(st.next) else {
                continue;
            };
            let stamp = match *op {
                Op::Work { .. } | Op::Release(_) | Op::SemV(_) | Op::Fork(_) | Op::End(_) => {
                    Some(st.time)
                }
                Op::Acquire(lock) => (!lock_held.get(&lock).copied().unwrap_or(false))
                    .then(|| st.time.max(lock_free.get(&lock).copied().unwrap_or(0))),
                Op::SemP(sem) => sem_tokens
                    .get(&sem)
                    .and_then(|q| q.front())
                    .map(|&v| st.time.max(v)),
                Op::Begin(task) => spawned.get(&task).map(|&s| st.time.max(s)),
                Op::JoinRet(task) => ended.get(&task).map(|&e| st.time.max(e)),
            };
            if let Some(stamp) = stamp {
                let key = (stamp, st.time, p);
                if best.is_none_or(|k| key < (k.0, k.1, k.2)) {
                    best = Some(key);
                }
            }
        }
        let Some((stamp, _, p)) = best else {
            break;
        };
        let op = scripts[p][procs[p].next];
        procs[p].next += 1;
        b = b.on(p as u16).at(stamp);
        let after = match op {
            Op::Work { stmt, cost } => {
                b = b.stmt(stmt);
                cost + oh.statement_event.as_nanos()
            }
            Op::Acquire(lock) => {
                lock_held.insert(lock, true);
                b = b.lock_acquire(lock);
                oh.await_end_instr.as_nanos()
            }
            Op::Release(lock) => {
                lock_held.insert(lock, false);
                lock_free.insert(lock, stamp);
                b = b.lock_release(lock);
                oh.advance_instr.as_nanos()
            }
            Op::SemP(sem) => {
                sem_tokens
                    .get_mut(&sem)
                    .expect("runnable P has a token")
                    .pop_front();
                b = b.sem_acquire(sem);
                oh.await_end_instr.as_nanos()
            }
            Op::SemV(sem) => {
                sem_tokens.entry(sem).or_default().push_back(stamp);
                b = b.sem_release(sem);
                oh.advance_instr.as_nanos()
            }
            Op::Fork(task) => {
                spawned.insert(task, stamp);
                b = b.task_fork(task);
                oh.advance_instr.as_nanos()
            }
            Op::Begin(task) => {
                b = b.task_fork(task);
                oh.await_end_instr.as_nanos()
            }
            Op::End(task) => {
                ended.insert(task, stamp);
                b = b.task_join(task);
                oh.advance_instr.as_nanos()
            }
            Op::JoinRet(task) => {
                b = b.task_join(task);
                oh.await_end_instr.as_nanos()
            }
        };
        procs[p].time = stamp + after;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_trace::{pair_sync_events, EventKind};

    fn families() -> [ScenarioConfig; 3] {
        ScenarioFamily::ALL.map(ScenarioConfig::small)
    }

    #[test]
    fn scenarios_are_well_formed_measured_traces() {
        for cfg in families() {
            for seed in 0..8 {
                let t = scenario_trace(seed, &cfg);
                assert!(!t.is_empty(), "{} seed {seed} is empty", cfg.family);
                assert!(
                    t.is_totally_ordered(),
                    "{} seed {seed} is not totally ordered",
                    cfg.family
                );
                let idx = pair_sync_events(&t)
                    .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", cfg.family));
                assert!(
                    !idx.episodes.is_empty(),
                    "{} seed {seed} has no episodes",
                    cfg.family
                );
            }
        }
    }

    #[test]
    fn scenarios_are_seed_deterministic() {
        for cfg in families() {
            let a = scenario_trace(42, &cfg);
            let b = scenario_trace(42, &cfg);
            assert_eq!(a.events(), b.events());
            let c = scenario_trace(43, &cfg);
            assert_ne!(a.events(), c.events(), "{}: seed must matter", cfg.family);
        }
    }

    #[test]
    fn enabling_events_precede_blocked_events_in_the_stream() {
        for cfg in families() {
            let t = scenario_trace(7, &cfg);
            let idx = pair_sync_events(&t).unwrap();
            let events = t.events();
            for ep in &idx.episodes {
                if let Some(dep) = ep.dep {
                    assert!(
                        dep < ep.event,
                        "{}: enabling event {dep} recorded after blocked event {}",
                        cfg.family,
                        ep.event
                    );
                    assert!(events[dep].time <= events[ep.event].time);
                }
            }
        }
    }

    #[test]
    fn spinlock_actually_contends() {
        let t = scenario_trace(3, &ScenarioConfig::small(ScenarioFamily::Spinlock));
        let acquires = t
            .iter()
            .filter(|e| matches!(e.kind, EventKind::LockAcquire { .. }))
            .count();
        // 4 procs × 6 rounds, every round one acquire.
        assert_eq!(acquires, 24);
    }
}
