//! An independent event-queue simulation engine.
//!
//! The primary engine (`crate::engine`) exploits the validated program
//! structure to resolve concurrent loops in iteration order. This module
//! implements the same semantics a second, mechanically different way — a
//! classic discrete-event simulation with a priority queue of processor
//! resume events and wake-driven advance/await blocking — and exists to
//! *cross-validate* the primary engine: for every workload the two must
//! produce identical event sets, which the test suite asserts over the
//! synthetic workload space.
//!
//! Keeping both engines honest matters because the whole reproduction
//! rests on the simulator's timing semantics: a bug there would silently
//! re-calibrate every experiment.

use crate::config::{SchedulePolicy, SimConfig};
use crate::engine::{EngineProbes, SimError, SimResult};
use crate::jitter::jittered_cost;
use crate::stats::{LoopStats, ProcStats, SimStats};
use ppa_program::{
    validate, InstrumentationPlan, Loop, LoopKind, Program, Segment, Statement, StatementKind,
};
use ppa_trace::{
    Event, EventKind, LoopId, ProcessorId, Span, SyncTag, SyncVarId, Time, Trace, TraceKind,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Runs the program on the event-queue engine without instrumentation.
pub fn run_actual_eventq(program: &Program, config: &SimConfig) -> Result<SimResult, SimError> {
    EventQ::new(config, None, EngineProbes::noop()).run(program)
}

/// [`run_actual_eventq`] with observability: emitted events, dispatched
/// iterations, and ready-queue depth are recorded into `probes`.
pub fn run_actual_eventq_probed(
    program: &Program,
    config: &SimConfig,
    probes: EngineProbes,
) -> Result<SimResult, SimError> {
    EventQ::new(config, None, probes).run(program)
}

/// Runs the program on the event-queue engine under a plan.
pub fn run_measured_eventq(
    program: &Program,
    plan: &InstrumentationPlan,
    config: &SimConfig,
) -> Result<SimResult, SimError> {
    EventQ::new(config, Some(plan), EngineProbes::noop()).run(program)
}

/// [`run_measured_eventq`] with observability: emitted events, dispatched
/// iterations, and ready-queue depth are recorded into `probes`.
pub fn run_measured_eventq_probed(
    program: &Program,
    plan: &InstrumentationPlan,
    config: &SimConfig,
    probes: EngineProbes,
) -> Result<SimResult, SimError> {
    EventQ::new(config, Some(plan), probes).run(program)
}

struct EventQ<'a> {
    config: &'a SimConfig,
    plan: Option<&'a InstrumentationPlan>,
    events: Vec<Event>,
    seq: u64,
    instr_total: Span,
    stats: SimStats,
    probes: EngineProbes,
}

const SERIAL_LOOP_KEY: LoopId = LoopId(u32::MAX);

/// Per-processor position within a concurrent loop.
#[derive(Debug)]
struct ProcCursor {
    /// Current iteration, if one is being executed.
    iter: Option<u64>,
    /// Next statement index within the body.
    stmt: usize,
    /// Clock.
    clock: Time,
    /// Finished all its work and entered the barrier.
    at_barrier: bool,
}

#[derive(Debug, Default)]
struct VarState {
    /// Advance visibility times per tag.
    advanced: HashMap<i64, Time>,
    /// Processors blocked per tag.
    waiters: HashMap<i64, Vec<usize>>,
}

impl<'a> EventQ<'a> {
    fn new(
        config: &'a SimConfig,
        plan: Option<&'a InstrumentationPlan>,
        probes: EngineProbes,
    ) -> Self {
        EventQ {
            config,
            plan,
            events: Vec::new(),
            seq: 0,
            instr_total: Span::ZERO,
            stats: SimStats::default(),
            probes,
        }
    }

    fn recording(&self, kind: &EventKind, stmt: Option<&Statement>) -> Option<Span> {
        match self.plan {
            None => Some(Span::ZERO),
            Some(plan) => {
                let wanted = match kind {
                    EventKind::Statement { stmt: id } => {
                        stmt.map(|s| s.observable).unwrap_or(true) && plan.traces_statement(*id)
                    }
                    EventKind::IterationBegin { .. } | EventKind::IterationEnd { .. } => {
                        plan.iteration_markers
                    }
                    k if k.is_sync() => plan.sync_ops,
                    k if k.is_barrier() => plan.barriers,
                    _ => plan.markers,
                };
                wanted.then(|| self.config.overheads.instr_overhead(kind))
            }
        }
    }

    fn emit(
        &mut self,
        clock: &mut Time,
        proc: ProcessorId,
        kind: EventKind,
        stmt: Option<&Statement>,
    ) {
        if let Some(overhead) = self.recording(&kind, stmt) {
            *clock += overhead;
            self.instr_total += overhead;
            self.events.push(Event::new(*clock, proc, self.seq, kind));
            self.seq += 1;
            self.probes.events_emitted.inc();
        }
    }

    fn cycles(&self, c: u64) -> Span {
        self.config.clock.cycles(c)
    }

    fn run(mut self, program: &Program) -> Result<SimResult, SimError> {
        validate(program)?;
        if self.config.processors == 0 {
            return Err(SimError::NoProcessors);
        }
        let p0 = ProcessorId(0);
        let mut t0 = Time::ZERO;
        self.emit(&mut t0, p0, EventKind::ProgramBegin, None);

        for seg in &program.segments {
            match seg {
                Segment::Serial(stmts) => {
                    for s in stmts {
                        self.exec_compute(&mut t0, p0, s, SERIAL_LOOP_KEY, 0, 1000);
                    }
                }
                Segment::Loop(l) if !l.kind.is_concurrent() => {
                    let speedup = match l.kind {
                        LoopKind::Vector { speedup_permille } => speedup_permille.max(1),
                        _ => 1000,
                    };
                    self.emit(&mut t0, p0, EventKind::LoopBegin { loop_id: l.id }, None);
                    for i in 0..l.trip_count {
                        self.emit(
                            &mut t0,
                            p0,
                            EventKind::IterationBegin {
                                loop_id: l.id,
                                iter: i,
                            },
                            None,
                        );
                        for s in &l.body {
                            self.exec_compute(&mut t0, p0, s, l.id, i, speedup);
                        }
                        self.emit(
                            &mut t0,
                            p0,
                            EventKind::IterationEnd {
                                loop_id: l.id,
                                iter: i,
                            },
                            None,
                        );
                    }
                    self.emit(&mut t0, p0, EventKind::LoopEnd { loop_id: l.id }, None);
                }
                Segment::Loop(l) => {
                    t0 = self.run_parallel(t0, l)?;
                }
            }
        }

        self.emit(&mut t0, p0, EventKind::ProgramEnd, None);
        self.stats.events = self.events.len();
        self.stats.instr_overhead = self.instr_total;
        let kind = if self.plan.is_some() {
            TraceKind::Measured
        } else {
            TraceKind::Actual
        };
        Ok(SimResult {
            trace: Trace::from_events(kind, self.events),
            stats: self.stats,
        })
    }

    fn exec_compute(
        &mut self,
        clock: &mut Time,
        proc: ProcessorId,
        s: &Statement,
        loop_key: LoopId,
        iter: u64,
        speedup_permille: u32,
    ) {
        let cost = jittered_cost(self.config.jitter, loop_key, iter, s.id, s.cost());
        let cost = if speedup_permille == 1000 {
            cost
        } else {
            (cost as u128 * 1000 / speedup_permille as u128) as u64
        };
        *clock += self.cycles(cost);
        self.emit(clock, proc, EventKind::Statement { stmt: s.id }, Some(s));
    }

    /// The wake-driven parallel loop simulation.
    fn run_parallel(&mut self, mut t0: Time, l: &Loop) -> Result<Time, SimError> {
        let p = self.config.processors;
        let p0 = ProcessorId(0);
        self.emit(&mut t0, p0, EventKind::LoopBegin { loop_id: l.id }, None);
        let loop_start = t0;

        let mut cursors: Vec<ProcCursor> = (0..p)
            .map(|_| ProcCursor {
                iter: None,
                stmt: 0,
                clock: loop_start,
                at_barrier: false,
            })
            .collect();
        let mut proc_stats = vec![ProcStats::default(); p];
        let mut vars: HashMap<SyncVarId, VarState> = HashMap::new();
        let mut assignment: Vec<ProcessorId> = Vec::with_capacity(l.trip_count as usize);
        let mut next_iter = 0u64; // self-scheduling counter
        let mut claimed = vec![0u64; p]; // per-processor claim counters
        let chunk = l.trip_count.div_ceil(p as u64).max(1);

        // Ready queue of runnable processors: (time, proc). The processor
        // id tie-break mirrors the primary engine's deterministic order.
        let mut ready: BinaryHeap<Reverse<(Time, usize)>> =
            (0..p).map(|q| Reverse((loop_start, q))).collect();
        let mut arrived = 0usize;

        while let Some(Reverse((now, q))) = ready.pop() {
            self.probes.queue_depth.observe(ready.len() as u64);
            let mut clock = now.max(cursors[q].clock);
            // Fetch an iteration if idle.
            if cursors[q].iter.is_none() {
                let claim = match self.config.schedule {
                    SchedulePolicy::SelfScheduled => {
                        (next_iter < l.trip_count).then_some(next_iter)
                    }
                    SchedulePolicy::StaticCyclic => {
                        let mine = claimed[q] * p as u64 + q as u64;
                        (mine < l.trip_count).then_some(mine)
                    }
                    SchedulePolicy::StaticBlock => {
                        let mine = q as u64 * chunk + claimed[q];
                        (mine < (q as u64 + 1) * chunk && mine < l.trip_count).then_some(mine)
                    }
                };
                match claim {
                    Some(i) => {
                        // For static policies the claimed iteration may not
                        // be `next_iter`; record assignment sparsely and
                        // densify at the end.
                        if self.config.schedule == SchedulePolicy::SelfScheduled {
                            next_iter += 1;
                        }
                        claimed[q] += 1;
                        while assignment.len() <= i as usize {
                            assignment.push(ProcessorId(u16::MAX));
                        }
                        assignment[i as usize] = ProcessorId(q as u16);
                        cursors[q].iter = Some(i);
                        cursors[q].stmt = 0;
                        clock += self.cycles(self.config.dispatch_cycles);
                        self.emit(
                            &mut clock,
                            ProcessorId(q as u16),
                            EventKind::IterationBegin {
                                loop_id: l.id,
                                iter: i,
                            },
                            None,
                        );
                        proc_stats[q].iterations += 1;
                        self.probes.iterations_dispatched.inc();
                    }
                    None => {
                        // No more work: enter the barrier.
                        cursors[q].at_barrier = true;
                        self.emit(
                            &mut clock,
                            ProcessorId(q as u16),
                            EventKind::BarrierEnter { barrier: l.barrier },
                            None,
                        );
                        cursors[q].clock = clock;
                        arrived += 1;
                        continue;
                    }
                }
            }

            // Execute the body until blocking or iteration end.
            let i = cursors[q].iter.expect("iteration claimed");
            let pid = ProcessorId(q as u16);
            let mut blocked = false;
            while cursors[q].stmt < l.body.len() {
                let s = &l.body[cursors[q].stmt];
                match s.kind {
                    StatementKind::Compute { .. } => {
                        self.exec_compute(&mut clock, pid, s, l.id, i, 1000);
                    }
                    StatementKind::Await { var, offset } => {
                        let tag = SyncTag(i as i64 + offset);
                        // Emit awaitB only on first entry to this await
                        // (re-entry after a wake skips it).
                        let state = vars.entry(var).or_default();
                        let already_waiting = state
                            .waiters
                            .get(&tag.0)
                            .map(|w| w.contains(&q))
                            .unwrap_or(false);
                        if already_waiting {
                            // Woken by the advance, whose visibility time
                            // is `now`. The event-queue engine lets a
                            // processor run ahead of wall time, so the
                            // advance may turn out to predate our awaitB —
                            // in which case the await never really waited.
                            state
                                .waiters
                                .get_mut(&tag.0)
                                .expect("registered")
                                .retain(|&w| w != q);
                            let await_b = cursors[q].clock;
                            if now <= await_b {
                                clock = await_b + self.config.overheads.s_nowait;
                            } else {
                                proc_stats[q].sync_wait += now - await_b;
                                clock = now + self.config.overheads.s_wait;
                            }
                            self.emit(&mut clock, pid, EventKind::AwaitEnd { var, tag }, None);
                        } else {
                            self.emit(&mut clock, pid, EventKind::AwaitBegin { var, tag }, None);
                            let visible = if tag.is_pre_advanced() {
                                Some(clock) // immediately satisfied
                            } else {
                                state.advanced.get(&tag.0).copied()
                            };
                            match visible {
                                Some(v) if v <= clock => {
                                    clock += self.config.overheads.s_nowait;
                                    self.emit(
                                        &mut clock,
                                        pid,
                                        EventKind::AwaitEnd { var, tag },
                                        None,
                                    );
                                }
                                Some(v) => {
                                    // Advance known but in this proc's
                                    // future — cannot happen (advance
                                    // visibility is in the past once
                                    // recorded), treat as wait-until.
                                    proc_stats[q].sync_wait += v.saturating_since(clock);
                                    clock = v + self.config.overheads.s_wait;
                                    self.emit(
                                        &mut clock,
                                        pid,
                                        EventKind::AwaitEnd { var, tag },
                                        None,
                                    );
                                }
                                None => {
                                    // Block: register and stop; the
                                    // advance will reschedule us.
                                    state.waiters.entry(tag.0).or_default().push(q);
                                    cursors[q].clock = clock;
                                    blocked = true;
                                }
                            }
                        }
                    }
                    StatementKind::Advance { var } => {
                        clock += self.config.overheads.advance_op;
                        let visible = clock;
                        let state = vars.entry(var).or_default();
                        state.advanced.insert(i as i64, visible);
                        // Wake waiters: they resume at the visibility time
                        // (their awaitE emission happens on their turn).
                        if let Some(waiters) = state.waiters.get(&(i as i64)) {
                            for &w in waiters {
                                ready.push(Reverse((visible, w)));
                            }
                        }
                        self.emit(
                            &mut clock,
                            pid,
                            EventKind::Advance {
                                var,
                                tag: SyncTag(i as i64),
                            },
                            None,
                        );
                    }
                }
                if blocked {
                    break;
                }
                cursors[q].stmt += 1;
            }

            if blocked {
                continue;
            }

            // Iteration finished.
            self.emit(
                &mut clock,
                pid,
                EventKind::IterationEnd {
                    loop_id: l.id,
                    iter: i,
                },
                None,
            );
            cursors[q].iter = None;
            cursors[q].clock = clock;
            ready.push(Reverse((clock, q)));
        }

        debug_assert_eq!(arrived, p, "all processors reach the barrier");
        if assignment.iter().any(|a| a.0 == u16::MAX) {
            return Err(SimError::UnsatisfiableAwait {
                var: SyncVarId(u32::MAX),
                tag: SyncTag(-1),
            });
        }

        // Barrier release.
        let release = cursors
            .iter()
            .map(|c| c.clock)
            .max()
            .expect("processors > 0");
        for (q, cursor) in cursors.iter_mut().enumerate() {
            proc_stats[q].barrier_wait += release - cursor.clock;
            cursor.clock = release + self.config.overheads.barrier_release;
            let mut clock = cursor.clock;
            self.emit(
                &mut clock,
                ProcessorId(q as u16),
                EventKind::BarrierExit { barrier: l.barrier },
                None,
            );
            cursor.clock = clock;
        }

        for (q, ps) in proc_stats.iter_mut().enumerate() {
            let wall = cursors[q].clock.saturating_since(loop_start);
            ps.busy = wall.saturating_sub(ps.sync_wait + ps.barrier_wait);
        }

        let mut t_end = cursors[0].clock;
        self.emit(&mut t_end, p0, EventKind::LoopEnd { loop_id: l.id }, None);
        self.stats.loops.push(LoopStats {
            loop_id: l.id,
            start: loop_start,
            end: t_end,
            per_proc: proc_stats,
            assignment,
        });
        Ok(t_end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_actual, run_measured};
    use ppa_program::ProgramBuilder;
    use ppa_trace::{ClockRate, OverheadSpec};

    fn cfg(schedule: SchedulePolicy) -> SimConfig {
        SimConfig {
            processors: 4,
            clock: ClockRate::GHZ_1,
            overheads: OverheadSpec::alliant_default(),
            schedule,
            dispatch_cycles: 50,
            jitter: None,
        }
    }

    fn doacross(trip: u64, head: u64, cs: u64, tail: u64) -> Program {
        let mut b = ProgramBuilder::new("xcheck");
        let v = b.sync_var();
        b.serial([("pre", 500u64)])
            .doacross(1, trip, |body| {
                body.compute("head", head)
                    .await_var(v, -1)
                    .compute("cs", cs)
                    .advance(v)
                    .compute("tail", tail)
            })
            .serial([("post", 500u64)])
            .build()
            .unwrap()
    }

    /// Event multiset (time, proc, kind) — seq numbers legitimately differ
    /// between the engines (emission order is an implementation detail).
    fn signature(r: &SimResult) -> Vec<(Time, ProcessorId, EventKind)> {
        let mut v: Vec<_> = r.trace.iter().map(|e| (e.time, e.proc, e.kind)).collect();
        v.sort();
        v
    }

    #[test]
    fn engines_agree_on_blocked_doacross() {
        let p = doacross(64, 100, 400, 50);
        for schedule in [
            SchedulePolicy::StaticCyclic,
            SchedulePolicy::StaticBlock,
            SchedulePolicy::SelfScheduled,
        ] {
            let c = cfg(schedule);
            let a1 = run_actual(&p, &c).unwrap();
            let a2 = run_actual_eventq(&p, &c).unwrap();
            assert_eq!(
                signature(&a1),
                signature(&a2),
                "actual mismatch under {schedule:?}"
            );
            assert_eq!(a1.stats.loops[0].assignment, a2.stats.loops[0].assignment);
        }
    }

    #[test]
    fn engines_agree_on_measured_runs() {
        let p = doacross(48, 800, 60, 120);
        let c = cfg(SchedulePolicy::StaticCyclic);
        let plan = InstrumentationPlan::full_with_sync();
        let m1 = run_measured(&p, &plan, &c).unwrap();
        let m2 = run_measured_eventq(&p, &plan, &c).unwrap();
        assert_eq!(signature(&m1), signature(&m2));
        assert_eq!(m1.stats.instr_overhead, m2.stats.instr_overhead);
    }

    #[test]
    fn engines_agree_on_waiting_stats() {
        let p = doacross(64, 100, 300, 0);
        let c = cfg(SchedulePolicy::StaticCyclic);
        let a1 = run_actual(&p, &c).unwrap();
        let a2 = run_actual_eventq(&p, &c).unwrap();
        for (s1, s2) in a1.stats.loops[0]
            .per_proc
            .iter()
            .zip(&a2.stats.loops[0].per_proc)
        {
            assert_eq!(s1.sync_wait, s2.sync_wait);
            assert_eq!(s1.barrier_wait, s2.barrier_wait);
            assert_eq!(s1.iterations, s2.iterations);
        }
    }

    #[test]
    fn engines_agree_with_jitter() {
        let p = doacross(96, 350, 90, 40);
        let c = cfg(SchedulePolicy::SelfScheduled).with_jitter(77, 300);
        let a1 = run_actual(&p, &c).unwrap();
        let a2 = run_actual_eventq(&p, &c).unwrap();
        assert_eq!(signature(&a1), signature(&a2));
    }

    #[test]
    fn eventq_rejects_what_engine_rejects() {
        let p = doacross(4, 1, 1, 1);
        let mut c = cfg(SchedulePolicy::StaticCyclic);
        c.processors = 0;
        assert_eq!(run_actual_eventq(&p, &c), Err(SimError::NoProcessors));
    }
}
