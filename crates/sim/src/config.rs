//! Simulator configuration.

use ppa_trace::{ClockRate, OverheadSpec};
use serde::{Deserialize, Serialize};

/// How iterations of a concurrent loop are handed to processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SchedulePolicy {
    /// Iteration `i` runs on processor `i mod P` — the Alliant
    /// concurrency-bus dispatch for simple concurrent loops, and the
    /// default everywhere.
    #[default]
    StaticCyclic,
    /// Iterations are split into `ceil(n/P)` contiguous blocks, block `b`
    /// on processor `b`.
    StaticBlock,
    /// A processor takes the next undispatched iteration the moment it
    /// becomes idle. Instrumentation can change the resulting
    /// iteration-to-processor mapping — the work-reassignment effect the
    /// paper's §4.2.3 discusses as invisible to conservative analysis.
    SelfScheduled,
}

/// Per-statement execution-time jitter.
///
/// Real machines perturb statement costs through memory and bus
/// contention; the simulator models that with a deterministic,
/// *schedule-independent* jitter: the cost of statement `s` in iteration
/// `i` of loop `l` is scaled by a factor drawn from a hash of
/// `(seed, l, i, s)`. Because the draw ignores simulation state, the same
/// statement execution costs the same in instrumented and uninstrumented
/// runs — jitter perturbs the workload, not the measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JitterConfig {
    /// Seed mixed into every draw.
    pub seed: u64,
    /// Maximum deviation from the nominal cost, in per mille.
    /// `amplitude_permille: 200` scales costs by a factor in [0.8, 1.2].
    pub amplitude_permille: u32,
}

/// Full simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of processors (the FX/80 had 8 computational elements).
    pub processors: usize,
    /// Cycle-to-wall-time conversion.
    pub clock: ClockRate,
    /// Instrumentation and synchronization timing constants.
    pub overheads: OverheadSpec,
    /// Iteration dispatch policy for concurrent loops.
    pub schedule: SchedulePolicy,
    /// Cycles charged to a processor for picking up one iteration
    /// (concurrency-bus dispatch cost).
    pub dispatch_cycles: u64,
    /// Optional statement-cost jitter.
    pub jitter: Option<JitterConfig>,
}

impl SimConfig {
    /// The reproduction's reference machine: 8 processors at the FX/80
    /// clock with the calibrated Alliant overhead set, static-cyclic
    /// dispatch, no jitter.
    pub fn alliant_fx80() -> Self {
        SimConfig {
            processors: 8,
            clock: ClockRate::ALLIANT_FX80,
            overheads: OverheadSpec::alliant_default(),
            schedule: SchedulePolicy::StaticCyclic,
            dispatch_cycles: 6,
            jitter: None,
        }
    }

    /// A single-processor configuration (sequential/vector experiments).
    pub fn uniprocessor() -> Self {
        SimConfig {
            processors: 1,
            ..Self::alliant_fx80()
        }
    }

    /// Replaces the overhead specification.
    pub fn with_overheads(mut self, overheads: OverheadSpec) -> Self {
        self.overheads = overheads;
        self
    }

    /// Replaces the schedule policy.
    pub fn with_schedule(mut self, schedule: SchedulePolicy) -> Self {
        self.schedule = schedule;
        self
    }

    /// Replaces the processor count.
    pub fn with_processors(mut self, processors: usize) -> Self {
        self.processors = processors;
        self
    }

    /// Enables statement-cost jitter.
    pub fn with_jitter(mut self, seed: u64, amplitude_permille: u32) -> Self {
        self.jitter = Some(JitterConfig {
            seed,
            amplitude_permille,
        });
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::alliant_fx80()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_reference_machine() {
        let c = SimConfig::default();
        assert_eq!(c.processors, 8);
        assert_eq!(c.schedule, SchedulePolicy::StaticCyclic);
        assert!(c.jitter.is_none());
    }

    #[test]
    fn builder_helpers() {
        let c = SimConfig::alliant_fx80()
            .with_processors(4)
            .with_schedule(SchedulePolicy::SelfScheduled)
            .with_jitter(42, 100);
        assert_eq!(c.processors, 4);
        assert_eq!(c.schedule, SchedulePolicy::SelfScheduled);
        assert_eq!(
            c.jitter,
            Some(JitterConfig {
                seed: 42,
                amplitude_permille: 100
            })
        );
        assert_eq!(SimConfig::uniprocessor().processors, 1);
    }
}
