//! Deterministic, schedule-independent statement-cost jitter.
//!
//! Costs are perturbed by a pure function of `(seed, loop, iteration,
//! statement)` so that the *same* statement execution costs the same
//! regardless of instrumentation, processor assignment, or processing
//! order — the jitter belongs to the workload, not to the measurement.
//! The mixer is SplitMix64 (Steele et al.), whose avalanche behaviour is
//! more than sufficient for cost perturbation.

use crate::config::JitterConfig;
use ppa_trace::{LoopId, StatementId};

/// SplitMix64 finalizer: a single well-mixed 64-bit output per input.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws the jittered cost for one statement execution.
///
/// The scale factor is uniform over
/// `[1 - amplitude, 1 + amplitude]` (amplitude in per mille), applied in
/// integer arithmetic; the result is at least 1 cycle when the nominal
/// cost is nonzero.
pub fn jittered_cost(
    config: Option<JitterConfig>,
    loop_id: LoopId,
    iter: u64,
    stmt: StatementId,
    nominal: u64,
) -> u64 {
    let Some(cfg) = config else { return nominal };
    if nominal == 0 || cfg.amplitude_permille == 0 {
        return nominal;
    }
    let key = splitmix64(
        cfg.seed
            ^ splitmix64((loop_id.0 as u64) << 32 | stmt.0 as u64)
            ^ splitmix64(iter).rotate_left(17),
    );
    let amp = cfg.amplitude_permille as u64;
    // Uniform offset in [0, 2*amp], shifted to [-amp, +amp] per mille.
    let offset = key % (2 * amp + 1);
    let permille = 1000 + offset as i64 - amp as i64;
    let scaled = (nominal as i128 * permille as i128 / 1000) as u64;
    scaled.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: JitterConfig = JitterConfig {
        seed: 7,
        amplitude_permille: 200,
    };

    #[test]
    fn no_config_is_identity() {
        assert_eq!(jittered_cost(None, LoopId(0), 3, StatementId(1), 100), 100);
    }

    #[test]
    fn zero_amplitude_is_identity() {
        let cfg = JitterConfig {
            seed: 7,
            amplitude_permille: 0,
        };
        assert_eq!(
            jittered_cost(Some(cfg), LoopId(0), 3, StatementId(1), 100),
            100
        );
    }

    #[test]
    fn deterministic_per_key() {
        let a = jittered_cost(Some(CFG), LoopId(1), 5, StatementId(2), 1_000);
        let b = jittered_cost(Some(CFG), LoopId(1), 5, StatementId(2), 1_000);
        assert_eq!(a, b);
    }

    #[test]
    fn bounded_by_amplitude() {
        for iter in 0..500 {
            let c = jittered_cost(Some(CFG), LoopId(0), iter, StatementId(0), 1_000);
            assert!((800..=1200).contains(&c), "cost {c} outside +/-20%");
        }
    }

    #[test]
    fn varies_across_iterations() {
        let costs: std::collections::BTreeSet<u64> = (0..100)
            .map(|i| jittered_cost(Some(CFG), LoopId(0), i, StatementId(0), 10_000))
            .collect();
        assert!(
            costs.len() > 20,
            "jitter should spread, got {} distinct values",
            costs.len()
        );
    }

    #[test]
    fn nonzero_nominal_never_drops_to_zero() {
        for i in 0..200 {
            assert!(jittered_cost(Some(CFG), LoopId(0), i, StatementId(0), 1) >= 1);
        }
    }

    #[test]
    fn roughly_centered() {
        let n = 2_000u64;
        let sum: u64 = (0..n)
            .map(|i| jittered_cost(Some(CFG), LoopId(2), i, StatementId(3), 1_000))
            .sum();
        let mean = sum as f64 / n as f64;
        assert!(
            (mean - 1000.0).abs() < 20.0,
            "mean {mean} drifted from nominal"
        );
    }
}
