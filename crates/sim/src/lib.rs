//! # ppa-sim — deterministic multiprocessor simulator
//!
//! A discrete-event simulation of the paper's testbed: an Alliant
//! FX/80-style shared-memory multiprocessor executing statement-graph
//! programs (`ppa-program`) with DOACROSS concurrency, advance/await
//! synchronization, and loop-end barriers.
//!
//! The simulator is the reproduction's replacement for the real machine,
//! and it buys something the paper could not have: [`run_actual`] executes
//! a program **without** instrumentation and still emits every event, so
//! the ground-truth trace and statistics are exactly known; [`run_measured`]
//! executes the *same* program under an instrumentation plan, charging the
//! configured recording overheads, which perturbs timings, blocking, and —
//! for self-scheduled loops — even the iteration-to-processor assignment.
//! Comparing a perturbation analysis of the measured trace against the
//! actual trace is then exact rather than itself a measurement.
//!
//! Everything is deterministic: simulation is single-threaded, ties break
//! on `(time, processor, seq)`, and workload jitter is a pure function of
//! `(seed, loop, iteration, statement)`.

#![warn(missing_docs)]

mod config;
mod engine;
pub mod eventq;
mod jitter;
mod scenario;
mod stats;

pub use config::{JitterConfig, SchedulePolicy, SimConfig};
pub use engine::{
    run_actual, run_actual_probed, run_measured, run_measured_probed, EngineProbes, SimError,
    SimResult,
};
pub use eventq::{
    run_actual_eventq, run_actual_eventq_probed, run_measured_eventq, run_measured_eventq_probed,
};
pub use jitter::jittered_cost;
pub use scenario::{scenario_trace, ScenarioConfig, ScenarioFamily};
pub use stats::{LoopStats, ProcStats, SimStats};

#[cfg(test)]
mod proptests {
    use super::*;
    use ppa_program::{InstrumentationPlan, Program, ProgramBuilder};
    use ppa_trace::{pair_sync_events, ClockRate, OverheadSpec, Span};
    use proptest::prelude::*;

    fn arb_workload() -> impl Strategy<Value = Program> {
        (1u64..3, 1u64..40, 0u64..200, 0u64..80, 0u64..200).prop_map(|(d, n, head, cs, tail)| {
            let mut b = ProgramBuilder::new("prop");
            let v = b.sync_var();
            b.doacross(d, n, |body| {
                body.compute("head", head)
                    .await_var(v, -(d as i64))
                    .compute("cs", cs)
                    .advance(v)
                    .compute("tail", tail)
            })
            .build()
            .unwrap()
        })
    }

    fn arb_config() -> impl Strategy<Value = SimConfig> {
        (
            1usize..9,
            0u64..5_000,
            prop_oneof![
                Just(SchedulePolicy::StaticCyclic),
                Just(SchedulePolicy::StaticBlock),
                Just(SchedulePolicy::SelfScheduled),
            ],
        )
            .prop_map(|(p, oh, schedule)| SimConfig {
                processors: p,
                clock: ClockRate::GHZ_1,
                overheads: OverheadSpec::uniform(Span::from_nanos(oh)),
                schedule,
                dispatch_cycles: 2,
                jitter: None,
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Both run modes always produce totally ordered, sync-valid
        /// traces on arbitrary DOACROSS workloads.
        #[test]
        fn traces_are_always_feasible(p in arb_workload(), cfg in arb_config()) {
            let a = run_actual(&p, &cfg).unwrap();
            prop_assert!(a.trace.is_totally_ordered());
            prop_assert!(pair_sync_events(&a.trace).is_ok());

            let m = run_measured(&p, &InstrumentationPlan::full_with_sync(), &cfg).unwrap();
            prop_assert!(m.trace.is_totally_ordered());
            prop_assert!(pair_sync_events(&m.trace).is_ok());
        }

        /// Instrumentation never speeds a run up, and with zero overheads
        /// measured time equals actual time.
        #[test]
        fn measured_never_faster(p in arb_workload(), cfg in arb_config()) {
            let a = run_actual(&p, &cfg).unwrap();
            let m = run_measured(&p, &InstrumentationPlan::full_with_sync(), &cfg).unwrap();
            prop_assert!(m.trace.total_time() >= a.trace.total_time());

            let zero = SimConfig { overheads: OverheadSpec::ZERO, ..cfg };
            let a0 = run_actual(&p, &zero).unwrap();
            let m0 = run_measured(&p, &InstrumentationPlan::full_with_sync(), &zero).unwrap();
            prop_assert_eq!(a0.trace.total_time(), m0.trace.total_time());
        }

        /// Every iteration is assigned exactly once, to a real processor.
        #[test]
        fn assignment_is_complete(p in arb_workload(), cfg in arb_config()) {
            let r = run_actual(&p, &cfg).unwrap();
            let l = p.loops().next().unwrap();
            let stats = &r.stats.loops[0];
            prop_assert_eq!(stats.assignment.len() as u64, l.trip_count);
            prop_assert!(stats.assignment.iter().all(|q| (q.0 as usize) < cfg.processors));
            let per_proc_total: u64 = stats.per_proc.iter().map(|ps| ps.iterations).sum();
            prop_assert_eq!(per_proc_total, l.trip_count);
        }

        /// The two simulation engines (iteration-ordered and event-queue)
        /// produce identical event sets on arbitrary synthesized
        /// workloads, instrumented or not — the substrate's
        /// cross-validation theorem.
        #[test]
        fn engines_cross_validate(seed in proptest::prelude::any::<u64>(), cfg in arb_config()) {
            let program = ppa_program::synth::synthesize(
                seed,
                &ppa_program::synth::SynthConfig::default(),
            );
            let signature = |r: &SimResult| {
                let mut v: Vec<_> =
                    r.trace.iter().map(|e| (e.time, e.proc, e.kind)).collect();
                v.sort();
                v
            };

            let a1 = run_actual(&program, &cfg).unwrap();
            let a2 = eventq::run_actual_eventq(&program, &cfg).unwrap();
            prop_assert_eq!(signature(&a1), signature(&a2));

            let plan = InstrumentationPlan::full_with_sync();
            let m1 = run_measured(&program, &plan, &cfg).unwrap();
            let m2 = eventq::run_measured_eventq(&program, &plan, &cfg).unwrap();
            prop_assert_eq!(signature(&m1), signature(&m2));
            prop_assert_eq!(m1.stats.instr_overhead, m2.stats.instr_overhead);
        }

        /// The dependence chain is respected in the actual trace: the
        /// advance for tag t always precedes the awaitE for tag t.
        #[test]
        fn dependences_hold(p in arb_workload(), cfg in arb_config()) {
            let r = run_actual(&p, &cfg).unwrap();
            let idx = pair_sync_events(&r.trace).unwrap();
            for pair in &idx.awaits {
                if let Some(adv) = pair.advance {
                    let events = r.trace.events();
                    prop_assert!(events[adv].time <= events[pair.end].time);
                }
            }
        }
    }
}
