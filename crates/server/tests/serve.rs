//! In-process integration tests of the ingest daemon: a full
//! HELLO→DATA→FIN→DONE roundtrip whose report is byte-identical to a
//! direct single-shot analysis, typed quota rejections, graceful
//! shutdown parking a mid-flight session in a checkpoint, resume to
//! completion, and the /metrics + /healthz endpoints.
//!
//! The heavier end-to-end suite (many concurrent OS-process clients,
//! SIGTERM/SIGKILL against a real daemon process) lives in
//! `crates/cli/tests/serve.rs`; these tests exercise the library
//! surface directly.

use ppa_program::{InstrumentationPlan, ProgramBuilder};
use ppa_server::protocol::{
    self, EC_SESSION_BUSY, EC_TENANT_SESSIONS, EC_UNSUPPORTED_VERSION, FT_DATA, FT_HELLO, FT_OK,
};
use ppa_server::{send_trace, ClientError, Quotas, SendOutcome, ServeConfig, Server, Target};
use ppa_sim::{run_measured, SchedulePolicy, SimConfig};
use ppa_trace::{
    AnyTraceReader, AnyTraceWriter, ClockRate, OverheadSpec, StreamProbes, TraceFormat, TraceKind,
};
use std::fs::{self, File};
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

fn tmp(sub: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(sub);
    fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn overheads() -> OverheadSpec {
    OverheadSpec::alliant_default()
}

/// A measured DOACROSS trace, the same workload shape the CLI e2e
/// tests use, written as `ppa-trace-v1` JSONL.
fn measured_jsonl(dir: &Path, name: &str, iters: u64) -> PathBuf {
    let cfg = SimConfig {
        processors: 8,
        clock: ClockRate::GHZ_1,
        overheads: overheads(),
        schedule: SchedulePolicy::SelfScheduled,
        dispatch_cycles: 50,
        jitter: None,
    }
    .with_jitter(7, 150);
    let mut b = ProgramBuilder::new("serve-e2e");
    let v = b.sync_var();
    let program = b
        .doacross(1, iters, |body| {
            body.compute("head", 400)
                .await_var(v, -1)
                .compute("cs", 50)
                .advance(v)
        })
        .build()
        .expect("valid workload");
    let measured = run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg)
        .expect("valid program");
    let path = dir.join(name);
    let file = File::create(&path).expect("create measured trace");
    ppa_trace::write_jsonl(&measured.trace, file).expect("write measured trace");
    path
}

/// The single-shot reference: the same serial pipeline a session runs,
/// straight from file to report, no protocol in between.
fn reference_report(trace: &Path, out: &Path) {
    use ppa_core::{EventBasedAnalyzer, StreamOutput};
    let reader =
        AnyTraceReader::open(BufReader::new(File::open(trace).unwrap())).expect("open trace");
    let expected = reader.expected_events();
    let mut writer = AnyTraceWriter::with_probes(
        File::create(out).unwrap(),
        TraceFormat::Jsonl,
        TraceKind::Approximated,
        expected,
        StreamProbes::noop(),
    )
    .expect("start report");
    let mut analyzer = EventBasedAnalyzer::new(&overheads());
    let drain = |analyzer: &mut EventBasedAnalyzer, writer: &mut AnyTraceWriter<File>| {
        while let Some(o) = analyzer.next_output() {
            if let StreamOutput::Event(e) = o {
                writer.write_event(&e).unwrap();
            }
        }
    };
    for item in reader {
        analyzer.push(item.expect("decode")).expect("analyze");
        drain(&mut analyzer, &mut writer);
    }
    let tail = analyzer.finish().expect("finish");
    for o in &tail.outputs {
        if let StreamOutput::Event(e) = o {
            writer.write_event(e).unwrap();
        }
    }
    let mut inner = writer.finish().expect("finish report");
    inner.flush().expect("flush report");
}

fn serve_config(dir: &Path) -> ServeConfig {
    ServeConfig {
        listen: vec!["127.0.0.1:0".to_string()],
        unix_socket: Some(dir.join("ppa.sock")),
        metrics_listen: Some("127.0.0.1:0".to_string()),
        checkpoint_dir: dir.join("state"),
        quotas: Quotas::default(),
        checkpoint_every: 64,
        idle_timeout: Duration::from_secs(20),
        lenient: false,
        reorder_window: None,
        overheads: overheads(),
        ..ServeConfig::default()
    }
}

struct RunningServer {
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<ppa_server::ServeReport>>,
    tcp: std::net::SocketAddr,
    metrics: Option<std::net::SocketAddr>,
    unix: Option<PathBuf>,
}

impl RunningServer {
    fn start(cfg: ServeConfig) -> RunningServer {
        let unix = cfg.unix_socket.clone();
        let server = Server::bind(cfg).expect("bind server");
        let tcp = server.tcp_addrs()[0];
        let metrics = server.metrics_addr();
        let stop = server.shutdown_flag();
        let handle = std::thread::spawn(move || server.run().expect("serve"));
        RunningServer {
            stop,
            handle: Some(handle),
            tcp,
            metrics,
            unix,
        }
    }

    fn stop(&mut self) -> ppa_server::ServeReport {
        self.stop.store(true, Ordering::Relaxed);
        self.handle
            .take()
            .expect("still running")
            .join()
            .expect("join server")
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut sock = TcpStream::connect(addr).expect("connect metrics");
    write!(
        sock,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut body = String::new();
    sock.read_to_string(&mut body).expect("read response");
    body
}

#[test]
fn roundtrip_over_tcp_and_unix_matches_direct_analysis() {
    let dir = tmp("roundtrip");
    let trace = measured_jsonl(&dir, "measured.jsonl", 256);
    let reference = dir.join("reference.jsonl");
    reference_report(&trace, &reference);

    let mut server = RunningServer::start(serve_config(&dir));
    let outcomes = [
        send_trace(
            &Target::Tcp(server.tcp.to_string()),
            "acme",
            "tcp-run",
            &trace,
            4096, // small frames: many DATA frames per stream
        ),
        send_trace(
            &Target::Unix(server.unix.clone().unwrap()),
            "acme",
            "unix-run",
            &trace,
            ppa_server::DEFAULT_FRAME_BYTES,
        ),
    ];
    for (outcome, stream) in outcomes.into_iter().zip(["tcp-run", "unix-run"]) {
        let SendOutcome::Done {
            resumed_from,
            summary,
        } = outcome.expect("upload succeeds");
        assert_eq!(resumed_from, 0, "{stream}: fresh stream");
        assert!(summary.events > 0, "{stream}: no events analyzed");
        let report = dir
            .join("state")
            .join("acme")
            .join(format!("{stream}.report.jsonl"));
        assert_eq!(
            fs::read(&report).unwrap(),
            fs::read(&reference).unwrap(),
            "{stream}: server report differs from direct analysis"
        );
        // A completed session leaves no resume token behind.
        assert!(!dir
            .join("state")
            .join("acme")
            .join(format!("{stream}.ckpt"))
            .exists());
    }

    let report = server.stop();
    assert_eq!(report.completed, 2);
    assert_eq!(report.failed, 0);
}

#[test]
fn quota_rejections_carry_typed_codes() {
    let dir = tmp("quota");
    let trace = measured_jsonl(&dir, "measured.jsonl", 32);
    let mut cfg = serve_config(&dir);
    cfg.quotas.tenant_max_sessions = 1;
    let server = RunningServer::start(cfg);

    // Occupy the tenant's one slot with a half-open session.
    let mut held = TcpStream::connect(server.tcp).unwrap();
    protocol::write_frame(
        &mut held,
        FT_HELLO,
        &protocol::encode_hello("solo", "held").unwrap(),
    )
    .unwrap();
    let ok = protocol::read_frame(&mut held).unwrap();
    assert_eq!(ok.ty, FT_OK);

    // Same tenant, second stream: over the per-tenant session quota.
    let err = send_trace(
        &Target::Tcp(server.tcp.to_string()),
        "solo",
        "other",
        &trace,
        4096,
    )
    .unwrap_err();
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, EC_TENANT_SESSIONS),
        other => panic!("expected server rejection, got {other}"),
    }

    // Same (tenant, stream) while the first session is live: busy.
    let err = send_trace(
        &Target::Tcp(server.tcp.to_string()),
        "solo",
        "held",
        &trace,
        4096,
    )
    .unwrap_err();
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, EC_SESSION_BUSY),
        other => panic!("expected busy rejection, got {other}"),
    }

    // A different tenant is unaffected.
    send_trace(
        &Target::Tcp(server.tcp.to_string()),
        "other-tenant",
        "run",
        &trace,
        4096,
    )
    .expect("other tenants admit fine");

    // An unknown protocol version is refused before admission.
    let mut sock = TcpStream::connect(server.tcp).unwrap();
    let mut hello = protocol::encode_hello("v", "v").unwrap();
    hello[8] = 99; // version byte
    protocol::write_frame(&mut sock, FT_HELLO, &hello).unwrap();
    let frame = protocol::read_frame(&mut sock).unwrap();
    let (code, _) = protocol::decode_error(&frame.payload).unwrap();
    assert_eq!(code, EC_UNSUPPORTED_VERSION);
    drop(held);
}

#[test]
fn shutdown_parks_sessions_and_resume_is_byte_identical() {
    let dir = tmp("shutdown");
    let trace = measured_jsonl(&dir, "measured.jsonl", 512);
    let reference = dir.join("reference.jsonl");
    reference_report(&trace, &reference);
    let ckpt = dir.join("state").join("acme").join("run.ckpt");
    let report = dir.join("state").join("acme").join("run.report.jsonl");

    // First daemon: send roughly half the trace, no FIN, then shut the
    // daemon down while the connection is still open.
    let mut server = RunningServer::start(serve_config(&dir));
    let bytes = fs::read(&trace).unwrap();
    let mut sock = TcpStream::connect(server.tcp).unwrap();
    protocol::write_frame(
        &mut sock,
        FT_HELLO,
        &protocol::encode_hello("acme", "run").unwrap(),
    )
    .unwrap();
    let ok = protocol::read_frame(&mut sock).unwrap();
    assert_eq!(ok.ty, FT_OK);
    assert_eq!(protocol::decode_ok(&ok.payload).unwrap(), 0);
    protocol::write_frame(&mut sock, FT_DATA, &bytes[..bytes.len() / 2]).unwrap();

    // Let the session decode and analyze the half it has, so the
    // shutdown checkpoint has real state in it.
    let deadline = Instant::now() + Duration::from_secs(10);
    while !report.exists() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(200));
    let run_report = server.stop();
    assert_eq!(run_report.parked, 1, "session should park, not fail");
    assert!(ckpt.exists(), "shutdown must checkpoint the live session");
    let positions = ppa_core::read_checkpoint(&ckpt)
        .expect("valid checkpoint")
        .positions_seen;
    assert!(positions > 0, "checkpoint captured no progress");

    // Second daemon on the same state dir: the same client command,
    // replayed from byte 0, resumes and completes.
    let server2 = RunningServer::start(serve_config(&dir));
    let outcome = send_trace(
        &Target::Tcp(server2.tcp.to_string()),
        "acme",
        "run",
        &trace,
        4096,
    )
    .expect("resumed upload succeeds");
    let SendOutcome::Done {
        resumed_from,
        summary,
    } = outcome;
    assert_eq!(resumed_from, positions, "OK must echo the checkpoint cut");
    assert!(summary.events > 0);
    assert!(!ckpt.exists(), "completion must delete the checkpoint");
    assert_eq!(
        fs::read(&report).unwrap(),
        fs::read(&reference).unwrap(),
        "resumed report differs from the uninterrupted analysis"
    );
    drop(sock);
}

#[test]
fn metrics_endpoint_exports_per_tenant_series_and_health() {
    let dir = tmp("metrics");
    let trace = measured_jsonl(&dir, "measured.jsonl", 64);
    let server = RunningServer::start(serve_config(&dir));
    send_trace(
        &Target::Tcp(server.tcp.to_string()),
        "acme",
        "run",
        &trace,
        4096,
    )
    .expect("upload succeeds");

    let metrics_addr = server.metrics.expect("metrics endpoint configured");
    let health = http_get(metrics_addr, "/healthz");
    assert!(health.starts_with("HTTP/1.1 200"), "healthz: {health}");
    assert!(health.ends_with("ok\n"), "healthz body: {health}");

    let scrape = http_get(metrics_addr, "/metrics");
    assert!(scrape.starts_with("HTTP/1.1 200"), "metrics: {scrape}");
    if ppa_obs::ENABLED {
        for series in [
            "ppa_server_connections_total",
            "ppa_server_sessions_started_total{tenant=\"acme\"}",
            "ppa_server_sessions_completed_total{tenant=\"acme\"}",
            "ppa_server_events_total{tenant=\"acme\"}",
            "ppa_server_bytes_total{tenant=\"acme\"}",
        ] {
            let line = scrape
                .lines()
                .find(|l| l.starts_with(series))
                .unwrap_or_else(|| panic!("missing series {series} in scrape:\n{scrape}"));
            let value: f64 = line
                .rsplit(' ')
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("unparseable sample: {line}"));
            assert!(value > 0.0, "series {series} is zero");
        }
    }

    let missing = http_get(metrics_addr, "/nope");
    assert!(missing.starts_with("HTTP/1.1 404"), "404: {missing}");
}

/// Each session leaves a per-session self-trace behind when
/// `self_trace_dir` is set: a valid measured ppa trace of the session's
/// own stages that passes the trace lint, while the shared registry
/// accumulates `ppa_stage_ns_total` from every session.
#[cfg(feature = "obs")]
#[test]
fn sessions_write_self_traces_that_lint_clean() {
    let dir = tmp("selftrace");
    let trace = measured_jsonl(&dir, "measured.jsonl", 128);
    let mut cfg = serve_config(&dir);
    cfg.self_trace_dir = Some(dir.join("traces"));
    let mut server = RunningServer::start(cfg);

    let outcome = send_trace(
        &Target::Tcp(server.tcp.to_string()),
        "acme",
        "traced-run",
        &trace,
        4096,
    );
    assert!(
        matches!(outcome, Ok(SendOutcome::Done { .. })),
        "{outcome:?}"
    );

    // The session publishes its stage totals after the client sees
    // DONE; poll briefly rather than racing the session thread's exit.
    let metrics_addr = server.metrics.expect("metrics listener");
    let deadline = Instant::now() + Duration::from_secs(5);
    let metrics = loop {
        let body = http_get(metrics_addr, "/metrics");
        let published = body
            .lines()
            .any(|l| l.starts_with("ppa_stage_ns_total{stage=\"run\"}") && !l.ends_with(" 0"));
        if published || Instant::now() >= deadline {
            break body;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    server.stop();

    let st = dir
        .join("traces")
        .join("session-000000-acme-traced-run.jsonl");
    let reader = AnyTraceReader::open(BufReader::new(File::open(&st).expect("self-trace written")))
        .expect("open self-trace");
    assert_eq!(reader.kind(), TraceKind::Measured);
    let mut linter = ppa_check::TraceLinter::new();
    let mut events = 0usize;
    for e in reader {
        linter.push(&e.expect("decode self-trace event"));
        events += 1;
    }
    let violations = linter.finish();
    assert!(violations.is_empty(), "self-trace lint: {violations:?}");
    assert!(events >= 2, "at least the session root span is recorded");

    // The session published its stage totals into the shared registry.
    let ingest_ns = metrics
        .lines()
        .find(|l| l.starts_with("ppa_stage_ns_total{stage=\"run\"}"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse::<u64>().ok())
        .expect("run stage series");
    assert!(ingest_ns > 0, "metrics:\n{metrics}");
}
