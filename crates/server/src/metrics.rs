//! Daemon observability: one ppa-obs [`Registry`] for the whole server,
//! with per-tenant labelled series registered lazily on first sight.
//!
//! The registry appends a fresh series on every `counter_with` call, so
//! tenant handles are created once and cached here — re-registering a
//! tenant would duplicate its series in the exported snapshot. All
//! names follow the workspace convention (`ppa_` prefix, counters end
//! in `_total`); OPERATIONS.md documents which of these to alert on.

use ppa_obs::{Counter, Gauge, Registry, StageCounters};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Per-tenant labelled counters (`tenant="..."` on every series).
pub struct TenantMetrics {
    /// `ppa_server_sessions_started_total` — sessions admitted.
    pub sessions: Counter,
    /// `ppa_server_sessions_completed_total` — sessions that reached
    /// `DONE`.
    pub completed: Counter,
    /// `ppa_server_sessions_resumed_total` — admissions that restored a
    /// checkpoint.
    pub resumed: Counter,
    /// `ppa_server_events_total` — measured events consumed.
    pub events: Counter,
    /// `ppa_server_bytes_total` — trace payload bytes received.
    pub bytes: Counter,
    /// `ppa_server_checkpoints_total` — checkpoint files written.
    pub checkpoints: Counter,
    /// `ppa_server_evictions_total` — sessions evicted (idle or
    /// shutdown) with state checkpointed for resume.
    pub evictions: Counter,
    /// `ppa_server_rejections_total` — `HELLO`s refused by quota.
    pub rejections: Counter,
    /// `ppa_server_throttled_ms_total` — milliseconds sessions slept to
    /// hold the tenant under its events/sec quota (backpressure).
    pub throttled_ms: Counter,
    /// `ppa_server_gaps_total` — decode gaps recorded (lenient mode).
    pub gaps: Counter,
    /// `ppa_server_events_lost_total` — events lost to decode gaps.
    pub events_lost: Counter,
    /// `ppa_server_protocol_errors_total` — `ERROR` frames sent.
    pub errors: Counter,
}

/// The daemon's metric surface. Clone-cheap (shared registry + cache).
#[derive(Clone)]
pub struct ServerMetrics {
    registry: Registry,
    /// `ppa_server_active_sessions` — live sessions right now.
    pub active_sessions: Gauge,
    /// `ppa_server_connections_total` — accepted connections.
    pub connections: Counter,
    /// `ppa_stage_ns_total{stage=...}` — wall-clock time in each
    /// pipeline stage, published by sessions from their span recorders.
    pub stage: Arc<StageCounters>,
    tenants: Arc<Mutex<HashMap<String, Arc<TenantMetrics>>>>,
}

impl ServerMetrics {
    /// A fresh registry with the global series pre-registered.
    pub fn new() -> Self {
        let registry = Registry::new();
        let active_sessions = registry.gauge(
            "ppa_server_active_sessions",
            "Live analysis sessions right now.",
        );
        let connections = registry.counter(
            "ppa_server_connections_total",
            "Connections accepted on the ingest listeners.",
        );
        let stage = Arc::new(StageCounters::register(&registry));
        ServerMetrics {
            registry,
            active_sessions,
            connections,
            stage,
            tenants: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The underlying registry (for the `/metrics` exporter).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The tenant's labelled series, registered on first sight.
    pub fn tenant(&self, tenant: &str) -> Arc<TenantMetrics> {
        let mut map = self.tenants.lock().expect("tenant metrics poisoned");
        if let Some(m) = map.get(tenant) {
            return m.clone();
        }
        let labels = [("tenant", tenant)];
        let c = |name: &str, help: &str| self.registry.counter_with(name, &labels, help);
        let m = Arc::new(TenantMetrics {
            sessions: c(
                "ppa_server_sessions_started_total",
                "Analysis sessions admitted for this tenant.",
            ),
            completed: c(
                "ppa_server_sessions_completed_total",
                "Sessions that ran to DONE for this tenant.",
            ),
            resumed: c(
                "ppa_server_sessions_resumed_total",
                "Admissions that restored a checkpoint for this tenant.",
            ),
            events: c(
                "ppa_server_events_total",
                "Measured events consumed for this tenant.",
            ),
            bytes: c(
                "ppa_server_bytes_total",
                "Trace payload bytes received for this tenant.",
            ),
            checkpoints: c(
                "ppa_server_checkpoints_total",
                "Checkpoint files written for this tenant.",
            ),
            evictions: c(
                "ppa_server_evictions_total",
                "Sessions evicted (idle or shutdown) with state checkpointed.",
            ),
            rejections: c(
                "ppa_server_rejections_total",
                "HELLOs refused by quota for this tenant.",
            ),
            throttled_ms: c(
                "ppa_server_throttled_ms_total",
                "Milliseconds slept to hold the tenant under its events/sec quota.",
            ),
            gaps: c(
                "ppa_server_gaps_total",
                "Decode gaps recorded in lenient mode for this tenant.",
            ),
            events_lost: c(
                "ppa_server_events_lost_total",
                "Events lost to decode gaps for this tenant.",
            ),
            errors: c(
                "ppa_server_protocol_errors_total",
                "ERROR frames sent to this tenant's clients.",
            ),
        });
        map.insert(tenant.to_string(), m.clone());
        m
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_series_register_once() {
        let m = ServerMetrics::new();
        let a = m.tenant("acme");
        let b = m.tenant("acme");
        a.events.add(3);
        // The same underlying series: both handles observe the add.
        assert_eq!(b.events.get(), if ppa_obs::ENABLED { 3 } else { 0 });
        let snapshot = m.registry().snapshot();
        let events_series = snapshot
            .entries
            .iter()
            .filter(|e| e.name == "ppa_server_events_total")
            .count();
        assert_eq!(events_series, if ppa_obs::ENABLED { 1 } else { 0 });
    }
}
