//! One ingest session: the server side of a `(tenant, stream)`
//! connection, from `HELLO` to `DONE`/`ERROR`.
//!
//! A session drives the same fault-tolerant pipeline as `ppa analyze
//! --stream`: socket bytes → [`AnyTraceReader`] (format auto-detected) →
//! optional [`ReorderBuffer`] → checkpointed [`EventBasedAnalyzer`] →
//! JSONL report, with cadence checkpoints to the standard `PPACKPT1`
//! files. Because the steps and the checkpoint bookkeeping mirror the
//! CLI exactly, a session report is byte-identical to a single-shot
//! `ppa analyze --stream` of the same trace with the same flags — the
//! property the e2e suite asserts, including across evictions, SIGTERM,
//! and SIGKILL.
//!
//! Sessions are synchronous and thread-per-stream. Backpressure is the
//! socket itself: a session that is checkpointing, throttled, or slow
//! simply stops reading, bounding per-session buffering at one frame
//! ([`MAX_FRAME_LEN`](crate::protocol::MAX_FRAME_LEN)) plus the kernel
//! socket buffer, and the transport pushes back on the client.

use crate::daemon::ServerCtx;
use crate::protocol::{
    parse_frame_header, write_frame, Hello, ProtocolError, Summary, EC_BAD_TRACE, EC_IDLE_EVICTED,
    EC_INTERNAL, EC_MALFORMED_FRAME, EC_QUOTA_RESIDENT, EC_SHUTTING_DOWN, FRAME_HEADER_LEN,
    FT_DATA, FT_DONE, FT_ERROR, FT_FIN, FT_HELLO, FT_OK,
};
use ppa_core::{
    read_checkpoint, Checkpoint, CheckpointParts, DeltaCheckpointWriter, EventBasedAnalyzer,
    SinkState, StreamOutput,
};
use ppa_trace::{
    AnyTraceReader, AnyTraceWriter, Event, IoError, ReorderBuffer, StreamProbes, Time, TraceFormat,
    TraceGap, TraceKind,
};
use std::fs::{self, File};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How often a blocked socket read wakes up to check the shutdown flag
/// and the idle deadline.
pub const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// How long a response write may block before the peer is declared dead.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Events between resident-quota samples (cheap, but no need per-event).
const RESIDENT_CHECK_EVERY: u64 = 1024;

/// A bidirectional byte stream a session can run over. Both halves of
/// the protocol flow on one socket; the session clones the handle so
/// the trace decoder can own the read side while responses go out the
/// write side.
pub trait SessionStream: Read + Write + Send + Sized + 'static {
    /// Clones the underlying socket handle.
    fn try_clone_stream(&self) -> io::Result<Self>;
    /// Sets the read timeout (the session polls at [`POLL_INTERVAL`]).
    fn set_stream_read_timeout(&self, t: Option<Duration>) -> io::Result<()>;
    /// Sets the write timeout for responses.
    fn set_stream_write_timeout(&self, t: Option<Duration>) -> io::Result<()>;
    /// Half-closes the write side (flushes the final frame to the peer).
    fn shutdown_write(&self) -> io::Result<()>;
}

impl SessionStream for TcpStream {
    fn try_clone_stream(&self) -> io::Result<Self> {
        self.try_clone()
    }
    fn set_stream_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(t)
    }
    fn set_stream_write_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        self.set_write_timeout(t)
    }
    fn shutdown_write(&self) -> io::Result<()> {
        self.shutdown(std::net::Shutdown::Write)
    }
}

impl SessionStream for UnixStream {
    fn try_clone_stream(&self) -> io::Result<Self> {
        self.try_clone()
    }
    fn set_stream_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(t)
    }
    fn set_stream_write_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        self.set_write_timeout(t)
    }
    fn shutdown_write(&self) -> io::Result<()> {
        self.shutdown(std::net::Shutdown::Write)
    }
}

/// How long a terminal `ERROR` lingers draining the client's in-flight
/// bytes before the socket really closes.
const ERROR_DRAIN: Duration = Duration::from_millis(500);

/// Writes a terminal `ERROR` frame and tears the socket down without a
/// reset. A session that fails mid-upload usually still has unread
/// client bytes in the kernel receive buffer; closing then makes TCP
/// reset the connection, which can destroy the `ERROR` frame before the
/// client reads it. So: half-close the write side (the frame and the
/// FIN go out), then briefly drain and discard what the client already
/// sent, stopping early once the client saw the error and hung up.
fn send_error<S: SessionStream>(sock: &mut S, code: u16, message: &str) {
    let frame = crate::protocol::encode_error(code, message);
    if write_frame(sock, FT_ERROR, &frame).is_err() {
        return;
    }
    let _ = sock.shutdown_write();
    let _ = sock.set_stream_read_timeout(Some(POLL_INTERVAL));
    let deadline = Instant::now() + ERROR_DRAIN;
    let mut scratch = [0u8; 8192];
    while Instant::now() < deadline {
        match sock.read(&mut scratch) {
            Ok(0) => break, // client closed: the error was deliverable
            Ok(_) => {}     // discard abandoned upload bytes
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(_) => break,
        }
    }
}

/// How a session ended, for the daemon's log line and counters.
#[derive(Debug)]
pub enum SessionEnd {
    /// Ran to `DONE`; the checkpoint (if any) was deleted.
    Completed {
        /// Approximated events in the finished report.
        events: u64,
    },
    /// Idle past the deadline; state checkpointed for resume.
    Evicted,
    /// Daemon shutdown; state checkpointed for resume.
    Shutdown,
    /// The client vanished mid-stream; state checkpointed for resume.
    ClientGone,
    /// Refused before analysis started (handshake or quota).
    Rejected {
        /// The protocol error code sent (or that would have been sent).
        code: u16,
    },
    /// Failed mid-analysis with a typed protocol error.
    Failed {
        /// The protocol error code sent.
        code: u16,
        /// The message sent alongside it.
        message: String,
    },
}

/// A finished session, as reported to the daemon.
#[derive(Debug)]
pub struct SessionOutcome {
    /// The tenant, or `"-"` if the handshake never completed.
    pub tenant: String,
    /// The stream id, or `"-"` if the handshake never completed.
    pub stream: String,
    /// How it ended.
    pub end: SessionEnd,
}

/// Reads exactly `buf.len()` bytes, polling so a blocked read still
/// honors daemon shutdown and the idle deadline. Marker error kinds:
/// `TimedOut` = idle eviction, `ConnectionAborted` = shutdown,
/// `UnexpectedEof` = peer hung up mid-frame.
fn read_exact_polled(
    sock: &mut impl Read,
    ctx: &ServerCtx,
    idle: Duration,
    buf: &mut [u8],
) -> io::Result<()> {
    let mut filled = 0;
    let mut idle_since = Instant::now();
    while filled < buf.len() {
        if ctx.should_stop() {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "daemon is shutting down",
            ));
        }
        match sock.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => {
                filled += n;
                idle_since = Instant::now();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if idle_since.elapsed() >= idle {
                    return Err(io::Error::new(io::ErrorKind::TimedOut, "session idle"));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// One polled read of up to `buf.len()` bytes (at least 1 on success).
fn read_some_polled(
    sock: &mut impl Read,
    ctx: &ServerCtx,
    idle: Duration,
    buf: &mut [u8],
) -> io::Result<usize> {
    let mut idle_since = Instant::now();
    loop {
        if ctx.should_stop() {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "daemon is shutting down",
            ));
        }
        match sock.read(buf) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => return Ok(n),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if idle_since.elapsed() >= idle {
                    return Err(io::Error::new(io::ErrorKind::TimedOut, "session idle"));
                }
                let _ = &mut idle_since;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Reads one complete frame with the polled reader (server side).
fn read_frame_polled(
    sock: &mut impl Read,
    ctx: &ServerCtx,
    idle: Duration,
) -> Result<(u8, Vec<u8>), Fail> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    read_exact_polled(sock, ctx, idle, &mut header).map_err(Fail::from_io)?;
    let (ty, len) = parse_frame_header(&header).map_err(Fail::Protocol)?;
    let mut payload = vec![0u8; len as usize];
    read_exact_polled(sock, ctx, idle, &mut payload).map_err(Fail::from_io)?;
    Ok((ty, payload))
}

/// A `Read` adapter that unwraps the `DATA`/`FIN` framing: the trace
/// decoder reads raw trace bytes from it, and it pulls frames off the
/// socket on demand — so per-session ingest buffering never exceeds one
/// frame. Protocol violations surface as `InvalidData` I/O errors with
/// the typed code parked in the shared `violation` slot.
struct FramePayloadReader<S: SessionStream> {
    sock: S,
    ctx: Arc<ServerCtx>,
    idle: Duration,
    /// Payload bytes left in the current `DATA` frame.
    remaining: u32,
    /// `FIN` seen: all subsequent reads are EOF.
    finished: bool,
    /// Tenant ingest byte counter.
    bytes: ppa_obs::Counter,
    violation: Arc<Mutex<Option<ProtocolError>>>,
}

impl<S: SessionStream> FramePayloadReader<S> {
    fn violate(&self, e: ProtocolError) -> io::Error {
        let msg = e.to_string();
        *self.violation.lock().expect("violation slot poisoned") = Some(e);
        io::Error::new(io::ErrorKind::InvalidData, msg)
    }
}

impl<S: SessionStream> Read for FramePayloadReader<S> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        loop {
            if self.finished {
                return Ok(0);
            }
            if self.remaining == 0 {
                // One span per frame header: this read is where the
                // session waits on the network between frames.
                let _span = ppa_obs::span_enter(ppa_obs::Stage::FrameRead);
                let mut header = [0u8; FRAME_HEADER_LEN];
                read_exact_polled(&mut self.sock, &self.ctx, self.idle, &mut header)?;
                let (ty, len) = parse_frame_header(&header).map_err(|e| self.violate(e))?;
                match ty {
                    FT_DATA => {
                        self.remaining = len;
                        continue; // a zero-length DATA frame is legal
                    }
                    FT_FIN => {
                        if len != 0 {
                            return Err(self.violate(ProtocolError {
                                code: EC_MALFORMED_FRAME,
                                message: "FIN carries a payload".into(),
                            }));
                        }
                        self.finished = true;
                        return Ok(0);
                    }
                    other => {
                        return Err(self.violate(ProtocolError {
                            code: EC_MALFORMED_FRAME,
                            message: format!("unexpected frame type {other:#04x} mid-stream"),
                        }))
                    }
                }
            }
            let want = out.len().min(self.remaining as usize);
            let n = read_some_polled(&mut self.sock, &self.ctx, self.idle, &mut out[..want])?;
            self.remaining -= n as u32;
            self.bytes.add(n as u64);
            return Ok(n);
        }
    }
}

/// A mid-session failure, classified for the response frame.
enum Fail {
    /// Idle past the deadline (checkpoint, `ERROR idle-evicted`).
    Evicted,
    /// Daemon shutdown (checkpoint, `ERROR shutting-down`).
    Shutdown,
    /// Socket died; nobody to respond to (checkpoint silently).
    ClientGone,
    /// The client broke the framing rules.
    Protocol(ProtocolError),
    /// The trace bytes failed decoding or analysis.
    BadTrace(String),
    /// The tenant blew its resident-bytes quota.
    QuotaResident(String),
    /// Server-side failure (checkpoint I/O etc.).
    Internal(String),
}

impl Fail {
    fn from_io(e: io::Error) -> Fail {
        match e.kind() {
            io::ErrorKind::TimedOut => Fail::Evicted,
            io::ErrorKind::ConnectionAborted => Fail::Shutdown,
            _ => Fail::ClientGone,
        }
    }

    /// Classifies a trace-decode error, recovering the parked protocol
    /// violation if the adapter recorded one.
    fn from_decode(e: IoError, violation: &Mutex<Option<ProtocolError>>) -> Fail {
        match e {
            IoError::Io(io) => {
                if io.kind() == io::ErrorKind::InvalidData {
                    if let Some(p) = violation.lock().expect("violation slot poisoned").take() {
                        return Fail::Protocol(p);
                    }
                }
                Fail::from_io(io)
            }
            other => Fail::BadTrace(other.to_string()),
        }
    }

    /// Whether the session's state should be checkpointed for resume.
    fn checkpoint_worthy(&self) -> bool {
        matches!(
            self,
            Fail::Evicted | Fail::Shutdown | Fail::ClientGone | Fail::QuotaResident(_)
        )
    }

    /// The `(code, message)` for the `ERROR` frame; `None` for a dead
    /// peer there is no point responding to.
    fn response(&self) -> Option<(u16, String)> {
        match self {
            Fail::Evicted => Some((
                EC_IDLE_EVICTED,
                "session idle past the eviction deadline; state checkpointed, \
                 reconnect with the same (tenant, stream) to resume"
                    .into(),
            )),
            Fail::Shutdown => Some((
                EC_SHUTTING_DOWN,
                "daemon is shutting down; state checkpointed, reconnect to resume".into(),
            )),
            Fail::ClientGone => None,
            Fail::Protocol(p) => Some((p.code, p.message.clone())),
            Fail::BadTrace(m) => Some((EC_BAD_TRACE, m.clone())),
            Fail::QuotaResident(m) => Some((EC_QUOTA_RESIDENT, m.clone())),
            Fail::Internal(m) => Some((EC_INTERNAL, m.clone())),
        }
    }

    fn end(self) -> SessionEnd {
        match &self {
            Fail::Evicted => SessionEnd::Evicted,
            Fail::Shutdown => SessionEnd::Shutdown,
            Fail::ClientGone => SessionEnd::ClientGone,
            _ => {
                let (code, message) = self.response().expect("typed failure has a response");
                SessionEnd::Failed { code, message }
            }
        }
    }
}

/// Output accounting; the server twin of the CLI's `AnalyzeSink`.
struct ReportSink {
    writer: Option<AnyTraceWriter<File>>,
    events: u64,
    awaits: u64,
    barriers: u64,
    episodes: u64,
    last_time: Time,
}

impl ReportSink {
    fn take(&mut self, o: StreamOutput) -> Result<(), IoError> {
        match o {
            StreamOutput::Event(e) => {
                self.events += 1;
                self.last_time = self.last_time.max(e.time);
                if let Some(w) = &mut self.writer {
                    w.write_event(&e)?;
                }
            }
            StreamOutput::Await { .. } => self.awaits += 1,
            StreamOutput::Barrier { .. } => self.barriers += 1,
            StreamOutput::Episode { .. } => self.episodes += 1,
        }
        Ok(())
    }
}

/// Everything a checkpoint needs, passed explicitly so the cadence
/// path, the eviction path, and the shutdown path write identical
/// snapshots (the property resume correctness rides on). The writer
/// owns the incremental chain (full snapshot vs delta, CRC chain,
/// intern table); this function only assembles the parts.
#[allow(clippy::too_many_arguments)]
fn take_checkpoint(
    ckpt_writer: &mut DeltaCheckpointWriter,
    report_path: &Path,
    analyzer: &mut EventBasedAnalyzer,
    reorder: &Option<ReorderBuffer>,
    sink: &mut ReportSink,
    reader: &AnyTraceReader<FramePayloadReader<impl SessionStream>>,
    base_positions: u64,
    pushed: u64,
    prior_lost: u64,
    prior_gaps: &[TraceGap],
) -> Result<(), String> {
    if let Some(w) = &mut sink.writer {
        w.flush().map_err(|e| format!("flush report: {e}"))?;
    }
    let bytes_flushed = fs::metadata(report_path)
        .map_err(|e| format!("stat report: {e}"))?
        .len();
    let gaps: Vec<TraceGap> = prior_gaps.iter().chain(reader.gaps()).cloned().collect();
    let parts = CheckpointParts {
        positions_seen: base_positions + pushed + reader.events_lost(),
        gaps: &gaps,
        events_lost: prior_lost + reader.events_lost(),
        reorder: reorder.as_ref().map(|b| b.snapshot()),
        sink: SinkState {
            bytes_flushed,
            events: sink.events,
            awaits: sink.awaits,
            barriers: sink.barriers,
            episodes: sink.episodes,
            last_time: sink.last_time,
        },
    };
    ckpt_writer
        .checkpoint(analyzer, parts)
        .map_err(|e| format!("write checkpoint: {e}"))
}

/// Runs one connection to completion. Never panics outward on protocol
/// abuse; every exit path is a typed [`SessionOutcome`].
///
/// The session's own execution is span-recorded (frame reads, ingest
/// chunks, checkpoint writes, the final emit): the stage totals feed
/// `ppa_stage_ns_total` in `/metrics`, and with `--self-trace-dir` the
/// spans are exported as one ppa trace per session.
pub fn run_session<S: SessionStream>(sock: S, ctx: Arc<ServerCtx>) -> SessionOutcome {
    let seq = ctx
        .session_seq
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let recorder = ppa_obs::SpanRecorder::new();
    // Explicit binding: session threads are thread-per-stream, and an
    // explicit bind keeps concurrent sessions' spans in their own
    // recorders (a global install would mix them).
    let bound = recorder.bind_current_thread();
    let outcome = {
        let _run = ppa_obs::span_enter(ppa_obs::Stage::Run);
        session_body(sock, ctx.clone())
    };
    drop(bound);
    ctx.metrics.stage.add_totals(&recorder.stage_totals());
    if let Some(dir) = &ctx.config.self_trace_dir {
        let log = recorder.drain();
        let name = format!(
            "session-{seq:06}-{}-{}.jsonl",
            outcome.tenant, outcome.stream
        );
        let path = dir.join(name);
        let write = || -> Result<ppa_trace::SelfTraceSummary, IoError> {
            let file = File::create(&path)?;
            let mut out = io::BufWriter::new(file);
            ppa_trace::write_self_trace(&mut out, &log, TraceFormat::Jsonl)
        };
        match write() {
            Ok(summary) => ctx.log().debug(
                &format!(
                    "session {}/{} self-trace written ({} spans)",
                    outcome.tenant, outcome.stream, summary.spans
                ),
                "self_trace",
                &[
                    ("tenant", crate::log::LogValue::Str(&outcome.tenant)),
                    ("stream", crate::log::LogValue::Str(&outcome.stream)),
                    ("spans", crate::log::LogValue::U64(summary.spans as u64)),
                ],
            ),
            Err(e) => ctx.log().info(
                &format!(
                    "session {}/{} self-trace write failed: {e}",
                    outcome.tenant, outcome.stream
                ),
                "self_trace_failed",
                &[
                    ("tenant", crate::log::LogValue::Str(&outcome.tenant)),
                    ("stream", crate::log::LogValue::Str(&outcome.stream)),
                    ("error", crate::log::LogValue::Str(&e.to_string())),
                ],
            ),
        }
    }
    outcome
}

fn session_body<S: SessionStream>(sock: S, ctx: Arc<ServerCtx>) -> SessionOutcome {
    ctx.metrics.connections.inc();
    let unknown = |code: u16| SessionOutcome {
        tenant: "-".into(),
        stream: "-".into(),
        end: SessionEnd::Rejected { code },
    };
    if sock.set_stream_read_timeout(Some(POLL_INTERVAL)).is_err()
        || sock.set_stream_write_timeout(Some(WRITE_TIMEOUT)).is_err()
    {
        return unknown(EC_INTERNAL);
    }
    let mut sock = sock;

    // --- HELLO --------------------------------------------------------
    let hello = match read_frame_polled(&mut sock, &ctx, ctx.config.idle_timeout) {
        Ok((FT_HELLO, payload)) => match crate::protocol::decode_hello(&payload) {
            Ok(h) => h,
            Err(e) => {
                send_error(&mut sock, e.code, &e.message);
                return unknown(e.code);
            }
        },
        Ok((ty, _)) => {
            let e = ProtocolError {
                code: EC_MALFORMED_FRAME,
                message: format!("expected HELLO, got frame type {ty:#04x}"),
            };
            send_error(&mut sock, e.code, &e.message);
            return unknown(e.code);
        }
        Err(fail) => {
            if let Some((code, message)) = fail.response() {
                send_error(&mut sock, code, &message);
                return unknown(code);
            }
            return unknown(EC_MALFORMED_FRAME);
        }
    };
    let Hello { tenant, stream } = hello;
    let outcome = |end: SessionEnd| SessionOutcome {
        tenant: tenant.clone(),
        stream: stream.clone(),
        end,
    };
    let tm = ctx.metrics.tenant(&tenant);

    // --- Admission ----------------------------------------------------
    let permit = match ctx.table.admit(&tenant, &stream) {
        Ok(p) => p,
        Err(e) => {
            tm.rejections.inc();
            tm.errors.inc();
            send_error(&mut sock, e.code(), &e.message(ctx.table.quotas()));
            return outcome(SessionEnd::Rejected { code: e.code() });
        }
    };
    tm.sessions.inc();
    ctx.metrics.active_sessions.add(1.0);
    // Decrement the gauge on every exit path.
    struct ActiveGuard(ppa_obs::Gauge);
    impl Drop for ActiveGuard {
        fn drop(&mut self) {
            self.0.add(-1.0);
        }
    }
    let _active = ActiveGuard(ctx.metrics.active_sessions.clone());

    // --- Paths and resume ---------------------------------------------
    let dir = ctx.config.checkpoint_dir.join(&tenant);
    // Ids are charset-restricted by `valid_id`, so these joins cannot
    // escape the checkpoint directory.
    let ckpt_path = dir.join(format!("{stream}.ckpt"));
    let report_path = dir.join(format!("{stream}.report.jsonl"));
    let fail_out = |f: Fail, sock: &mut S, tm: &crate::metrics::TenantMetrics| {
        if let Some((code, message)) = f.response() {
            tm.errors.inc();
            send_error(sock, code, &message);
        }
        outcome(f.end())
    };
    if let Err(e) = fs::create_dir_all(&dir) {
        return fail_out(
            Fail::Internal(format!("cannot create checkpoint dir: {e}")),
            &mut sock,
            &tm,
        );
    }
    let resumed: Option<Checkpoint> = if ckpt_path.exists() {
        match read_checkpoint(&ckpt_path) {
            Ok(cp) => {
                tm.resumed.inc();
                Some(cp)
            }
            Err(e) => {
                return fail_out(
                    Fail::Internal(format!("cannot read checkpoint: {e}")),
                    &mut sock,
                    &tm,
                )
            }
        }
    } else {
        None
    };
    let base_positions = resumed.as_ref().map_or(0, |cp| cp.positions_seen);
    let prior_lost = resumed.as_ref().map_or(0, |cp| cp.events_lost);
    let prior_gaps: Vec<TraceGap> = resumed.as_ref().map_or_else(Vec::new, |cp| cp.gaps.clone());
    // Fresh chain per session: the first cadence write is a full
    // snapshot (atomically replacing any prior session's chain), and
    // later writes within this session append deltas between
    // compactions.
    let mut ckpt_writer =
        DeltaCheckpointWriter::new(&ckpt_path, ctx.config.checkpoint_compact_every);

    if write_frame(
        &mut sock,
        FT_OK,
        &crate::protocol::encode_ok(base_positions),
    )
    .is_err()
    {
        return outcome(SessionEnd::ClientGone);
    }

    // --- Pipeline construction ----------------------------------------
    let violation: Arc<Mutex<Option<ProtocolError>>> = Arc::new(Mutex::new(None));
    let read_half = match sock.try_clone_stream() {
        Ok(s) => s,
        Err(e) => {
            return fail_out(
                Fail::Internal(format!("cannot clone socket: {e}")),
                &mut sock,
                &tm,
            )
        }
    };
    let adapter = FramePayloadReader {
        sock: read_half,
        ctx: ctx.clone(),
        idle: ctx.config.idle_timeout,
        remaining: 0,
        finished: false,
        bytes: tm.bytes.clone(),
        violation: violation.clone(),
    };
    // Blocks until the client's first trace bytes arrive (the format
    // sniff needs 8 bytes), honoring idle/shutdown via the adapter. The
    // protocol streams one way until FIN, so pipelined read-ahead over
    // the socket cannot deadlock: anything decoded but not yet emitted
    // at a park is replayed by the client from `positions_seen`.
    let opened = if ctx.config.decode_workers > 0 {
        AnyTraceReader::open_parallel(adapter, ctx.config.decode_workers)
    } else {
        AnyTraceReader::open(adapter)
    };
    let mut reader = match opened {
        Ok(r) => r,
        Err(e) => return fail_out(Fail::from_decode(e, &violation), &mut sock, &tm),
    };
    if ctx.config.lenient {
        reader.set_lenient(true);
    }
    if base_positions > 0 {
        reader.set_skip_events(base_positions);
    }
    let expected = reader.expected_events();

    let writer = match &resumed {
        Some(cp) => {
            let open = fs::OpenOptions::new().write(true).open(&report_path);
            match open.and_then(|f| f.metadata().map(|m| (f, m.len()))) {
                Ok((f, len)) if len >= cp.sink.bytes_flushed => {
                    let mut f = f;
                    if f.set_len(cp.sink.bytes_flushed).is_err()
                        || f.seek(SeekFrom::End(0)).is_err()
                    {
                        return fail_out(
                            Fail::Internal("cannot truncate report for resume".into()),
                            &mut sock,
                            &tm,
                        );
                    }
                    Some(AnyTraceWriter::resume_jsonl(
                        f,
                        cp.sink.events as usize,
                        StreamProbes::noop(),
                    ))
                }
                Ok((_, len)) => {
                    return fail_out(
                        Fail::Internal(format!(
                            "report is {len} bytes but the checkpoint flushed {}; \
                             wrong or modified report file",
                            cp.sink.bytes_flushed
                        )),
                        &mut sock,
                        &tm,
                    )
                }
                Err(e) => {
                    return fail_out(
                        Fail::Internal(format!("cannot reopen report for resume: {e}")),
                        &mut sock,
                        &tm,
                    )
                }
            }
        }
        None => match File::create(&report_path) {
            Ok(f) => match AnyTraceWriter::with_probes(
                f,
                TraceFormat::Jsonl,
                TraceKind::Approximated,
                expected,
                StreamProbes::noop(),
            ) {
                Ok(w) => Some(w),
                Err(e) => {
                    return fail_out(
                        Fail::Internal(format!("cannot start report: {e}")),
                        &mut sock,
                        &tm,
                    )
                }
            },
            Err(e) => {
                return fail_out(
                    Fail::Internal(format!("cannot create report: {e}")),
                    &mut sock,
                    &tm,
                )
            }
        },
    };
    let mut analyzer = match &resumed {
        Some(cp) => {
            EventBasedAnalyzer::restore_with_probes(&cp.analyzer, ppa_core::AnalyzerProbes::noop())
        }
        None => EventBasedAnalyzer::new(&ctx.config.overheads),
    };
    let mut reorder = match &resumed {
        Some(cp) => cp
            .reorder
            .as_ref()
            .map(ReorderBuffer::restore)
            .or_else(|| ctx.config.reorder_window.map(ReorderBuffer::new)),
        None => ctx.config.reorder_window.map(ReorderBuffer::new),
    };
    let mut sink = ReportSink {
        writer,
        events: resumed.as_ref().map_or(0, |cp| cp.sink.events),
        awaits: resumed.as_ref().map_or(0, |cp| cp.sink.awaits),
        barriers: resumed.as_ref().map_or(0, |cp| cp.sink.barriers),
        episodes: resumed.as_ref().map_or(0, |cp| cp.sink.episodes),
        last_time: resumed.as_ref().map_or(Time::ZERO, |cp| cp.sink.last_time),
    };
    drop(resumed);

    // --- The event loop ------------------------------------------------
    let mut pushed: u64 = 0;
    let mut since_checkpoint: u64 = 0;
    let mut since_resident: u64 = 0;
    let quotas = ctx.table.quotas().clone();
    // Phase 1: the event loop. Only borrows the analyzer, so on a
    // checkpoint-worthy failure (idle, shutdown, vanished client,
    // resident quota) the state is still here to snapshot.
    let loop_result: Result<(), Fail> = (|| {
        // Ingest work is attributed in 4096-event chunk spans (the same
        // granularity as the CLI's push chunks): per-event spans would
        // perturb the pipeline being measured.
        let mut chunk_span: Option<ppa_obs::SpanGuard> = None;
        while let Some(item) = reader.next() {
            if pushed.is_multiple_of(4096) {
                drop(chunk_span.take());
                let mut g = ppa_obs::span_enter(ppa_obs::Stage::Ingest);
                g.attr_seq(pushed);
                chunk_span = Some(g);
            }
            let event = item.map_err(|e| Fail::from_decode(e, &violation))?;
            let sink_err = |e: IoError| Fail::Internal(format!("report write: {e}"));
            match &mut reorder {
                Some(buf) => {
                    buf.push(event);
                    while let Some(e) = buf.pop_ready() {
                        analyzer
                            .push(e)
                            .map_err(|e| Fail::BadTrace(e.to_string()))?;
                        while let Some(o) = analyzer.next_output() {
                            sink.take(o).map_err(sink_err)?;
                        }
                    }
                }
                None => {
                    analyzer
                        .push(event)
                        .map_err(|e| Fail::BadTrace(e.to_string()))?;
                    while let Some(o) = analyzer.next_output() {
                        sink.take(o).map_err(sink_err)?;
                    }
                }
            }
            pushed += 1;
            since_checkpoint += 1;
            since_resident += 1;
            tm.events.inc();

            if quotas.tenant_max_eps > 0 {
                let sleep = ctx.table.throttle(&tenant, 1);
                if !sleep.is_zero() {
                    tm.throttled_ms.add(sleep.as_millis() as u64);
                    std::thread::sleep(sleep);
                }
            }
            if quotas.tenant_max_resident_bytes > 0 && since_resident >= RESIDENT_CHECK_EVERY {
                since_resident = 0;
                let held = analyzer.resident() + reorder.as_ref().map_or(0, ReorderBuffer::len);
                let bytes = (held * std::mem::size_of::<Event>()) as u64;
                if permit.set_resident(bytes) {
                    return Err(Fail::QuotaResident(format!(
                        "tenant resident state exceeds the {}-byte quota \
                         (this session holds ~{bytes} bytes); state checkpointed",
                        quotas.tenant_max_resident_bytes
                    )));
                }
            }
            if since_checkpoint >= ctx.config.checkpoint_every {
                since_checkpoint = 0;
                take_checkpoint(
                    &mut ckpt_writer,
                    &report_path,
                    &mut analyzer,
                    &reorder,
                    &mut sink,
                    &reader,
                    base_positions,
                    pushed,
                    prior_lost,
                    &prior_gaps,
                )
                .map_err(Fail::Internal)?;
                tm.checkpoints.inc();
                ctx.log().debug(
                    &format!("session {tenant}/{stream} checkpointed at {pushed} events"),
                    "checkpoint",
                    &[
                        ("tenant", crate::log::LogValue::Str(&tenant)),
                        ("stream", crate::log::LogValue::Str(&stream)),
                        ("events", crate::log::LogValue::U64(pushed)),
                    ],
                );
            }
            if ctx.should_stop() {
                return Err(Fail::Shutdown);
            }
        }
        Ok(())
    })();

    if let Err(fail) = loop_result {
        tm.gaps.add(reader.gaps().len() as u64);
        tm.events_lost.add(reader.events_lost());
        if fail.checkpoint_worthy() {
            // Parking: the final state snapshot a future session resumes
            // from (idle eviction, shutdown, vanished client, quota).
            let _span = ppa_obs::span_enter(ppa_obs::Stage::Park);
            let ck = take_checkpoint(
                &mut ckpt_writer,
                &report_path,
                &mut analyzer,
                &reorder,
                &mut sink,
                &reader,
                base_positions,
                pushed,
                prior_lost,
                &prior_gaps,
            );
            match ck {
                Ok(()) => {
                    tm.checkpoints.inc();
                    tm.evictions.inc();
                }
                Err(e) => {
                    return fail_out(
                        Fail::Internal(format!("eviction checkpoint failed: {e}")),
                        &mut sock,
                        &tm,
                    )
                }
            }
        }
        return fail_out(fail, &mut sock, &tm);
    }

    // Phase 2: end of input. Drain the reorder tail, finish the
    // analyzer (consuming it — nothing here needs a checkpoint: a
    // failure past FIN is either bad data or a server fault, and the
    // cadence checkpoint from phase 1 still covers resume).
    let result: Result<Summary, Fail> = (|| {
        let _span = ppa_obs::span_enter(ppa_obs::Stage::AnalyzeEmit);
        let sink_err = |e: IoError| Fail::Internal(format!("report write: {e}"));
        if let Some(buf) = &mut reorder {
            let _reorder_span = ppa_obs::span_enter(ppa_obs::Stage::Reorder);
            while let Some(e) = buf.pop_flush() {
                analyzer
                    .push(e)
                    .map_err(|e| Fail::BadTrace(e.to_string()))?;
                while let Some(o) = analyzer.next_output() {
                    sink.take(o).map_err(sink_err)?;
                }
            }
        }
        let tail = if ctx.config.lenient {
            analyzer.finish_lenient()
        } else {
            analyzer
                .finish()
                .map_err(|e| Fail::BadTrace(e.to_string()))?
        };
        for o in &tail.outputs {
            sink.take(*o).map_err(sink_err)?;
        }
        if let Some(w) = sink.writer.take() {
            let mut inner = w
                .finish()
                .map_err(|e| Fail::Internal(format!("finish report: {e}")))?;
            inner
                .flush()
                .map_err(|e| Fail::Internal(format!("flush report: {e}")))?;
        }
        Ok(Summary {
            events: sink.events,
            awaits: sink.awaits,
            barriers: sink.barriers,
            last_time_ns: sink.last_time.as_nanos(),
            gaps: (prior_gaps.len() + reader.gaps().len()) as u64,
            events_lost: prior_lost + reader.events_lost(),
        })
    })();

    tm.gaps.add(reader.gaps().len() as u64);
    tm.events_lost.add(reader.events_lost());

    match result {
        Ok(summary) => {
            // The session is complete: the checkpoint (a resume token)
            // is stale. Delete it so a future HELLO starts fresh.
            match fs::remove_file(&ckpt_path) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => {
                    return fail_out(
                        Fail::Internal(format!("cannot clear checkpoint: {e}")),
                        &mut sock,
                        &tm,
                    )
                }
            }
            tm.completed.inc();
            let _ = write_frame(&mut sock, FT_DONE, &crate::protocol::encode_done(&summary));
            outcome(SessionEnd::Completed {
                events: summary.events,
            })
        }
        Err(fail) => fail_out(fail, &mut sock, &tm),
    }
}
