//! A deliberately tiny HTTP/1.1 responder for the observability
//! endpoints. It serves exactly two paths — `GET /metrics`
//! (Prometheus text exposition from the ppa-obs registry) and `GET
//! /healthz` — closes every connection after one response, and ignores
//! everything else with a 404. It is not a general web server and does
//! not try to be: no keep-alive, no TLS, no request bodies.

use crate::daemon::ServerCtx;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// How often an idle metrics listener checks the shutdown flag.
const POLL: Duration = Duration::from_millis(25);

/// How long one scrape may take before the socket is dropped.
const SCRAPE_TIMEOUT: Duration = Duration::from_secs(5);

/// Accepts scrapes until shutdown. The listener must be non-blocking.
pub(crate) fn serve_metrics(listener: TcpListener, ctx: &Arc<ServerCtx>) {
    while !ctx.should_stop() {
        match listener.accept() {
            Ok((sock, _)) => {
                if let Err(e) = respond(sock, ctx) {
                    ctx.log().info(
                        &format!("metrics scrape failed: {e}"),
                        "scrape_failed",
                        &[("error", crate::log::LogValue::Str(&e.to_string()))],
                    );
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(e) => {
                ctx.log().info(
                    &format!("metrics accept error: {e}"),
                    "metrics_accept_error",
                    &[("error", crate::log::LogValue::Str(&e.to_string()))],
                );
                std::thread::sleep(POLL);
            }
        }
    }
}

fn respond(sock: TcpStream, ctx: &Arc<ServerCtx>) -> std::io::Result<()> {
    sock.set_nonblocking(false)?;
    sock.set_read_timeout(Some(SCRAPE_TIMEOUT))?;
    sock.set_write_timeout(Some(SCRAPE_TIMEOUT))?;
    let mut reader = BufReader::new(sock.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers so well-behaved clients see the response; contents
    // are irrelevant to a fixed two-endpoint server.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    drop(reader);
    let mut sock = sock;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body): (&str, &str, String) = match (method, path) {
        ("GET", "/metrics") => (
            "200 OK",
            "text/plain; version=0.0.4",
            ppa_obs::prometheus_text(&ctx.metrics.registry().snapshot()),
        ),
        ("GET", "/healthz") => ("200 OK", "text/plain", "ok\n".to_string()),
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    write!(
        sock,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    sock.write_all(body.as_bytes())?;
    sock.flush()
}
