//! The long-running `ppa serve` daemon: listeners, accept loops, the
//! shared server context, and graceful shutdown.
//!
//! Lifecycle: [`Server::bind`] claims every socket up front (so `ppa
//! serve` fails fast on a taken port, and tests can bind port 0 and
//! read the real addresses back), then [`Server::run`] accepts until
//! the shutdown flag rises. Each accepted connection gets its own
//! session thread ([`run_session`]); accept loops poll non-blocking so
//! a quiet listener still notices shutdown within ~50 ms.
//!
//! Shutdown is SIGTERM/SIGINT (installed by [`install_signal_handlers`])
//! or the `Arc<AtomicBool>` handed to `run` (used by tests). Either way
//! the daemon stops accepting, every live session checkpoints its
//! analyzer state to a `PPACKPT1` file and answers `ERROR
//! shutting-down`, and `run` joins them all before returning — so a
//! restarted daemon resumes every stream byte-identically. A SIGKILL'd
//! daemon skips the final checkpoint but still resumes from the last
//! cadence checkpoint; clients replay from byte 0 and the server skips
//! what it already counted.

use crate::log::{LogFormat, LogLevel, LogValue, Logger};
use crate::metrics::ServerMetrics;
use crate::quota::{Quotas, SessionTable};
use crate::session::{run_session, SessionEnd, SessionOutcome};
use ppa_trace::OverheadSpec;
use std::io;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How often an idle accept loop checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Everything `ppa serve` is configured with; the CLI builds one of
/// these from flags, tests build them directly.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP ingest addresses to bind (empty = no TCP ingest).
    pub listen: Vec<String>,
    /// Unix-socket ingest path (removed and re-created at bind).
    pub unix_socket: Option<PathBuf>,
    /// HTTP address for `/metrics` and `/healthz` (None = no endpoint).
    pub metrics_listen: Option<String>,
    /// Root of the checkpoint/report tree (one subdirectory per tenant).
    pub checkpoint_dir: PathBuf,
    /// Admission and rate quotas.
    pub quotas: Quotas,
    /// Events between cadence checkpoints in each session.
    pub checkpoint_every: u64,
    /// Deltas between full-snapshot compactions in each session's
    /// incremental checkpoint chain (0 = full snapshots only).
    pub checkpoint_compact_every: usize,
    /// Idle time after which a session is evicted (checkpointed).
    pub idle_timeout: Duration,
    /// Tolerate decode errors and unresolved dependencies (the server
    /// twin of `ppa analyze --lenient`).
    pub lenient: bool,
    /// Reorder-buffer window for out-of-order ingest (None = strict).
    pub reorder_window: Option<u64>,
    /// Decode worker threads per session for binary ingest (0 = decode
    /// serially on the session thread).
    pub decode_workers: usize,
    /// Overhead model applied by every session's analyzer.
    pub overheads: OverheadSpec,
    /// Stderr log record shape (`--log-format`).
    pub log_format: LogFormat,
    /// Stderr verbosity (`--log-level`).
    pub log_level: LogLevel,
    /// Directory for per-session self-traces (`--self-trace-dir`):
    /// every finished session writes its own stage spans there as a
    /// ppa trace (None = no self-tracing).
    pub self_trace_dir: Option<PathBuf>,
    /// Re-export the metrics snapshot to `<checkpoint_dir>/metrics.prom`
    /// at this cadence (`--metrics-every`; None = never).
    pub metrics_every: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: vec!["127.0.0.1:7223".to_string()],
            unix_socket: None,
            metrics_listen: None,
            checkpoint_dir: PathBuf::from("ppa-serve-state"),
            quotas: Quotas::default(),
            checkpoint_every: 1 << 20,
            checkpoint_compact_every: ppa_core::DEFAULT_COMPACT_EVERY,
            idle_timeout: Duration::from_secs(30),
            lenient: false,
            reorder_window: None,
            decode_workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            overheads: OverheadSpec::default(),
            log_format: LogFormat::Text,
            log_level: LogLevel::Info,
            self_trace_dir: None,
            metrics_every: None,
        }
    }
}

/// State shared by every session thread and the accept loops.
pub struct ServerCtx {
    /// The daemon's configuration.
    pub config: ServeConfig,
    /// Live-session registry enforcing the quotas.
    pub table: SessionTable,
    /// The daemon's metric surface (exported at `/metrics`).
    pub metrics: ServerMetrics,
    /// Test-visible shutdown flag; OR'd with the signal flag.
    pub shutdown: Arc<AtomicBool>,
    /// Monotone connection counter; names per-session self-traces.
    pub session_seq: AtomicU64,
}

impl ServerCtx {
    /// Whether the daemon should stop: the programmatic flag or a
    /// delivered SIGTERM/SIGINT.
    pub fn should_stop(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed) || signal_shutdown_requested()
    }

    /// The configured logger (a copyable value, built on demand).
    pub fn log(&self) -> Logger {
        Logger::new(self.config.log_format, self.config.log_level)
    }
}

/// The signal handler's flag. `static` because a signal handler cannot
/// carry context; one daemon per process is the supported shape.
static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_shutdown_signal(_signum: i32) {
    // Only async-signal-safe work here: one atomic store.
    SIGNAL_SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Routes SIGTERM and SIGINT to a flag the accept and session loops
/// poll, instead of the default immediate-death disposition. Uses the
/// raw libc `signal(2)` binding so the workspace stays dependency-free.
pub fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_shutdown_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

/// Whether a shutdown signal has been delivered to this process.
pub fn signal_shutdown_requested() -> bool {
    SIGNAL_SHUTDOWN.load(Ordering::Relaxed)
}

/// Resets the signal flag (tests that run several daemons in-process).
pub fn reset_signal_shutdown() {
    SIGNAL_SHUTDOWN.store(false, Ordering::Relaxed);
}

/// What one daemon run did, returned by [`Server::run`] after shutdown.
#[derive(Debug, Default, Clone)]
pub struct ServeReport {
    /// Connections accepted across all listeners.
    pub connections: u64,
    /// Sessions that ran to `DONE`.
    pub completed: u64,
    /// Sessions checkpointed for later resume (idle, shutdown, or a
    /// vanished client).
    pub parked: u64,
    /// Sessions rejected or failed with a typed error.
    pub failed: u64,
}

/// A bound-but-not-yet-running daemon. Dropping it without calling
/// [`Server::run`] just closes the listeners.
pub struct Server {
    ctx: Arc<ServerCtx>,
    tcp: Vec<TcpListener>,
    unix: Option<(UnixListener, PathBuf)>,
    metrics_http: Option<TcpListener>,
}

impl Server {
    /// Binds every configured listener. Fails fast if any address is
    /// taken or the checkpoint directory cannot be created.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        std::fs::create_dir_all(&config.checkpoint_dir)?;
        if let Some(dir) = &config.self_trace_dir {
            std::fs::create_dir_all(dir)?;
        }
        let mut tcp = Vec::new();
        for addr in &config.listen {
            let l = TcpListener::bind(addr)?;
            l.set_nonblocking(true)?;
            tcp.push(l);
        }
        let unix = match &config.unix_socket {
            Some(path) => {
                // A stale socket file from a SIGKILL'd daemon would make
                // bind fail; connecting to one just gets ECONNREFUSED,
                // so removal is safe.
                match std::fs::remove_file(path) {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                }
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Some((l, path.clone()))
            }
            None => None,
        };
        let metrics_http = match &config.metrics_listen {
            Some(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let table = SessionTable::new(config.quotas.clone());
        let metrics = ServerMetrics::new();
        metrics
            .registry()
            .gauge(
                "ppa_decode_workers",
                "Decode worker threads per session for binary ingest (0 = serial).",
            )
            .set(config.decode_workers as f64);
        let ctx = Arc::new(ServerCtx {
            config,
            table,
            metrics,
            shutdown: Arc::new(AtomicBool::new(false)),
            session_seq: AtomicU64::new(0),
        });
        Ok(Server {
            ctx,
            tcp,
            unix,
            metrics_http,
        })
    }

    /// The bound TCP ingest addresses (resolves port 0 for tests).
    pub fn tcp_addrs(&self) -> Vec<SocketAddr> {
        self.tcp
            .iter()
            .filter_map(|l| l.local_addr().ok())
            .collect()
    }

    /// The bound metrics address, if an endpoint was configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_http.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// The shutdown flag; raise it to stop the daemon programmatically.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        self.ctx.shutdown.clone()
    }

    /// The shared context (tests inspect the table and metrics).
    pub fn ctx(&self) -> Arc<ServerCtx> {
        self.ctx.clone()
    }

    /// Accepts and serves until shutdown, then checkpoints and joins
    /// every live session before returning. Logs one stderr line per
    /// finished session.
    pub fn run(self) -> io::Result<ServeReport> {
        let Server {
            ctx,
            tcp,
            unix,
            metrics_http,
        } = self;
        let sessions: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let report = Arc::new(Mutex::new(ServeReport::default()));
        let mut acceptors = Vec::new();

        for l in tcp {
            let ctx = ctx.clone();
            let sessions = sessions.clone();
            let report = report.clone();
            acceptors.push(std::thread::spawn(move || {
                accept_loop(
                    || match l.accept() {
                        Ok((s, _)) => Some(Ok(s)),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                        Err(e) => Some(Err(e)),
                    },
                    &ctx,
                    &sessions,
                    &report,
                );
            }));
        }
        if let Some((l, _)) = &unix {
            let l = l.try_clone()?;
            let ctx = ctx.clone();
            let sessions = sessions.clone();
            let report = report.clone();
            acceptors.push(std::thread::spawn(move || {
                accept_loop(
                    || match l.accept() {
                        Ok((s, _)) => Some(Ok(s)),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                        Err(e) => Some(Err(e)),
                    },
                    &ctx,
                    &sessions,
                    &report,
                );
            }));
        }
        if let Some(l) = metrics_http {
            let ctx = ctx.clone();
            acceptors.push(std::thread::spawn(move || {
                crate::http::serve_metrics(l, &ctx);
            }));
        }

        // Park until shutdown; the acceptors do the work.
        let mut last_export = Instant::now();
        while !ctx.should_stop() {
            std::thread::sleep(ACCEPT_POLL);
            // Reap finished session threads so a long-lived daemon does
            // not accumulate handles.
            let mut live = sessions.lock().expect("session handles poisoned");
            let mut i = 0;
            while i < live.len() {
                if live[i].is_finished() {
                    let _ = live.swap_remove(i).join();
                } else {
                    i += 1;
                }
            }
            drop(live);
            if let Some(every) = ctx.config.metrics_every {
                if last_export.elapsed() >= every {
                    last_export = Instant::now();
                    export_metrics_snapshot(&ctx);
                }
            }
        }
        ctx.log().info(
            "shutting down, checkpointing live sessions",
            "shutdown",
            &[],
        );
        for a in acceptors {
            let _ = a.join();
        }
        // Sessions observe the flag through their polled reads and
        // checkpoint themselves; joining waits for that to finish.
        let handles = std::mem::take(&mut *sessions.lock().expect("session handles poisoned"));
        for h in handles {
            let _ = h.join();
        }
        if let Some((_, path)) = unix {
            let _ = std::fs::remove_file(path);
        }
        let report = report.lock().expect("serve report poisoned").clone();
        ctx.log().info(
            &format!(
                "stopped ({} connections, {} completed, {} parked, {} failed)",
                report.connections, report.completed, report.parked, report.failed
            ),
            "stopped",
            &[
                ("connections", LogValue::U64(report.connections)),
                ("completed", LogValue::U64(report.completed)),
                ("parked", LogValue::U64(report.parked)),
                ("failed", LogValue::U64(report.failed)),
            ],
        );
        Ok(report)
    }
}

/// Atomically re-exports the metrics snapshot (Prometheus text) to
/// `<checkpoint_dir>/metrics.prom`: tmp + fsync + rename, so a scraper
/// tailing the file never reads a torn snapshot.
fn export_metrics_snapshot(ctx: &ServerCtx) {
    let path = ctx.config.checkpoint_dir.join("metrics.prom");
    let tmp = ctx.config.checkpoint_dir.join("metrics.prom.tmp");
    let text = ppa_obs::prometheus_text(&ctx.metrics.registry().snapshot());
    let write = || -> io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, &path)
    };
    match write() {
        Ok(()) => ctx.log().debug(
            &format!("metrics snapshot exported to {}", path.display()),
            "metrics_export",
            &[("path", LogValue::Str(&path.to_string_lossy()))],
        ),
        Err(e) => ctx.log().info(
            &format!("metrics export failed: {e}"),
            "metrics_export_failed",
            &[("error", LogValue::Str(&e.to_string()))],
        ),
    }
}

/// One listener's accept loop: poll non-blocking accept, spawn a
/// session thread per connection, stop when the flag rises.
fn accept_loop<S: crate::session::SessionStream>(
    mut accept: impl FnMut() -> Option<io::Result<S>>,
    ctx: &Arc<ServerCtx>,
    sessions: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    report: &Arc<Mutex<ServeReport>>,
) {
    while !ctx.should_stop() {
        match accept() {
            None => std::thread::sleep(ACCEPT_POLL),
            Some(Err(e)) => {
                // Transient accept errors (EMFILE, aborted handshakes)
                // should not kill the listener.
                ctx.log().info(
                    &format!("accept error: {e}"),
                    "accept_error",
                    &[("error", LogValue::Str(&e.to_string()))],
                );
                std::thread::sleep(ACCEPT_POLL);
            }
            Some(Ok(sock)) => {
                report.lock().expect("serve report poisoned").connections += 1;
                ctx.log().debug("connection accepted", "accept", &[]);
                let ctx = ctx.clone();
                let report = report.clone();
                let handle = std::thread::spawn(move || {
                    let outcome = run_session(sock, ctx.clone());
                    log_outcome(&ctx.log(), &outcome);
                    let mut r = report.lock().expect("serve report poisoned");
                    match outcome.end {
                        SessionEnd::Completed { .. } => r.completed += 1,
                        SessionEnd::Evicted | SessionEnd::Shutdown | SessionEnd::ClientGone => {
                            r.parked += 1
                        }
                        SessionEnd::Rejected { .. } | SessionEnd::Failed { .. } => r.failed += 1,
                    }
                });
                sessions
                    .lock()
                    .expect("session handles poisoned")
                    .push(handle);
            }
        }
    }
}

fn log_outcome(log: &Logger, o: &SessionOutcome) {
    let session = |extra: &[(&str, LogValue)], text: &str, event: &str| {
        let mut fields: Vec<(&str, LogValue)> = vec![
            ("tenant", LogValue::Str(&o.tenant)),
            ("stream", LogValue::Str(&o.stream)),
        ];
        fields.extend_from_slice(extra);
        log.info(text, event, &fields);
    };
    match &o.end {
        SessionEnd::Completed { events } => session(
            &[("events", LogValue::U64(*events))],
            &format!(
                "session {}/{} completed ({events} events out)",
                o.tenant, o.stream
            ),
            "session_completed",
        ),
        SessionEnd::Evicted => session(
            &[],
            &format!(
                "session {}/{} evicted idle (checkpointed)",
                o.tenant, o.stream
            ),
            "session_evicted",
        ),
        SessionEnd::Shutdown => session(
            &[],
            &format!(
                "session {}/{} parked for shutdown (checkpointed)",
                o.tenant, o.stream
            ),
            "session_parked",
        ),
        SessionEnd::ClientGone => session(
            &[],
            &format!(
                "session {}/{} client vanished (checkpointed)",
                o.tenant, o.stream
            ),
            "session_client_gone",
        ),
        SessionEnd::Rejected { code } => {
            let code_name = crate::protocol::error_code_name(*code);
            session(
                &[("code", LogValue::Str(code_name))],
                &format!("session {}/{} rejected ({code_name})", o.tenant, o.stream),
                "session_rejected",
            )
        }
        SessionEnd::Failed { code, message } => {
            let code_name = crate::protocol::error_code_name(*code);
            session(
                &[
                    ("code", LogValue::Str(code_name)),
                    ("message", LogValue::Str(message)),
                ],
                &format!(
                    "session {}/{} failed ({code_name}): {message}",
                    o.tenant, o.stream
                ),
                "session_failed",
            )
        }
    }
}
