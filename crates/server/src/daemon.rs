//! The long-running `ppa serve` daemon: listeners, accept loops, the
//! shared server context, and graceful shutdown.
//!
//! Lifecycle: [`Server::bind`] claims every socket up front (so `ppa
//! serve` fails fast on a taken port, and tests can bind port 0 and
//! read the real addresses back), then [`Server::run`] accepts until
//! the shutdown flag rises. Each accepted connection gets its own
//! session thread ([`run_session`]); accept loops poll non-blocking so
//! a quiet listener still notices shutdown within ~50 ms.
//!
//! Shutdown is SIGTERM/SIGINT (installed by [`install_signal_handlers`])
//! or the `Arc<AtomicBool>` handed to `run` (used by tests). Either way
//! the daemon stops accepting, every live session checkpoints its
//! analyzer state to a `PPACKPT1` file and answers `ERROR
//! shutting-down`, and `run` joins them all before returning — so a
//! restarted daemon resumes every stream byte-identically. A SIGKILL'd
//! daemon skips the final checkpoint but still resumes from the last
//! cadence checkpoint; clients replay from byte 0 and the server skips
//! what it already counted.

use crate::metrics::ServerMetrics;
use crate::quota::{Quotas, SessionTable};
use crate::session::{run_session, SessionEnd, SessionOutcome};
use ppa_trace::OverheadSpec;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How often an idle accept loop checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Everything `ppa serve` is configured with; the CLI builds one of
/// these from flags, tests build them directly.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP ingest addresses to bind (empty = no TCP ingest).
    pub listen: Vec<String>,
    /// Unix-socket ingest path (removed and re-created at bind).
    pub unix_socket: Option<PathBuf>,
    /// HTTP address for `/metrics` and `/healthz` (None = no endpoint).
    pub metrics_listen: Option<String>,
    /// Root of the checkpoint/report tree (one subdirectory per tenant).
    pub checkpoint_dir: PathBuf,
    /// Admission and rate quotas.
    pub quotas: Quotas,
    /// Events between cadence checkpoints in each session.
    pub checkpoint_every: u64,
    /// Idle time after which a session is evicted (checkpointed).
    pub idle_timeout: Duration,
    /// Tolerate decode errors and unresolved dependencies (the server
    /// twin of `ppa analyze --lenient`).
    pub lenient: bool,
    /// Reorder-buffer window for out-of-order ingest (None = strict).
    pub reorder_window: Option<u64>,
    /// Overhead model applied by every session's analyzer.
    pub overheads: OverheadSpec,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: vec!["127.0.0.1:7223".to_string()],
            unix_socket: None,
            metrics_listen: None,
            checkpoint_dir: PathBuf::from("ppa-serve-state"),
            quotas: Quotas::default(),
            checkpoint_every: 1 << 20,
            idle_timeout: Duration::from_secs(30),
            lenient: false,
            reorder_window: None,
            overheads: OverheadSpec::default(),
        }
    }
}

/// State shared by every session thread and the accept loops.
pub struct ServerCtx {
    /// The daemon's configuration.
    pub config: ServeConfig,
    /// Live-session registry enforcing the quotas.
    pub table: SessionTable,
    /// The daemon's metric surface (exported at `/metrics`).
    pub metrics: ServerMetrics,
    /// Test-visible shutdown flag; OR'd with the signal flag.
    pub shutdown: Arc<AtomicBool>,
}

impl ServerCtx {
    /// Whether the daemon should stop: the programmatic flag or a
    /// delivered SIGTERM/SIGINT.
    pub fn should_stop(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed) || signal_shutdown_requested()
    }
}

/// The signal handler's flag. `static` because a signal handler cannot
/// carry context; one daemon per process is the supported shape.
static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_shutdown_signal(_signum: i32) {
    // Only async-signal-safe work here: one atomic store.
    SIGNAL_SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Routes SIGTERM and SIGINT to a flag the accept and session loops
/// poll, instead of the default immediate-death disposition. Uses the
/// raw libc `signal(2)` binding so the workspace stays dependency-free.
pub fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_shutdown_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

/// Whether a shutdown signal has been delivered to this process.
pub fn signal_shutdown_requested() -> bool {
    SIGNAL_SHUTDOWN.load(Ordering::Relaxed)
}

/// Resets the signal flag (tests that run several daemons in-process).
pub fn reset_signal_shutdown() {
    SIGNAL_SHUTDOWN.store(false, Ordering::Relaxed);
}

/// What one daemon run did, returned by [`Server::run`] after shutdown.
#[derive(Debug, Default, Clone)]
pub struct ServeReport {
    /// Connections accepted across all listeners.
    pub connections: u64,
    /// Sessions that ran to `DONE`.
    pub completed: u64,
    /// Sessions checkpointed for later resume (idle, shutdown, or a
    /// vanished client).
    pub parked: u64,
    /// Sessions rejected or failed with a typed error.
    pub failed: u64,
}

/// A bound-but-not-yet-running daemon. Dropping it without calling
/// [`Server::run`] just closes the listeners.
pub struct Server {
    ctx: Arc<ServerCtx>,
    tcp: Vec<TcpListener>,
    unix: Option<(UnixListener, PathBuf)>,
    metrics_http: Option<TcpListener>,
}

impl Server {
    /// Binds every configured listener. Fails fast if any address is
    /// taken or the checkpoint directory cannot be created.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        std::fs::create_dir_all(&config.checkpoint_dir)?;
        let mut tcp = Vec::new();
        for addr in &config.listen {
            let l = TcpListener::bind(addr)?;
            l.set_nonblocking(true)?;
            tcp.push(l);
        }
        let unix = match &config.unix_socket {
            Some(path) => {
                // A stale socket file from a SIGKILL'd daemon would make
                // bind fail; connecting to one just gets ECONNREFUSED,
                // so removal is safe.
                match std::fs::remove_file(path) {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                }
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Some((l, path.clone()))
            }
            None => None,
        };
        let metrics_http = match &config.metrics_listen {
            Some(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let table = SessionTable::new(config.quotas.clone());
        let metrics = ServerMetrics::new();
        let ctx = Arc::new(ServerCtx {
            config,
            table,
            metrics,
            shutdown: Arc::new(AtomicBool::new(false)),
        });
        Ok(Server {
            ctx,
            tcp,
            unix,
            metrics_http,
        })
    }

    /// The bound TCP ingest addresses (resolves port 0 for tests).
    pub fn tcp_addrs(&self) -> Vec<SocketAddr> {
        self.tcp
            .iter()
            .filter_map(|l| l.local_addr().ok())
            .collect()
    }

    /// The bound metrics address, if an endpoint was configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_http.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// The shutdown flag; raise it to stop the daemon programmatically.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        self.ctx.shutdown.clone()
    }

    /// The shared context (tests inspect the table and metrics).
    pub fn ctx(&self) -> Arc<ServerCtx> {
        self.ctx.clone()
    }

    /// Accepts and serves until shutdown, then checkpoints and joins
    /// every live session before returning. Logs one stderr line per
    /// finished session.
    pub fn run(self) -> io::Result<ServeReport> {
        let Server {
            ctx,
            tcp,
            unix,
            metrics_http,
        } = self;
        let sessions: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let report = Arc::new(Mutex::new(ServeReport::default()));
        let mut acceptors = Vec::new();

        for l in tcp {
            let ctx = ctx.clone();
            let sessions = sessions.clone();
            let report = report.clone();
            acceptors.push(std::thread::spawn(move || {
                accept_loop(
                    || match l.accept() {
                        Ok((s, _)) => Some(Ok(s)),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                        Err(e) => Some(Err(e)),
                    },
                    &ctx,
                    &sessions,
                    &report,
                );
            }));
        }
        if let Some((l, _)) = &unix {
            let l = l.try_clone()?;
            let ctx = ctx.clone();
            let sessions = sessions.clone();
            let report = report.clone();
            acceptors.push(std::thread::spawn(move || {
                accept_loop(
                    || match l.accept() {
                        Ok((s, _)) => Some(Ok(s)),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                        Err(e) => Some(Err(e)),
                    },
                    &ctx,
                    &sessions,
                    &report,
                );
            }));
        }
        if let Some(l) = metrics_http {
            let ctx = ctx.clone();
            acceptors.push(std::thread::spawn(move || {
                crate::http::serve_metrics(l, &ctx);
            }));
        }

        // Park until shutdown; the acceptors do the work.
        while !ctx.should_stop() {
            std::thread::sleep(ACCEPT_POLL);
            // Reap finished session threads so a long-lived daemon does
            // not accumulate handles.
            let mut live = sessions.lock().expect("session handles poisoned");
            let mut i = 0;
            while i < live.len() {
                if live[i].is_finished() {
                    let _ = live.swap_remove(i).join();
                } else {
                    i += 1;
                }
            }
        }
        eprintln!("ppa-serve: shutting down, checkpointing live sessions");
        for a in acceptors {
            let _ = a.join();
        }
        // Sessions observe the flag through their polled reads and
        // checkpoint themselves; joining waits for that to finish.
        let handles = std::mem::take(&mut *sessions.lock().expect("session handles poisoned"));
        for h in handles {
            let _ = h.join();
        }
        if let Some((_, path)) = unix {
            let _ = std::fs::remove_file(path);
        }
        let report = report.lock().expect("serve report poisoned").clone();
        eprintln!(
            "ppa-serve: stopped ({} connections, {} completed, {} parked, {} failed)",
            report.connections, report.completed, report.parked, report.failed
        );
        Ok(report)
    }
}

/// One listener's accept loop: poll non-blocking accept, spawn a
/// session thread per connection, stop when the flag rises.
fn accept_loop<S: crate::session::SessionStream>(
    mut accept: impl FnMut() -> Option<io::Result<S>>,
    ctx: &Arc<ServerCtx>,
    sessions: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    report: &Arc<Mutex<ServeReport>>,
) {
    while !ctx.should_stop() {
        match accept() {
            None => std::thread::sleep(ACCEPT_POLL),
            Some(Err(e)) => {
                // Transient accept errors (EMFILE, aborted handshakes)
                // should not kill the listener.
                eprintln!("ppa-serve: accept error: {e}");
                std::thread::sleep(ACCEPT_POLL);
            }
            Some(Ok(sock)) => {
                report.lock().expect("serve report poisoned").connections += 1;
                let ctx = ctx.clone();
                let report = report.clone();
                let handle = std::thread::spawn(move || {
                    let outcome = run_session(sock, ctx);
                    log_outcome(&outcome);
                    let mut r = report.lock().expect("serve report poisoned");
                    match outcome.end {
                        SessionEnd::Completed { .. } => r.completed += 1,
                        SessionEnd::Evicted | SessionEnd::Shutdown | SessionEnd::ClientGone => {
                            r.parked += 1
                        }
                        SessionEnd::Rejected { .. } | SessionEnd::Failed { .. } => r.failed += 1,
                    }
                });
                sessions
                    .lock()
                    .expect("session handles poisoned")
                    .push(handle);
            }
        }
    }
}

fn log_outcome(o: &SessionOutcome) {
    match &o.end {
        SessionEnd::Completed { events } => eprintln!(
            "ppa-serve: session {}/{} completed ({events} events out)",
            o.tenant, o.stream
        ),
        SessionEnd::Evicted => eprintln!(
            "ppa-serve: session {}/{} evicted idle (checkpointed)",
            o.tenant, o.stream
        ),
        SessionEnd::Shutdown => eprintln!(
            "ppa-serve: session {}/{} parked for shutdown (checkpointed)",
            o.tenant, o.stream
        ),
        SessionEnd::ClientGone => eprintln!(
            "ppa-serve: session {}/{} client vanished (checkpointed)",
            o.tenant, o.stream
        ),
        SessionEnd::Rejected { code } => eprintln!(
            "ppa-serve: session {}/{} rejected ({})",
            o.tenant,
            o.stream,
            crate::protocol::error_code_name(*code)
        ),
        SessionEnd::Failed { code, message } => eprintln!(
            "ppa-serve: session {}/{} failed ({}): {message}",
            o.tenant,
            o.stream,
            crate::protocol::error_code_name(*code)
        ),
    }
}
