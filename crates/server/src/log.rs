//! Leveled, structured logging for the daemon.
//!
//! Two output shapes, both on stderr:
//!
//! - **text** (the default): byte-identical to the historical
//!   `eprintln!` lines — every record renders as `ppa-serve: <text>` —
//!   so operators' greps and the e2e suite's expectations keep working.
//! - **json**: one JSON object per line with `ts`/`level`/`event` plus
//!   the record's structured fields (`tenant`, `stream`, `events`, …),
//!   for log pipelines and `jq`.
//!
//! Levels are `info` (default) and `debug`; `debug` additionally emits
//! per-connection and per-checkpoint chatter. The logger is a two-enum
//! value type — call sites construct it from [`ServeConfig`] via
//! [`crate::ServerCtx::log`] and pass records as a pre-rendered text
//! message plus the fields that produced it.
//!
//! [`ServeConfig`]: crate::ServeConfig

use std::time::{SystemTime, UNIX_EPOCH};

/// Log record shape: legacy human-readable text or JSONL.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LogFormat {
    /// `ppa-serve: <message>` lines (the historical format).
    #[default]
    Text,
    /// One JSON object per line.
    Json,
}

impl LogFormat {
    /// Parses a `--log-format` value.
    pub fn parse(name: &str) -> Option<LogFormat> {
        match name {
            "text" => Some(LogFormat::Text),
            "json" => Some(LogFormat::Json),
            _ => None,
        }
    }
}

/// Verbosity threshold.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Lifecycle and per-session outcome lines.
    #[default]
    Info,
    /// Everything, including per-connection and per-checkpoint lines.
    Debug,
}

impl LogLevel {
    /// Parses a `--log-level` value.
    pub fn parse(name: &str) -> Option<LogLevel> {
        match name {
            "info" => Some(LogLevel::Info),
            "debug" => Some(LogLevel::Debug),
            _ => None,
        }
    }
}

/// A structured field value (strings stay strings in JSON, counts stay
/// numbers).
#[derive(Clone, Copy, Debug)]
pub enum LogValue<'a> {
    /// A string field.
    Str(&'a str),
    /// An unsigned numeric field.
    U64(u64),
}

impl<'a> From<&'a str> for LogValue<'a> {
    fn from(s: &'a str) -> Self {
        LogValue::Str(s)
    }
}

impl From<u64> for LogValue<'_> {
    fn from(n: u64) -> Self {
        LogValue::U64(n)
    }
}

/// The daemon's logger: a copyable (format, level) pair.
#[derive(Clone, Copy, Debug, Default)]
pub struct Logger {
    format: LogFormat,
    level: LogLevel,
}

impl Logger {
    /// A logger with the given shape and threshold.
    pub fn new(format: LogFormat, level: LogLevel) -> Logger {
        Logger { format, level }
    }

    /// Emits an info record (always shown).
    ///
    /// `text` is the full human-readable message (rendered after the
    /// `ppa-serve: ` prefix in text mode); `event` is the stable
    /// machine-readable name used as `event` in JSON mode; `fields`
    /// carry the values `text` interpolated.
    pub fn info(&self, text: &str, event: &str, fields: &[(&str, LogValue)]) {
        self.emit("info", text, event, fields);
    }

    /// Emits a debug record (suppressed unless `--log-level debug`).
    pub fn debug(&self, text: &str, event: &str, fields: &[(&str, LogValue)]) {
        if self.level >= LogLevel::Debug {
            self.emit("debug", text, event, fields);
        }
    }

    fn emit(&self, level: &str, text: &str, event: &str, fields: &[(&str, LogValue)]) {
        match self.format {
            LogFormat::Text => eprintln!("ppa-serve: {text}"),
            LogFormat::Json => {
                let ts = SystemTime::now()
                    .duration_since(UNIX_EPOCH)
                    .map_or(0.0, |d| d.as_secs_f64());
                let mut line = String::with_capacity(128);
                line.push_str(&format!(
                    "{{\"ts\":{ts:.3},\"level\":\"{level}\",\"event\":\"{}\"",
                    json_escape(event)
                ));
                for (key, value) in fields {
                    line.push_str(&format!(",\"{}\":", json_escape(key)));
                    match value {
                        LogValue::Str(s) => {
                            line.push('"');
                            line.push_str(&json_escape(s));
                            line.push('"');
                        }
                        LogValue::U64(n) => line.push_str(&n.to_string()),
                    }
                }
                line.push_str(&format!(",\"msg\":\"{}\"}}", json_escape(text)));
                eprintln!("{line}");
            }
        }
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flag_values() {
        assert_eq!(LogFormat::parse("text"), Some(LogFormat::Text));
        assert_eq!(LogFormat::parse("json"), Some(LogFormat::Json));
        assert_eq!(LogFormat::parse("yaml"), None);
        assert_eq!(LogLevel::parse("info"), Some(LogLevel::Info));
        assert_eq!(LogLevel::parse("debug"), Some(LogLevel::Debug));
        assert_eq!(LogLevel::parse("trace"), None);
    }

    #[test]
    fn debug_is_ordered_above_info() {
        assert!(LogLevel::Debug > LogLevel::Info);
    }

    #[test]
    fn json_escaping_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }
}
