//! # ppa-server — multi-tenant streaming trace ingest
//!
//! The daemon behind `ppa serve`: accepts many concurrent trace
//! uploads over TCP and unix sockets, runs each one through the same
//! checkpointed [`EventBasedAnalyzer`](ppa_core::EventBasedAnalyzer)
//! pipeline as `ppa analyze --stream`, and writes per-stream JSONL
//! reports that are byte-identical to a single-shot batch run.
//!
//! The moving parts:
//!
//! - [`protocol`] — the `PPASERV1` length-prefixed session protocol
//!   (`HELLO`/`DATA`/`FIN` in, `OK`/`DONE`/`ERROR` out), specified
//!   byte-by-byte in `PROTOCOL.md` at the repo root.
//! - [`quota`] — per-tenant admission control: session caps, an
//!   events/sec throttle, and a resident-bytes ceiling.
//! - [`session`] — one connection's life from `HELLO` to
//!   `DONE`/`ERROR`, including cadence checkpoints, idle eviction, and
//!   resume from `PPACKPT1` files.
//! - [`daemon`] — listeners, accept loops, SIGTERM/SIGINT handling,
//!   and the checkpoint-everything graceful shutdown.
//! - `http` (private) — the `/metrics` (Prometheus) and `/healthz`
//!   endpoints.
//! - [`client`] — the uploading side, shared by `ppa send` and tests.
//!
//! Operational guidance (flags, alerts, the kill/restart runbook) lives
//! in `OPERATIONS.md`.

pub mod client;
pub mod daemon;
mod http;
pub mod log;
pub mod metrics;
pub mod protocol;
pub mod quota;
pub mod session;

pub use client::{send_trace, ClientError, SendOutcome, Target, DEFAULT_FRAME_BYTES};
pub use daemon::{
    install_signal_handlers, reset_signal_shutdown, signal_shutdown_requested, ServeConfig,
    ServeReport, Server, ServerCtx,
};
pub use log::{LogFormat, LogLevel, LogValue, Logger};
pub use metrics::{ServerMetrics, TenantMetrics};
pub use protocol::{ProtocolError, Summary};
pub use quota::{AdmitError, Quotas, SessionTable};
pub use session::{run_session, SessionEnd, SessionOutcome};

// Compile and run the examples in the wire spec, so PROTOCOL.md cannot
// drift from the constants it documents. (CI additionally greps the
// prose for the literal frame-type and error-code values.)
#[doc = include_str!("../../../PROTOCOL.md")]
#[cfg(doctest)]
mod protocol_spec_doctests {}
