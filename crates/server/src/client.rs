//! The sending side of the ingest protocol, shared by `ppa send` and
//! the e2e tests: connect, `HELLO`, stream a trace file as `DATA`
//! frames, `FIN`, and wait for `DONE`.
//!
//! The client is resume-oblivious by design: it always replays the
//! trace from byte 0, and the server's `OK` frame tells it how many
//! events the server has already analyzed (the server skips that prefix
//! internally). That keeps client state zero — a resumed upload is just
//! the same command run again.

use crate::protocol::{
    decode_done, decode_error, decode_ok, encode_hello, read_frame, write_frame, Frame,
    ProtocolError, Summary, FT_DATA, FT_DONE, FT_ERROR, FT_FIN, FT_HELLO, FT_OK,
};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Default `DATA` frame payload size. Big enough to amortize framing,
/// small enough that the server's one-frame ingest buffer stays modest.
pub const DEFAULT_FRAME_BYTES: usize = 256 * 1024;

/// Where to send a trace.
#[derive(Debug, Clone)]
pub enum Target {
    /// A `host:port` TCP address.
    Tcp(String),
    /// A unix socket path.
    Unix(std::path::PathBuf),
}

/// Why an upload failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket or file I/O failed.
    Io(io::Error),
    /// The server answered with bytes that are not valid protocol.
    Protocol(ProtocolError),
    /// The server refused or aborted the session with a typed `ERROR`.
    Server {
        /// The protocol error code.
        code: u16,
        /// The server's message.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Server { code, message } => write!(
                f,
                "server: {} ({code}): {message}",
                crate::protocol::error_code_name(*code)
            ),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// What a successful (or server-side-parked) upload reports.
#[derive(Debug)]
pub enum SendOutcome {
    /// The server finished the stream and deleted its checkpoint.
    Done {
        /// Events the server said it had already seen at `OK` time
        /// (nonzero means this upload resumed a parked session).
        resumed_from: u64,
        /// The server's final report summary.
        summary: Summary,
    },
}

/// Streams `trace` to `target` as one `(tenant, stream)` session.
/// Returns the server's `DONE` summary, or the typed error the server
/// sent instead.
pub fn send_trace(
    target: &Target,
    tenant: &str,
    stream: &str,
    trace: &Path,
    frame_bytes: usize,
) -> Result<SendOutcome, ClientError> {
    match target {
        Target::Tcp(addr) => {
            let sock = TcpStream::connect(addr.as_str())?;
            send_on(sock, tenant, stream, trace, frame_bytes)
        }
        Target::Unix(path) => {
            let sock = UnixStream::connect(path)?;
            send_on(sock, tenant, stream, trace, frame_bytes)
        }
    }
}

fn send_on<S: Read + Write>(
    mut sock: S,
    tenant: &str,
    stream: &str,
    trace: &Path,
    frame_bytes: usize,
) -> Result<SendOutcome, ClientError> {
    let hello = encode_hello(tenant, stream).map_err(ClientError::Protocol)?;
    write_frame(&mut sock, FT_HELLO, &hello)?;
    let ok = expect_frame(&mut sock, FT_OK)?;
    let resumed_from = decode_ok(&ok.payload).map_err(ClientError::Protocol)?;

    let mut file = std::fs::File::open(trace)?;
    let cap = frame_bytes.clamp(1, crate::protocol::MAX_FRAME_LEN as usize);
    let mut buf = vec![0u8; cap];
    loop {
        let n = file.read(&mut buf)?;
        if n == 0 {
            break;
        }
        if let Err(e) = write_frame(&mut sock, FT_DATA, &buf[..n]) {
            // The server may have torn the connection down with a final
            // ERROR frame (quota, eviction); surface that instead of a
            // bare EPIPE when we can still read it.
            if let Ok(f) = read_frame(&mut sock) {
                if f.ty == FT_ERROR {
                    let (code, message) =
                        decode_error(&f.payload).map_err(ClientError::Protocol)?;
                    return Err(ClientError::Server { code, message });
                }
            }
            return Err(ClientError::Io(e));
        }
    }
    write_frame(&mut sock, FT_FIN, &[])?;
    let done = expect_frame(&mut sock, FT_DONE)?;
    let summary = decode_done(&done.payload).map_err(ClientError::Protocol)?;
    Ok(SendOutcome::Done {
        resumed_from,
        summary,
    })
}

/// Reads one frame and requires it to be `want`; an `ERROR` frame
/// becomes [`ClientError::Server`], anything else a protocol error.
fn expect_frame(sock: &mut impl Read, want: u8) -> Result<Frame, ClientError> {
    let f = read_frame(sock)?;
    if f.ty == want {
        return Ok(f);
    }
    if f.ty == FT_ERROR {
        let (code, message) = decode_error(&f.payload).map_err(ClientError::Protocol)?;
        return Err(ClientError::Server { code, message });
    }
    Err(ClientError::Protocol(ProtocolError {
        code: crate::protocol::EC_MALFORMED_FRAME,
        message: format!("expected frame type {want:#04x}, got {:#04x}", f.ty),
    }))
}
