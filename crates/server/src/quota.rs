//! Per-tenant admission control: concurrent-session caps, a live
//! `(tenant, stream)` ownership table, and an events-per-second
//! throttle.
//!
//! Admission is all-or-nothing at `HELLO` time ([`SessionTable::admit`])
//! and returns an RAII [`SessionPermit`] whose drop releases every
//! count, so a panicking session cannot leak quota. The events/sec
//! limit is not an admission check: it throttles a running session by
//! telling it how long to sleep before consuming more input
//! ([`SessionTable::throttle`]) — the sleep stops the session reading
//! its socket, which pushes back on the client through TCP/unix-socket
//! flow control.

use crate::protocol::{EC_SERVER_FULL, EC_SESSION_BUSY, EC_TENANT_SESSIONS};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The daemon's quota knobs. `None`/`0` disables a limit.
#[derive(Debug, Clone)]
pub struct Quotas {
    /// Server-wide concurrent session cap.
    pub max_sessions: usize,
    /// Per-tenant concurrent session cap.
    pub tenant_max_sessions: usize,
    /// Per-tenant ingest rate cap, events per second (0 = unlimited).
    pub tenant_max_eps: u64,
    /// Per-tenant resident-state cap, bytes (0 = unlimited). Counts the
    /// analyzer's live state plus the reorder buffer, summed over the
    /// tenant's sessions.
    pub tenant_max_resident_bytes: u64,
}

impl Default for Quotas {
    fn default() -> Self {
        Quotas {
            max_sessions: 256,
            tenant_max_sessions: 16,
            tenant_max_eps: 0,
            tenant_max_resident_bytes: 0,
        }
    }
}

/// Why [`SessionTable::admit`] refused a session; maps onto the
/// protocol `EC_*` codes via [`AdmitError::code`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The server-wide cap is reached.
    ServerFull,
    /// The tenant's concurrent-session cap is reached.
    TenantSessions,
    /// Another live session owns this `(tenant, stream)`.
    SessionBusy,
}

impl AdmitError {
    /// The protocol error code this rejection is reported as.
    pub fn code(&self) -> u16 {
        match self {
            AdmitError::ServerFull => EC_SERVER_FULL,
            AdmitError::TenantSessions => EC_TENANT_SESSIONS,
            AdmitError::SessionBusy => EC_SESSION_BUSY,
        }
    }

    /// The message sent to the client.
    pub fn message(&self, quotas: &Quotas) -> String {
        match self {
            AdmitError::ServerFull => format!(
                "server is at its {}-session capacity; retry later",
                quotas.max_sessions
            ),
            AdmitError::TenantSessions => format!(
                "tenant is at its {}-session quota; retry later",
                quotas.tenant_max_sessions
            ),
            AdmitError::SessionBusy => {
                "another live session already owns this (tenant, stream)".to_string()
            }
        }
    }
}

#[derive(Default)]
struct TenantState {
    active: usize,
    live_streams: HashSet<String>,
    /// Events admitted in the current one-second rate window.
    rate_in_window: u64,
    rate_window_start: Option<Instant>,
    resident_bytes: u64,
}

#[derive(Default)]
struct Inner {
    total_active: usize,
    tenants: HashMap<String, TenantState>,
}

/// The daemon's live-session registry. Cheap to clone (shared state).
#[derive(Clone)]
pub struct SessionTable {
    quotas: Quotas,
    inner: Arc<Mutex<Inner>>,
}

impl SessionTable {
    /// An empty table enforcing `quotas`.
    pub fn new(quotas: Quotas) -> Self {
        SessionTable {
            quotas,
            inner: Arc::new(Mutex::new(Inner::default())),
        }
    }

    /// The quotas this table enforces.
    pub fn quotas(&self) -> &Quotas {
        &self.quotas
    }

    /// Sessions currently admitted, server-wide.
    pub fn active(&self) -> usize {
        self.inner
            .lock()
            .expect("session table poisoned")
            .total_active
    }

    /// Admits one session for `(tenant, stream)`, or says why not. The
    /// returned permit releases the slots when dropped.
    pub fn admit(&self, tenant: &str, stream: &str) -> Result<SessionPermit, AdmitError> {
        let mut inner = self.inner.lock().expect("session table poisoned");
        if self.quotas.max_sessions > 0 && inner.total_active >= self.quotas.max_sessions {
            return Err(AdmitError::ServerFull);
        }
        let t = inner.tenants.entry(tenant.to_string()).or_default();
        // The duplicate-stream check comes before the tenant cap: "this
        // exact stream is already being ingested" is the more specific
        // (and more actionable) refusal.
        if t.live_streams.contains(stream) {
            return Err(AdmitError::SessionBusy);
        }
        if self.quotas.tenant_max_sessions > 0 && t.active >= self.quotas.tenant_max_sessions {
            return Err(AdmitError::TenantSessions);
        }
        t.live_streams.insert(stream.to_string());
        t.active += 1;
        inner.total_active += 1;
        Ok(SessionPermit {
            table: self.clone(),
            tenant: tenant.to_string(),
            stream: stream.to_string(),
            resident: std::cell::Cell::new(0),
        })
    }

    /// Consults the tenant's events/sec budget after consuming `events`
    /// more input events. Returns how long the session should sleep
    /// before reading on (zero when unlimited or within budget). The
    /// window is a fixed one-second tumbling window — coarse, but
    /// enough to hold a hot client near the cap.
    pub fn throttle(&self, tenant: &str, events: u64) -> Duration {
        let eps = self.quotas.tenant_max_eps;
        if eps == 0 {
            return Duration::ZERO;
        }
        let now = Instant::now();
        let mut inner = self.inner.lock().expect("session table poisoned");
        let t = inner.tenants.entry(tenant.to_string()).or_default();
        let start = *t.rate_window_start.get_or_insert(now);
        let elapsed = now.duration_since(start);
        if elapsed >= Duration::from_secs(1) {
            t.rate_window_start = Some(now);
            t.rate_in_window = 0;
        }
        t.rate_in_window += events;
        if t.rate_in_window <= eps {
            return Duration::ZERO;
        }
        // Over budget: sleep out the rest of the window.
        Duration::from_secs(1).saturating_sub(elapsed)
    }

    fn update_resident(&self, tenant: &str, before: u64, now: u64) -> bool {
        let cap = self.quotas.tenant_max_resident_bytes;
        let mut inner = self.inner.lock().expect("session table poisoned");
        let t = inner.tenants.entry(tenant.to_string()).or_default();
        t.resident_bytes = t.resident_bytes.saturating_sub(before).saturating_add(now);
        cap > 0 && t.resident_bytes > cap
    }

    fn release(&self, tenant: &str, stream: &str, resident: u64) {
        let mut inner = self.inner.lock().expect("session table poisoned");
        inner.total_active = inner.total_active.saturating_sub(1);
        if let Some(t) = inner.tenants.get_mut(tenant) {
            t.active = t.active.saturating_sub(1);
            t.live_streams.remove(stream);
            t.resident_bytes = t.resident_bytes.saturating_sub(resident);
        }
    }
}

/// An admitted session's slot; dropping it releases every count the
/// admission took, plus whatever resident bytes the session last
/// reported through [`SessionPermit::set_resident`].
pub struct SessionPermit {
    /// Shared table the slot is released into on drop.
    table: SessionTable,
    tenant: String,
    stream: String,
    /// This session's last-reported resident bytes (released on drop).
    resident: std::cell::Cell<u64>,
}

impl SessionPermit {
    /// Replaces this session's resident-bytes contribution with `now`;
    /// returns `true` if the tenant is over its resident quota.
    pub fn set_resident(&self, now: u64) -> bool {
        let before = self.resident.replace(now);
        self.table.update_resident(&self.tenant, before, now)
    }
}

impl std::fmt::Debug for SessionPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionPermit")
            .field("tenant", &self.tenant)
            .field("stream", &self.stream)
            .field("resident", &self.resident.get())
            .finish()
    }
}

impl Drop for SessionPermit {
    fn drop(&mut self) {
        self.table
            .release(&self.tenant, &self.stream, self.resident.get());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quotas(max: usize, per_tenant: usize) -> Quotas {
        Quotas {
            max_sessions: max,
            tenant_max_sessions: per_tenant,
            tenant_max_eps: 0,
            tenant_max_resident_bytes: 0,
        }
    }

    #[test]
    fn admission_enforces_global_and_tenant_caps() {
        let table = SessionTable::new(quotas(3, 2));
        let a1 = table.admit("a", "s1").unwrap();
        let _a2 = table.admit("a", "s2").unwrap();
        assert_eq!(
            table.admit("a", "s3").unwrap_err(),
            AdmitError::TenantSessions
        );
        let _b1 = table.admit("b", "s1").unwrap();
        assert_eq!(table.admit("b", "s2").unwrap_err(), AdmitError::ServerFull);
        assert_eq!(table.active(), 3);
        drop(a1);
        assert_eq!(table.active(), 2);
        let _b2 = table.admit("b", "s2").unwrap();
    }

    #[test]
    fn duplicate_live_stream_is_busy_until_released() {
        let table = SessionTable::new(quotas(0, 0));
        let p = table.admit("t", "s").unwrap();
        assert_eq!(table.admit("t", "s").unwrap_err(), AdmitError::SessionBusy);
        // A different tenant may reuse the stream name.
        let _other = table.admit("u", "s").unwrap();
        drop(p);
        let _again = table.admit("t", "s").unwrap();
    }

    #[test]
    fn throttle_sleeps_only_over_budget() {
        let table = SessionTable::new(Quotas {
            tenant_max_eps: 100,
            ..quotas(0, 0)
        });
        assert_eq!(table.throttle("t", 50), Duration::ZERO);
        assert_eq!(table.throttle("t", 50), Duration::ZERO);
        assert!(table.throttle("t", 1) > Duration::ZERO);
        // Unlimited tenants never sleep.
        let free = SessionTable::new(quotas(0, 0));
        assert_eq!(free.throttle("t", 1_000_000), Duration::ZERO);
    }

    #[test]
    fn resident_quota_sums_across_sessions_and_releases() {
        let table = SessionTable::new(Quotas {
            tenant_max_resident_bytes: 100,
            ..quotas(0, 0)
        });
        let p1 = table.admit("t", "s1").unwrap();
        let p2 = table.admit("t", "s2").unwrap();
        assert!(!p1.set_resident(60));
        assert!(p2.set_resident(60)); // 120 > 100 tenant-wide
        assert!(!p2.set_resident(30)); // replaced, 90 <= 100
        drop(p1); // releases p1's 60; tenant total back to 30
        assert!(!p2.set_resident(90));
        assert!(p2.set_resident(101));
    }
}
