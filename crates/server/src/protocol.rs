//! The `ppa-serve-v1` wire protocol: length-prefixed frames carrying a
//! session handshake, raw trace bytes, and typed results.
//!
//! `PROTOCOL.md` in the repository root is the normative
//! specification; the constants there are doc-tested against this
//! module so the two cannot drift. The shape in one paragraph: a
//! client connects (TCP or unix socket), sends `HELLO` naming a
//! `(tenant, stream)` pair, receives `OK` carrying how many trace
//! positions the server has already durably analyzed for that pair (0
//! for a fresh stream), then sends the trace bytes — a complete
//! `ppa-trace-v1` (JSONL) or `ppa-trace-bin-v1` (binary) stream,
//! starting from byte 0, chopped into `DATA` frames — followed by `FIN`.
//! The server replies `DONE` with a summary, or `ERROR` with a typed
//! code at any point.
//!
//! Every frame is an 8-byte header plus a payload:
//!
//! ```text
//! offset  size  field
//! 0       1     frame type (FT_*)
//! 1       3     reserved, must be zero
//! 4       4     payload length, u32 little-endian (< MAX_FRAME_LEN)
//! ```

use std::io::{self, Read, Write};

/// Magic bytes opening every `HELLO` payload: `b"PPASERV1"`.
pub const SERVE_MAGIC: [u8; 8] = *b"PPASERV1";
/// Protocol version carried in `HELLO` after the magic.
pub const SERVE_VERSION: u8 = 1;
/// Bytes in a frame header: type, three reserved zeros, u32 LE length.
pub const FRAME_HEADER_LEN: usize = 8;
/// Hard cap on a frame payload: 16 MiB. A peer announcing more is
/// violating the protocol and the connection is closed with
/// [`EC_FRAME_TOO_LARGE`]; the cap bounds per-connection buffering.
pub const MAX_FRAME_LEN: u32 = 1 << 24;
/// Longest permitted tenant or stream id, in bytes.
pub const MAX_ID_LEN: usize = 128;

/// Client→server: session handshake (magic, version, tenant, stream).
pub const FT_HELLO: u8 = 0x01;
/// Client→server: a chunk of raw trace bytes.
pub const FT_DATA: u8 = 0x02;
/// Client→server: end of trace bytes (empty payload).
pub const FT_FIN: u8 = 0x03;
/// Server→client: handshake accepted; payload is the u64 LE count of
/// trace positions already analyzed (the client may still resend from
/// byte 0 — the server skips the prefix).
pub const FT_OK: u8 = 0x10;
/// Server→client: analysis finished; payload is a [`Summary`].
pub const FT_DONE: u8 = 0x11;
/// Server→client: typed failure; payload is u16 LE code + UTF-8 text.
pub const FT_ERROR: u8 = 0x1f;

/// A frame violated the framing rules (bad reserved bytes, short read).
pub const EC_MALFORMED_FRAME: u16 = 1;
/// `HELLO` carried an unknown magic or protocol version.
pub const EC_UNSUPPORTED_VERSION: u16 = 2;
/// Tenant or stream id empty, too long, or containing forbidden bytes.
pub const EC_BAD_ID: u16 = 3;
/// The server-wide concurrent session cap is reached.
pub const EC_SERVER_FULL: u16 = 4;
/// The tenant's concurrent session cap is reached.
pub const EC_TENANT_SESSIONS: u16 = 5;
/// Another live session already owns this `(tenant, stream)`.
pub const EC_SESSION_BUSY: u16 = 6;
/// The trace bytes failed to decode (strict mode) or failed analysis.
pub const EC_BAD_TRACE: u16 = 7;
/// The tenant's resident-bytes quota was exceeded mid-analysis.
pub const EC_QUOTA_RESIDENT: u16 = 8;
/// The session sat idle past the eviction deadline; state was
/// checkpointed and a later `HELLO` for the same pair resumes it.
pub const EC_IDLE_EVICTED: u16 = 9;
/// The daemon is shutting down; state was checkpointed for resume.
pub const EC_SHUTTING_DOWN: u16 = 10;
/// A frame announced a payload at or above [`MAX_FRAME_LEN`].
pub const EC_FRAME_TOO_LARGE: u16 = 11;
/// Unexpected server-side failure (I/O on checkpoint files, etc.).
pub const EC_INTERNAL: u16 = 12;

/// Human-readable name of a protocol error code (for logs and CLI
/// messages); `"unknown"` for codes this build does not define.
pub fn error_code_name(code: u16) -> &'static str {
    match code {
        EC_MALFORMED_FRAME => "malformed-frame",
        EC_UNSUPPORTED_VERSION => "unsupported-version",
        EC_BAD_ID => "bad-id",
        EC_SERVER_FULL => "server-full",
        EC_TENANT_SESSIONS => "tenant-sessions",
        EC_SESSION_BUSY => "session-busy",
        EC_BAD_TRACE => "bad-trace",
        EC_QUOTA_RESIDENT => "quota-resident",
        EC_IDLE_EVICTED => "idle-evicted",
        EC_SHUTTING_DOWN => "shutting-down",
        EC_FRAME_TOO_LARGE => "frame-too-large",
        EC_INTERNAL => "internal",
        _ => "unknown",
    }
}

/// One decoded frame: a type byte and its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame type (`FT_*`).
    pub ty: u8,
    /// The raw payload bytes.
    pub payload: Vec<u8>,
}

/// A decoded `HELLO` payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// The tenant the stream bills to (quota + metrics key).
    pub tenant: String,
    /// The stream id, unique per tenant (checkpoint/resume key).
    pub stream: String,
}

/// The `DONE` payload: six u64 LE fields summarizing the finished
/// analysis, in declaration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Summary {
    /// Approximated events written to the session report.
    pub events: u64,
    /// Await resolutions observed.
    pub awaits: u64,
    /// Barrier passages observed.
    pub barriers: u64,
    /// Final approximated timestamp, nanoseconds.
    pub last_time_ns: u64,
    /// Decode gaps recorded (lenient mode).
    pub gaps: u64,
    /// Events lost to decode gaps (lenient mode).
    pub events_lost: u64,
}

/// A protocol-level decode failure: the typed code the server reports
/// plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// One of the `EC_*` codes.
    pub code: u16,
    /// What was wrong, for logs.
    pub message: String,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.message, error_code_name(self.code))
    }
}

impl std::error::Error for ProtocolError {}

fn perr(code: u16, message: impl Into<String>) -> ProtocolError {
    ProtocolError {
        code,
        message: message.into(),
    }
}

/// Whether `id` is a valid tenant or stream id: 1..=[`MAX_ID_LEN`] bytes
/// of `[A-Za-z0-9._-]`, not starting with `.` (ids name checkpoint files
/// on the server, so path separators and dot-prefixes are forbidden).
pub fn valid_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= MAX_ID_LEN
        && !id.starts_with('.')
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

/// Writes one frame (header + payload). The payload must be shorter
/// than [`MAX_FRAME_LEN`].
pub fn write_frame(w: &mut impl Write, ty: u8, payload: &[u8]) -> io::Result<()> {
    debug_assert!((payload.len() as u64) < MAX_FRAME_LEN as u64);
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[0] = ty;
    header[4..8].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Parses a frame header, validating the reserved bytes and the length
/// cap. Returns `(type, payload_len)`.
pub fn parse_frame_header(header: &[u8; FRAME_HEADER_LEN]) -> Result<(u8, u32), ProtocolError> {
    if header[1..4] != [0, 0, 0] {
        return Err(perr(
            EC_MALFORMED_FRAME,
            "frame header reserved bytes are not zero",
        ));
    }
    let len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len >= MAX_FRAME_LEN {
        return Err(perr(
            EC_FRAME_TOO_LARGE,
            format!("frame payload of {len} bytes exceeds the {MAX_FRAME_LEN} cap"),
        ));
    }
    Ok((header[0], len))
}

/// Reads one complete frame from a blocking stream (the client side;
/// the server reads incrementally so it can poll for shutdown).
pub fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    r.read_exact(&mut header)?;
    let (ty, len) = parse_frame_header(&header)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Frame { ty, payload })
}

/// Encodes a `HELLO` payload. Fails with [`EC_BAD_ID`] on invalid ids.
pub fn encode_hello(tenant: &str, stream: &str) -> Result<Vec<u8>, ProtocolError> {
    for (what, id) in [("tenant", tenant), ("stream", stream)] {
        if !valid_id(id) {
            return Err(perr(
                EC_BAD_ID,
                format!(
                    "{what} id {id:?} is invalid (1..={MAX_ID_LEN} bytes of \
                     [A-Za-z0-9._-], no leading dot)"
                ),
            ));
        }
    }
    let mut p = Vec::with_capacity(SERVE_MAGIC.len() + 2 + 4 + tenant.len() + stream.len());
    p.extend_from_slice(&SERVE_MAGIC);
    p.push(SERVE_VERSION);
    p.push(0); // reserved flags
    p.extend_from_slice(&(tenant.len() as u16).to_le_bytes());
    p.extend_from_slice(tenant.as_bytes());
    p.extend_from_slice(&(stream.len() as u16).to_le_bytes());
    p.extend_from_slice(stream.as_bytes());
    Ok(p)
}

/// Decodes and validates a `HELLO` payload.
pub fn decode_hello(payload: &[u8]) -> Result<Hello, ProtocolError> {
    let need = |n: usize, at: usize| {
        if payload.len() < at + n {
            Err(perr(EC_MALFORMED_FRAME, "HELLO payload truncated"))
        } else {
            Ok(())
        }
    };
    need(SERVE_MAGIC.len() + 2, 0)?;
    if payload[..8] != SERVE_MAGIC {
        return Err(perr(EC_UNSUPPORTED_VERSION, "HELLO magic is not PPASERV1"));
    }
    if payload[8] != SERVE_VERSION {
        return Err(perr(
            EC_UNSUPPORTED_VERSION,
            format!(
                "protocol version {} is not supported (this server speaks {SERVE_VERSION})",
                payload[8]
            ),
        ));
    }
    let mut at = 10; // magic + version + reserved flags
    let mut take_id = |what: &str| -> Result<String, ProtocolError> {
        need(2, at)?;
        let len = u16::from_le_bytes(payload[at..at + 2].try_into().expect("2 bytes")) as usize;
        at += 2;
        need(len, at)?;
        let id = std::str::from_utf8(&payload[at..at + len])
            .map_err(|_| perr(EC_BAD_ID, format!("{what} id is not UTF-8")))?
            .to_string();
        at += len;
        if !valid_id(&id) {
            return Err(perr(
                EC_BAD_ID,
                format!(
                    "{what} id {id:?} is invalid (1..={MAX_ID_LEN} bytes of \
                     [A-Za-z0-9._-], no leading dot)"
                ),
            ));
        }
        Ok(id)
    };
    let tenant = take_id("tenant")?;
    let stream = take_id("stream")?;
    if at != payload.len() {
        return Err(perr(EC_MALFORMED_FRAME, "trailing bytes after HELLO ids"));
    }
    Ok(Hello { tenant, stream })
}

/// Encodes an `OK` payload: the resumed position count, u64 LE.
pub fn encode_ok(resumed_positions: u64) -> Vec<u8> {
    resumed_positions.to_le_bytes().to_vec()
}

/// Decodes an `OK` payload.
pub fn decode_ok(payload: &[u8]) -> Result<u64, ProtocolError> {
    let bytes: [u8; 8] = payload
        .try_into()
        .map_err(|_| perr(EC_MALFORMED_FRAME, "OK payload is not 8 bytes"))?;
    Ok(u64::from_le_bytes(bytes))
}

/// Encodes a `DONE` payload: the six [`Summary`] fields, u64 LE each.
pub fn encode_done(s: &Summary) -> Vec<u8> {
    let mut p = Vec::with_capacity(48);
    for v in [
        s.events,
        s.awaits,
        s.barriers,
        s.last_time_ns,
        s.gaps,
        s.events_lost,
    ] {
        p.extend_from_slice(&v.to_le_bytes());
    }
    p
}

/// Decodes a `DONE` payload.
pub fn decode_done(payload: &[u8]) -> Result<Summary, ProtocolError> {
    if payload.len() != 48 {
        return Err(perr(EC_MALFORMED_FRAME, "DONE payload is not 48 bytes"));
    }
    let f = |i: usize| u64::from_le_bytes(payload[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
    Ok(Summary {
        events: f(0),
        awaits: f(1),
        barriers: f(2),
        last_time_ns: f(3),
        gaps: f(4),
        events_lost: f(5),
    })
}

/// Encodes an `ERROR` payload: u16 LE code followed by UTF-8 text.
pub fn encode_error(code: u16, message: &str) -> Vec<u8> {
    let mut p = Vec::with_capacity(2 + message.len());
    p.extend_from_slice(&code.to_le_bytes());
    p.extend_from_slice(message.as_bytes());
    p
}

/// Decodes an `ERROR` payload into `(code, message)`.
pub fn decode_error(payload: &[u8]) -> Result<(u16, String), ProtocolError> {
    if payload.len() < 2 {
        return Err(perr(
            EC_MALFORMED_FRAME,
            "ERROR payload shorter than a code",
        ));
    }
    let code = u16::from_le_bytes(payload[..2].try_into().expect("2 bytes"));
    let message = String::from_utf8_lossy(&payload[2..]).into_owned();
    Ok((code, message))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FT_DATA, b"abc").unwrap();
        write_frame(&mut buf, FT_FIN, b"").unwrap();
        let mut r = buf.as_slice();
        let a = read_frame(&mut r).unwrap();
        assert_eq!((a.ty, a.payload.as_slice()), (FT_DATA, &b"abc"[..]));
        let b = read_frame(&mut r).unwrap();
        assert_eq!((b.ty, b.payload.len()), (FT_FIN, 0));
        assert!(r.is_empty());
    }

    #[test]
    fn header_rejects_nonzero_reserved_and_oversized_payloads() {
        let mut h = [0u8; FRAME_HEADER_LEN];
        h[0] = FT_DATA;
        h[2] = 1;
        assert_eq!(parse_frame_header(&h).unwrap_err().code, EC_MALFORMED_FRAME);
        let mut h = [0u8; FRAME_HEADER_LEN];
        h[0] = FT_DATA;
        h[4..8].copy_from_slice(&MAX_FRAME_LEN.to_le_bytes());
        assert_eq!(parse_frame_header(&h).unwrap_err().code, EC_FRAME_TOO_LARGE);
    }

    #[test]
    fn hello_round_trips_and_validates_ids() {
        let p = encode_hello("acme", "run-7.bin").unwrap();
        let h = decode_hello(&p).unwrap();
        assert_eq!(h.tenant, "acme");
        assert_eq!(h.stream, "run-7.bin");

        assert_eq!(encode_hello("", "s").unwrap_err().code, EC_BAD_ID);
        assert_eq!(encode_hello("a/b", "s").unwrap_err().code, EC_BAD_ID);
        assert_eq!(encode_hello("..", "s").unwrap_err().code, EC_BAD_ID);
        assert_eq!(
            encode_hello(&"x".repeat(MAX_ID_LEN + 1), "s")
                .unwrap_err()
                .code,
            EC_BAD_ID
        );

        let mut bad_magic = p.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            decode_hello(&bad_magic).unwrap_err().code,
            EC_UNSUPPORTED_VERSION
        );
        let mut bad_version = p.clone();
        bad_version[8] = 9;
        assert_eq!(
            decode_hello(&bad_version).unwrap_err().code,
            EC_UNSUPPORTED_VERSION
        );
        let mut trailing = p.clone();
        trailing.push(0);
        assert_eq!(
            decode_hello(&trailing).unwrap_err().code,
            EC_MALFORMED_FRAME
        );
        assert_eq!(decode_hello(&p[..4]).unwrap_err().code, EC_MALFORMED_FRAME);
    }

    #[test]
    fn ok_done_and_error_payloads_round_trip() {
        assert_eq!(decode_ok(&encode_ok(42)).unwrap(), 42);
        assert!(decode_ok(b"short").is_err());

        let s = Summary {
            events: 1,
            awaits: 2,
            barriers: 3,
            last_time_ns: 4,
            gaps: 5,
            events_lost: 6,
        };
        assert_eq!(decode_done(&encode_done(&s)).unwrap(), s);
        assert!(decode_done(b"short").is_err());

        let (code, msg) = decode_error(&encode_error(EC_BAD_TRACE, "nope")).unwrap();
        assert_eq!((code, msg.as_str()), (EC_BAD_TRACE, "nope"));
        assert_eq!(error_code_name(EC_BAD_TRACE), "bad-trace");
        assert_eq!(error_code_name(9999), "unknown");
    }
}
