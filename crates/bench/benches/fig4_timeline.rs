//! Figure 4 — the per-processor waiting timeline of loop 17: regenerates
//! the Gantt rows and times timeline construction + rendering.

use criterion::{criterion_group, criterion_main, Criterion};
use ppa::metrics::{build_timeline, render_timeline};
use ppa::prelude::*;
use ppa_bench::Fixture;

fn fig4(c: &mut Criterion) {
    let analysis = ppa::experiments::loop17_analysis();
    println!("\n=== Figure 4 (reproduced) ===");
    println!("{}", render_timeline(&analysis.timeline, 72));

    let f = Fixture::doacross(17, &InstrumentationPlan::full_with_sync());
    let result = event_based(&f.measured, &f.config.overheads).expect("feasible");
    c.bench_function("fig4_build_timeline", |b| {
        b.iter(|| build_timeline(&result, f.config.processors))
    });
    let timeline = build_timeline(&result, f.config.processors);
    c.bench_function("fig4_render_timeline", |b| {
        b.iter(|| render_timeline(&timeline, 96))
    });
}

criterion_group!(benches, fig4);
criterion_main!(benches);
