//! Table 1 — time-based analysis of the DOACROSS loops: regenerates the
//! ratio rows and times the full simulate+analyze pipeline per loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppa::prelude::*;
use ppa_bench::Fixture;

fn table1(c: &mut Criterion) {
    println!("\n=== Table 1 (reproduced) ===");
    for row in ppa::experiments::table1() {
        println!(
            "{}: measured/actual {:.2} (paper {:.2})  approx/actual {:.2} (paper {:.2})",
            row.label,
            row.measured_over_actual,
            row.paper_measured.unwrap_or(f64::NAN),
            row.approx_over_actual,
            row.paper_approx.unwrap_or(f64::NAN),
        );
    }

    let mut group = c.benchmark_group("table1_time_based_analysis");
    for kernel in [3u8, 4, 17] {
        let f = Fixture::doacross(kernel, &InstrumentationPlan::full_statements());
        group.throughput(criterion::Throughput::Elements(f.measured.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(&f.label), &f, |b, f| {
            b.iter(|| time_based(&f.measured, &f.config.overheads).total_time())
        });
    }
    group.finish();
}

criterion_group!(benches, table1);
criterion_main!(benches);
