//! Ablations — the design-choice studies DESIGN.md calls out:
//!
//! - A1/A3: conservative vs. liberal analysis across dispatch policies
//!   (work-reassignment handling);
//! - A2: accuracy vs. overhead misestimation;
//! - simulator and end-to-end pipeline throughput scaling with trip count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppa::prelude::*;
use ppa_bench::Fixture;

fn ablations(c: &mut Criterion) {
    println!("\n=== Ablation A2: overhead misestimation (loop 17) ===");
    for p in ppa::experiments::ablation_overhead_sweep(17, &[0.5, 0.9, 1.0, 1.1, 1.5]) {
        println!(
            "factor {:>4.2} -> approx/actual {:.3}",
            p.factor, p.approx_ratio
        );
    }
    println!("\n=== Ablation A1/A3: conservative vs liberal (loop 3) ===");
    for row in ppa::experiments::ablation_schedule(3) {
        println!(
            "{:?}: conservative {:.3}, liberal {:.3}",
            row.policy, row.conservative_ratio, row.liberal_ratio
        );
    }

    // Liberal vs conservative analysis cost.
    let f = Fixture::doacross(3, &InstrumentationPlan::full_with_sync());
    c.bench_function("ablation_conservative_analysis", |b| {
        b.iter(|| {
            event_based(&f.measured, &f.config.overheads)
                .expect("feasible")
                .total_time()
        })
    });
    c.bench_function("ablation_liberal_analysis", |b| {
        b.iter(|| {
            liberal_reschedule(
                &f.measured,
                &f.config.overheads,
                f.config.processors,
                SchedulePolicy::SelfScheduled,
                0.0,
            )
            .expect("structured")
            .total
        })
    });

    // Event-based resolver scaling with trace size.
    let mut group = c.benchmark_group("resolver_scaling");
    for trip in [512u64, 2048, 8192] {
        let mut b = ProgramBuilder::new("resolve-scale");
        let v = b.sync_var();
        let program = b
            .doacross(1, trip, |body| {
                body.compute("h1", 400)
                    .compute("h2", 300)
                    .await_var(v, -1)
                    .compute("cs", 50)
                    .advance(v)
                    .compute("t", 200)
            })
            .build()
            .unwrap();
        let cfg = ppa::experiments::experiment_config();
        let measured =
            run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).expect("valid");
        let events = measured.trace.len() as u64;
        group.throughput(criterion::Throughput::Elements(events));
        group.bench_with_input(
            BenchmarkId::from_parameter(events),
            &measured.trace,
            |bch, t| {
                bch.iter(|| {
                    event_based(t, &cfg.overheads)
                        .expect("feasible")
                        .total_time()
                })
            },
        );
    }
    group.finish();

    // Simulator throughput scaling with trip count.
    let mut group = c.benchmark_group("simulator_scaling");
    for trip in [256u64, 1024, 4096] {
        let mut b = ProgramBuilder::new("scale");
        let v = b.sync_var();
        let program = b
            .doacross(1, trip, |body| {
                body.compute("head", 600)
                    .await_var(v, -1)
                    .compute("cs", 60)
                    .advance(v)
            })
            .build()
            .unwrap();
        let cfg = ppa::experiments::experiment_config();
        group.throughput(criterion::Throughput::Elements(trip));
        group.bench_with_input(BenchmarkId::from_parameter(trip), &trip, |bch, _| {
            bch.iter(|| {
                run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg)
                    .expect("valid")
                    .trace
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
