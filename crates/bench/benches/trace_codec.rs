//! Trace codec throughput: events/sec to encode and decode the JSONL
//! format (`ppa-trace-v1`) vs the binary block format
//! (`ppa-trace-bin-v1`), serial vs block-parallel binary decode, and the
//! byte-size ratio between the encodings.
//!
//! The fixture is a ≥1M-event synthetic 8-processor trace with the event
//! mixture of an instrumented DOACROSS loop (statements dominating,
//! periodic advance/await pairs, occasional barriers) — the shape the
//! paper's pipeline ships at scale, where serialization is the tax on
//! everything else. Alongside the criterion timings, the bench prints a
//! summary and records the headline numbers into
//! `BENCH_trace_codec.json` at the repository root to seed the
//! performance trajectory. Set `PPA_CODEC_BENCH_EVENTS` to scale the
//! fixture (e.g. for CI smoke runs).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ppa::trace::{
    read_binary, read_binary_parallel, read_jsonl, write_binary, write_jsonl, Event, EventKind,
    ProcessorId, StatementId, SyncTag, SyncVarId, Time, Trace, TraceKind,
};
use std::time::Instant;

const DEFAULT_EVENTS: usize = 1 << 20;

/// A ≥1M-event synthetic measured trace: 8 processors, mostly statement
/// events with a sprinkling of synchronization, monotone timestamps with
/// irregular gaps (so time deltas exercise multi-byte varints too).
fn fixture() -> Trace {
    let n: usize = std::env::var("PPA_CODEC_BENCH_EVENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_EVENTS);
    let mut events = Vec::with_capacity(n);
    let mut time = 0u64;
    for i in 0..n {
        // Deterministic pseudo-random gap in [1, 4096] ns.
        let gap = ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 52) + 1;
        time += gap;
        let proc = ProcessorId((i % 8) as u16);
        let kind = match i % 97 {
            0 => EventKind::Advance {
                var: SyncVarId(0),
                tag: SyncTag((i / 97) as i64),
            },
            1 => EventKind::AwaitBegin {
                var: SyncVarId(0),
                tag: SyncTag((i / 97) as i64 - 1),
            },
            2 => EventKind::AwaitEnd {
                var: SyncVarId(0),
                tag: SyncTag((i / 97) as i64 - 1),
            },
            _ => EventKind::Statement {
                stmt: StatementId((i % 40) as u32),
            },
        };
        events.push(Event::new(Time::from_nanos(time), proc, i as u64, kind));
    }
    Trace::from_events(TraceKind::Measured, events)
}

/// Best-of-3 wall time of one run, in seconds (plus one warm-up).
fn best_of_3<R>(mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn trace_codec(c: &mut Criterion) {
    let trace = fixture();
    let n = trace.len();
    let workers = std::thread::available_parallelism().map_or(4, |p| p.get());

    let mut jsonl = Vec::new();
    write_jsonl(&trace, &mut jsonl).expect("encode jsonl");
    let mut bin = Vec::new();
    write_binary(&trace, &mut bin).expect("encode binary");

    let t_enc_jsonl = best_of_3(|| {
        let mut buf = Vec::with_capacity(jsonl.len());
        write_jsonl(&trace, &mut buf).expect("encode jsonl");
        buf.len()
    });
    let t_enc_bin = best_of_3(|| {
        let mut buf = Vec::with_capacity(bin.len());
        write_binary(&trace, &mut buf).expect("encode binary");
        buf.len()
    });
    let t_dec_jsonl = best_of_3(|| read_jsonl(jsonl.as_slice()).expect("decode jsonl").len());
    let t_dec_bin = best_of_3(|| read_binary(bin.as_slice()).expect("decode binary").len());
    let t_dec_par = best_of_3(|| {
        read_binary_parallel(bin.as_slice(), workers)
            .expect("decode binary parallel")
            .len()
    });

    let eps = |secs: f64| n as f64 / secs;
    let size_ratio = bin.len() as f64 / jsonl.len() as f64;
    println!("\n=== trace codec ({n} events, 8 processors, {workers} decode workers) ===");
    println!(
        "size     : jsonl {:>12} bytes, bin {:>12} bytes ({:.1}% of jsonl)",
        jsonl.len(),
        bin.len(),
        size_ratio * 100.0
    );
    println!(
        "encode   : jsonl {:>12.0} events/sec, bin {:>12.0} events/sec ({:.2}x)",
        eps(t_enc_jsonl),
        eps(t_enc_bin),
        t_enc_jsonl / t_enc_bin
    );
    println!(
        "decode   : jsonl {:>12.0} events/sec, bin {:>12.0} events/sec ({:.2}x)",
        eps(t_dec_jsonl),
        eps(t_dec_bin),
        t_dec_jsonl / t_dec_bin
    );
    println!(
        "parallel : bin   {:>12.0} events/sec ({:.2}x serial bin, {:.2}x jsonl)",
        eps(t_dec_par),
        t_dec_bin / t_dec_par,
        t_dec_jsonl / t_dec_par
    );

    // Record the headline numbers at the repository root. Block-parallel
    // decode can only beat serial decode when the host actually has more
    // than one core; flag single-core hosts so the number reads right.
    let note = if workers > 1 {
        ""
    } else {
        "\n  \"note\": \"single-core host: parallel decode cannot beat serial here\","
    };
    let report = format!(
        "{{\n  \"bench\": \"trace_codec\",\n  \"events\": {n},\n  \"decode_workers\": {workers},{note}\n  \
         \"bytes\": {{ \"jsonl\": {}, \"bin\": {}, \"bin_over_jsonl\": {:.4} }},\n  \
         \"encode_events_per_sec\": {{ \"jsonl\": {:.0}, \"bin\": {:.0} }},\n  \
         \"decode_events_per_sec\": {{ \"jsonl\": {:.0}, \"bin_serial\": {:.0}, \"bin_parallel\": {:.0} }},\n  \
         \"speedup\": {{ \"bin_serial_vs_jsonl_decode\": {:.2}, \"bin_parallel_vs_bin_serial\": {:.2} }}\n}}\n",
        jsonl.len(),
        bin.len(),
        size_ratio,
        eps(t_enc_jsonl),
        eps(t_enc_bin),
        eps(t_dec_jsonl),
        eps(t_dec_bin),
        eps(t_dec_par),
        t_dec_jsonl / t_dec_bin,
        t_dec_bin / t_dec_par,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace_codec.json");
    if let Err(e) = std::fs::write(path, &report) {
        eprintln!("could not record {path}: {e}");
    } else {
        println!("recorded {path}");
    }

    let mut group = c.benchmark_group("trace_codec");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("encode_jsonl", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(jsonl.len());
            write_jsonl(&trace, &mut buf).expect("encode jsonl");
            buf.len()
        })
    });
    group.bench_function("encode_bin", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(bin.len());
            write_binary(&trace, &mut buf).expect("encode binary");
            buf.len()
        })
    });
    group.bench_function("decode_jsonl", |b| {
        b.iter(|| read_jsonl(jsonl.as_slice()).expect("decode jsonl").len())
    });
    group.bench_function("decode_bin_serial", |b| {
        b.iter(|| read_binary(bin.as_slice()).expect("decode binary").len())
    });
    group.bench_function("decode_bin_parallel", |b| {
        b.iter(|| {
            read_binary_parallel(bin.as_slice(), workers)
                .expect("decode binary parallel")
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, trace_codec);
criterion_main!(benches);
