//! Table 2 — event-based analysis of the DOACROSS loops: regenerates the
//! ratio rows and times the event-based resolver (the paper's central
//! algorithm) per loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppa::prelude::*;
use ppa_bench::Fixture;

fn table2(c: &mut Criterion) {
    println!("\n=== Table 2 (reproduced) ===");
    for row in ppa::experiments::table2() {
        println!(
            "{}: measured/actual {:.2} (paper {:.2})  approx/actual {:.2} (paper {:.2})",
            row.label,
            row.measured_over_actual,
            row.paper_measured.unwrap_or(f64::NAN),
            row.approx_over_actual,
            row.paper_approx.unwrap_or(f64::NAN),
        );
    }

    let mut group = c.benchmark_group("table2_event_based_analysis");
    for kernel in [3u8, 4, 17] {
        let f = Fixture::doacross(kernel, &InstrumentationPlan::full_with_sync());
        group.throughput(criterion::Throughput::Elements(f.measured.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(&f.label), &f, |b, f| {
            b.iter(|| {
                event_based(&f.measured, &f.config.overheads)
                    .expect("feasible trace")
                    .total_time()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, table2);
criterion_main!(benches);
