//! Decode-worker sweep: binary decode throughput at worker counts
//! {1, 2, 4, 8} against the serial decoder, on the same ≥1M-event
//! fixture shape as `trace_codec`. This is the bench behind the
//! `--decode-workers` knob: it records how the pipelined reader
//! (reader thread → N decode workers → in-order reassembly) scales,
//! and whether hand-off overhead ever makes it *slower* than serial —
//! the regression the PR-3 batch-scoped reader shipped with (0.95x at
//! 4 workers).
//!
//! Alongside the criterion timings, the bench prints a summary and
//! records the headline numbers into `BENCH_decode_parallel.json` at
//! the repository root. Set `PPA_DECODE_BENCH_EVENTS` to scale the
//! fixture (e.g. for CI smoke runs) and `PPA_DECODE_BENCH_WORKERS` to
//! change the sweep (space-separated counts).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ppa::trace::{
    read_binary, read_binary_parallel, write_binary, Event, EventKind, ProcessorId, StatementId,
    SyncTag, SyncVarId, Time, Trace, TraceKind,
};
use std::time::Instant;

const DEFAULT_EVENTS: usize = 1 << 20;

/// Same fixture shape as `trace_codec`: 8 processors, mostly statement
/// events with periodic synchronization, irregular monotone timestamps.
fn fixture() -> Trace {
    let n: usize = std::env::var("PPA_DECODE_BENCH_EVENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_EVENTS);
    let mut events = Vec::with_capacity(n);
    let mut time = 0u64;
    for i in 0..n {
        let gap = ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 52) + 1;
        time += gap;
        let proc = ProcessorId((i % 8) as u16);
        let kind = match i % 97 {
            0 => EventKind::Advance {
                var: SyncVarId(0),
                tag: SyncTag((i / 97) as i64),
            },
            1 => EventKind::AwaitBegin {
                var: SyncVarId(0),
                tag: SyncTag((i / 97) as i64 - 1),
            },
            2 => EventKind::AwaitEnd {
                var: SyncVarId(0),
                tag: SyncTag((i / 97) as i64 - 1),
            },
            _ => EventKind::Statement {
                stmt: StatementId((i % 40) as u32),
            },
        };
        events.push(Event::new(Time::from_nanos(time), proc, i as u64, kind));
    }
    Trace::from_events(TraceKind::Measured, events)
}

/// Best-of-3 wall time of one run, in seconds (plus one warm-up).
fn best_of_3<R>(mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn sweep_counts() -> Vec<usize> {
    std::env::var("PPA_DECODE_BENCH_WORKERS")
        .ok()
        .map(|v| {
            v.split_whitespace()
                .filter_map(|w| w.parse().ok())
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

fn decode_sweep(c: &mut Criterion) {
    let trace = fixture();
    let n = trace.len();
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let counts = sweep_counts();

    let mut bin = Vec::new();
    write_binary(&trace, &mut bin).expect("encode binary");

    let t_serial = best_of_3(|| read_binary(bin.as_slice()).expect("decode binary").len());
    let eps = |secs: f64| n as f64 / secs;

    println!("\n=== decode worker sweep ({n} events, {cores} cores) ===");
    println!("serial       : {:>12.0} events/sec", eps(t_serial));
    let mut rows = Vec::with_capacity(counts.len());
    for &w in &counts {
        let t = best_of_3(|| {
            read_binary_parallel(bin.as_slice(), w)
                .expect("decode binary parallel")
                .len()
        });
        let speedup = t_serial / t;
        println!(
            "{w:>2} worker(s) : {:>12.0} events/sec ({speedup:.2}x serial)",
            eps(t)
        );
        rows.push((w, eps(t), speedup));
    }

    // Oversubscribed counts (more workers than cores) cannot speed up
    // and would make the JSON read as a scaling ceiling it is not.
    let note = if counts.iter().any(|&w| w > cores) {
        format!("\n  \"note\": \"host has {cores} core(s); counts above that are oversubscribed\",")
    } else {
        String::new()
    };
    let sweep_json = rows
        .iter()
        .map(|(w, e, s)| {
            format!("    {{ \"workers\": {w}, \"events_per_sec\": {e:.0}, \"speedup_vs_serial\": {s:.2} }}")
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let report = format!(
        "{{\n  \"bench\": \"decode_parallel\",\n  \"events\": {n},\n  \"cores\": {cores},{note}\n  \
         \"serial_events_per_sec\": {:.0},\n  \"sweep\": [\n{sweep_json}\n  ]\n}}\n",
        eps(t_serial),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_decode_parallel.json"
    );
    if let Err(e) = std::fs::write(path, &report) {
        eprintln!("could not record {path}: {e}");
    } else {
        println!("recorded {path}");
    }

    let mut group = c.benchmark_group("decode_sweep");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("serial", |b| {
        b.iter(|| read_binary(bin.as_slice()).expect("decode binary").len())
    });
    for &w in &counts {
        group.bench_function(format!("workers_{w}"), |b| {
            b.iter(|| {
                read_binary_parallel(bin.as_slice(), w)
                    .expect("decode binary parallel")
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, decode_sweep);
criterion_main!(benches);
