//! Checkpoint overhead: wall-clock cost of `--checkpoint` at the default
//! cadence (one snapshot per ~1M events consumed), measured against the
//! pipeline it rides on — streaming JSONL decode, incremental analysis,
//! and JSONL report encode, exactly the `ppa analyze --stream --out`
//! shape that `--checkpoint` requires.
//!
//! Each checkpoint pays for a full-state snapshot (the analyzer's live
//! synchronization history, which grows with the trace), its binary
//! serialization, a CRC, and an fsync'd atomic file replace. The
//! acceptance bar is that this costs < 5% of pipeline wall time at the
//! default cadence. The analyzer-only overhead (no codec work in the
//! denominator) is also reported for transparency — it is much higher,
//! which is why the cadence default is coarse.
//!
//! Alongside the criterion timings, the bench prints a summary and
//! records the headline numbers into `BENCH_checkpoint.json` at the
//! repository root. Set `PPA_CHECKPOINT_BENCH_ITERS` to scale the
//! fixture (e.g. for CI smoke runs) and `PPA_CHECKPOINT_BENCH_EVERY` to
//! vary the cadence.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ppa::analysis::{
    write_checkpoint, Checkpoint, CheckpointParts, DeltaCheckpointWriter, SinkState,
};
use ppa::prelude::*;
use ppa::trace::{AnyTraceReader, AnyTraceWriter, TraceFormat};
use std::time::Instant;

/// The CLI's default checkpoint cadence, in events consumed.
const DEFAULT_EVERY: u64 = 1_048_576;

/// An 8-processor synthetic workload spanning a few default cadences
/// (~2.6M events at the default iteration count).
fn fixture() -> (Trace, OverheadSpec) {
    let iters: u64 = std::env::var("PPA_CHECKPOINT_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(375_000);
    let cfg = ppa::experiments::experiment_config();
    let mut b = ProgramBuilder::new("checkpoint-overhead");
    let v = b.sync_var();
    let program = b
        .doacross(1, iters, |body| {
            body.compute("head", 500)
                .compute("mid", 300)
                .compute("tail", 200)
                .await_var(v, -1)
                .compute("cs", 60)
                .advance(v)
        })
        .build()
        .expect("valid workload");
    let measured = run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg)
        .expect("valid program");
    (measured.trace, cfg.overheads)
}

/// Paired comparison: times `base` and `with` back to back, five pairs
/// after a warm-up of each, and returns the median pair as
/// `(base_secs, with_secs)`. Pairing and taking the median pair (ranked
/// by the overhead ratio) makes the estimate robust against the
/// coarse-grained wall-clock noise of shared hosts, which dwarfs a
/// few-percent effect when the two sides are timed in separate batches.
fn paired<R>(mut base: impl FnMut() -> R, mut with: impl FnMut() -> R) -> (f64, f64) {
    std::hint::black_box(base());
    std::hint::black_box(with());
    let mut pairs = Vec::with_capacity(5);
    for _ in 0..5 {
        let t = Instant::now();
        std::hint::black_box(base());
        let b = t.elapsed().as_secs_f64();
        let t = Instant::now();
        std::hint::black_box(with());
        let w = t.elapsed().as_secs_f64();
        pairs.push((b, w));
    }
    pairs.sort_by(|x, y| (x.1 / x.0).total_cmp(&(y.1 / y.0)));
    pairs[pairs.len() / 2]
}

/// The `ppa analyze --stream --out report.jsonl` pipeline over in-memory
/// buffers: JSONL decode → incremental analysis → JSONL report encode,
/// optionally taking a full checkpoint (snapshot + serialize + CRC +
/// fsync'd atomic replace) every `every` events consumed. Returns the
/// encoded report size and the number of checkpoints written.
fn pipeline(
    jsonl: &[u8],
    oh: &OverheadSpec,
    checkpoint: Option<(u64, &std::path::Path)>,
) -> (usize, u64) {
    let mut reader = AnyTraceReader::open(jsonl).expect("open jsonl input");
    let mut writer = AnyTraceWriter::new(
        Vec::<u8>::with_capacity(jsonl.len()),
        TraceFormat::Jsonl,
        TraceKind::Approximated,
        0,
    )
    .expect("open jsonl report");
    let mut analyzer = EventBasedAnalyzer::new(oh);
    let mut events_out = 0u64;
    let mut since = 0u64;
    let mut written = 0u64;
    for (i, item) in reader.by_ref().enumerate() {
        let event = item.expect("well-formed fixture");
        analyzer.push(event).expect("ordered trace");
        while let Some(o) = analyzer.next_output() {
            if let ppa::analysis::StreamOutput::Event(e) = o {
                writer.write_event(&e).expect("write report");
                events_out += 1;
            }
        }
        let pushed = i as u64 + 1;
        since += 1;
        if let Some((every, path)) = checkpoint {
            if since >= every {
                since = 0;
                let cp = Checkpoint {
                    analyzer: analyzer.snapshot(),
                    positions_seen: pushed,
                    gaps: Vec::new(),
                    events_lost: 0,
                    reorder: None,
                    sink: SinkState {
                        bytes_flushed: 0,
                        events: events_out,
                        awaits: 0,
                        barriers: 0,
                        episodes: 0,
                        last_time: Time::ZERO,
                    },
                };
                write_checkpoint(path, &cp).expect("write checkpoint");
                written += 1;
            }
        }
    }
    let tail = analyzer.finish().expect("feasible trace");
    for o in &tail.outputs {
        if let ppa::analysis::StreamOutput::Event(e) = o {
            writer.write_event(e).expect("write report");
        }
    }
    let report = writer.finish().expect("finish report");
    (report.len(), written)
}

/// The same pipeline with the incremental (delta-chain) checkpoint
/// writer: a full snapshot first, then dirty-state deltas with periodic
/// compaction — the `--checkpoint-compact-every` path the CLI now uses.
fn pipeline_delta(jsonl: &[u8], oh: &OverheadSpec, every: u64, path: &std::path::Path) -> u64 {
    std::fs::remove_file(path).ok();
    let mut reader = AnyTraceReader::open(jsonl).expect("open jsonl input");
    let mut writer = AnyTraceWriter::new(
        Vec::<u8>::with_capacity(jsonl.len()),
        TraceFormat::Jsonl,
        TraceKind::Approximated,
        0,
    )
    .expect("open jsonl report");
    let mut analyzer = EventBasedAnalyzer::new(oh);
    let mut events_out = 0u64;
    let mut since = 0u64;
    let mut written = 0u64;
    let mut ckpt = DeltaCheckpointWriter::new(path, ppa::analysis::DEFAULT_COMPACT_EVERY);
    for (i, item) in reader.by_ref().enumerate() {
        let event = item.expect("well-formed fixture");
        analyzer.push(event).expect("ordered trace");
        while let Some(o) = analyzer.next_output() {
            if let ppa::analysis::StreamOutput::Event(e) = o {
                writer.write_event(&e).expect("write report");
                events_out += 1;
            }
        }
        since += 1;
        if since >= every {
            since = 0;
            let parts = CheckpointParts {
                positions_seen: i as u64 + 1,
                gaps: &[],
                events_lost: 0,
                reorder: None,
                sink: SinkState {
                    bytes_flushed: 0,
                    events: events_out,
                    awaits: 0,
                    barriers: 0,
                    episodes: 0,
                    last_time: Time::ZERO,
                },
            };
            ckpt.checkpoint(&mut analyzer, parts)
                .expect("write delta checkpoint");
            written += 1;
        }
    }
    let tail = analyzer.finish().expect("feasible trace");
    for o in &tail.outputs {
        if let ppa::analysis::StreamOutput::Event(e) = o {
            writer.write_event(e).expect("write report");
        }
    }
    writer.finish().expect("finish report");
    written
}

/// The analyzer alone with the delta-chain writer.
fn analyzer_only_delta(
    trace: &Trace,
    oh: &OverheadSpec,
    every: u64,
    path: &std::path::Path,
) -> u64 {
    std::fs::remove_file(path).ok();
    let mut analyzer = EventBasedAnalyzer::new(oh);
    let mut since = 0u64;
    let mut written = 0u64;
    let mut ckpt = DeltaCheckpointWriter::new(path, ppa::analysis::DEFAULT_COMPACT_EVERY);
    for (i, e) in trace.iter().enumerate() {
        analyzer.push(*e).expect("ordered trace");
        while analyzer.next_output().is_some() {}
        since += 1;
        if since >= every {
            since = 0;
            let parts = CheckpointParts {
                positions_seen: i as u64 + 1,
                gaps: &[],
                events_lost: 0,
                reorder: None,
                sink: SinkState::default(),
            };
            ckpt.checkpoint(&mut analyzer, parts)
                .expect("write delta checkpoint");
            written += 1;
        }
    }
    analyzer.finish().expect("feasible trace");
    written
}

/// The analyzer alone (no codec work), for the compute-only overhead.
fn analyzer_only(
    trace: &Trace,
    oh: &OverheadSpec,
    checkpoint: Option<(u64, &std::path::Path)>,
) -> (usize, u64) {
    let mut analyzer = EventBasedAnalyzer::new(oh);
    let mut outputs = 0usize;
    let mut since = 0u64;
    let mut written = 0u64;
    for (i, e) in trace.iter().enumerate() {
        analyzer.push(*e).expect("ordered trace");
        while analyzer.next_output().is_some() {
            outputs += 1;
        }
        let pushed = i as u64 + 1;
        since += 1;
        if let Some((every, path)) = checkpoint {
            if since >= every {
                since = 0;
                let cp = Checkpoint {
                    analyzer: analyzer.snapshot(),
                    positions_seen: pushed,
                    gaps: Vec::new(),
                    events_lost: 0,
                    reorder: None,
                    sink: SinkState::default(),
                };
                write_checkpoint(path, &cp).expect("write checkpoint");
                written += 1;
            }
        }
    }
    let tail = analyzer.finish().expect("feasible trace");
    (outputs + tail.outputs.len(), written)
}

fn checkpoint_overhead(c: &mut Criterion) {
    let (trace, oh) = fixture();
    let n = trace.len();
    let every: u64 = std::env::var("PPA_CHECKPOINT_BENCH_EVERY")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_EVERY);
    let dir = std::env::temp_dir().join("ppa-checkpoint-bench");
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    let ckpt = dir.join("state.ckpt");

    let mut jsonl = Vec::new();
    ppa::trace::write_jsonl(&trace, &mut jsonl).expect("encode fixture");

    let (t_base, t_ckpt) = paired(
        || pipeline(&jsonl, &oh, None),
        || pipeline(&jsonl, &oh, Some((every, &ckpt))),
    );
    let (t_cpu_base, t_cpu_ckpt) = paired(
        || analyzer_only(&trace, &oh, None),
        || analyzer_only(&trace, &oh, Some((every, &ckpt))),
    );
    let (_, written) = pipeline(&jsonl, &oh, Some((every, &ckpt)));
    let ckpt_bytes = std::fs::metadata(&ckpt).map(|m| m.len()).unwrap_or(0);
    std::fs::remove_dir_all(&dir).ok();

    let eps = |secs: f64| n as f64 / secs;
    let overhead = (t_ckpt - t_base) / t_base * 100.0;
    let cpu_overhead = (t_cpu_ckpt - t_cpu_base) / t_cpu_base * 100.0;
    let per_ckpt_ms = if written > 0 {
        (t_ckpt - t_base) / written as f64 * 1e3
    } else {
        0.0
    };
    println!("\n=== checkpoint overhead ({n} events, cadence {every}, {written} checkpoints) ===");
    println!(
        "pipeline, no checkpoints : {:>10.0} events/sec",
        eps(t_base)
    );
    println!(
        "pipeline, checkpointed   : {:>10.0} events/sec ({overhead:+.2}%, ~{per_ckpt_ms:.1} ms per checkpoint)",
        eps(t_ckpt)
    );
    println!(
        "analyzer only, baseline  : {:>10.0} events/sec",
        eps(t_cpu_base)
    );
    println!(
        "analyzer only, ckptd     : {:>10.0} events/sec ({cpu_overhead:+.2}%)",
        eps(t_cpu_ckpt)
    );
    println!("last checkpoint size     : {ckpt_bytes} bytes");
    println!(
        "acceptance (<5% of pipeline at default cadence): {}",
        if overhead < 5.0 { "PASS" } else { "FAIL" }
    );

    let report = format!(
        "{{\n  \"bench\": \"checkpoint\",\n  \"events\": {n},\n  \"cadence_events\": {every},\n  \
         \"checkpoints_written\": {written},\n  \"last_checkpoint_bytes\": {ckpt_bytes},\n  \
         \"pipeline\": \"jsonl decode -> streaming analysis -> jsonl report encode\",\n  \
         \"events_per_sec\": {{ \"pipeline\": {:.0}, \"pipeline_checkpointed\": {:.0}, \
         \"analyzer_only\": {:.0}, \"analyzer_only_checkpointed\": {:.0} }},\n  \
         \"overhead_pct\": {{ \"pipeline\": {overhead:.2}, \"analyzer_only\": {cpu_overhead:.2} }},\n  \
         \"ms_per_checkpoint\": {per_ckpt_ms:.1},\n  \
         \"acceptance_under_5_pct\": {}\n}}\n",
        eps(t_base),
        eps(t_ckpt),
        eps(t_cpu_base),
        eps(t_cpu_ckpt),
        overhead < 5.0,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_checkpoint.json");
    if let Err(e) = std::fs::write(path, &report) {
        eprintln!("could not record {path}: {e}");
    } else {
        println!("recorded {path}");
    }

    // --- incremental (delta-chain) checkpoints, same cadences ---------
    // The full-snapshot writer above serializes the analyzer's entire
    // synchronization history every time; the delta writer serializes
    // only the state touched since the last checkpoint, compacting every
    // DEFAULT_COMPACT_EVERY deltas. The acceptance bar for this PR is
    // analyzer-only overhead < 10% at the same cadence where full
    // snapshots measured ~31%.
    let dir = std::env::temp_dir().join("ppa-checkpoint-bench-delta");
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    let dckpt = dir.join("state.ckpt");

    let (t_base_d, t_ckpt_d) = paired(
        || {
            pipeline(&jsonl, &oh, None);
        },
        || {
            pipeline_delta(&jsonl, &oh, every, &dckpt);
        },
    );
    let (t_cpu_base_d, t_cpu_ckpt_d) = paired(
        || {
            analyzer_only(&trace, &oh, None);
        },
        || {
            analyzer_only_delta(&trace, &oh, every, &dckpt);
        },
    );
    let written_d = pipeline_delta(&jsonl, &oh, every, &dckpt);
    let chain_bytes = std::fs::metadata(&dckpt).map(|m| m.len()).unwrap_or(0);
    std::fs::remove_dir_all(&dir).ok();

    let overhead_d = (t_ckpt_d - t_base_d) / t_base_d * 100.0;
    let cpu_overhead_d = (t_cpu_ckpt_d - t_cpu_base_d) / t_cpu_base_d * 100.0;
    let per_ckpt_ms_d = if written_d > 0 {
        (t_ckpt_d - t_base_d) / written_d as f64 * 1e3
    } else {
        0.0
    };
    println!(
        "\n=== incremental checkpoint overhead ({n} events, cadence {every}, \
         {written_d} checkpoints, compact every {}) ===",
        ppa::analysis::DEFAULT_COMPACT_EVERY
    );
    println!(
        "pipeline, delta chain    : {:>10.0} events/sec ({overhead_d:+.2}%, ~{per_ckpt_ms_d:.1} ms per checkpoint)",
        eps(t_ckpt_d)
    );
    println!(
        "analyzer only, delta     : {:>10.0} events/sec ({cpu_overhead_d:+.2}%, was {cpu_overhead:+.2}% with full snapshots)",
        eps(t_cpu_ckpt_d)
    );
    println!("final chain size         : {chain_bytes} bytes");
    println!(
        "acceptance (<10% analyzer-only at same cadence): {}",
        if cpu_overhead_d < 10.0 {
            "PASS"
        } else {
            "FAIL"
        }
    );

    let report = format!(
        "{{\n  \"bench\": \"checkpoint_delta\",\n  \"events\": {n},\n  \"cadence_events\": {every},\n  \
         \"compact_every\": {},\n  \"checkpoints_written\": {written_d},\n  \
         \"final_chain_bytes\": {chain_bytes},\n  \
         \"pipeline\": \"jsonl decode -> streaming analysis -> jsonl report encode\",\n  \
         \"events_per_sec\": {{ \"pipeline\": {:.0}, \"pipeline_delta_checkpointed\": {:.0}, \
         \"analyzer_only\": {:.0}, \"analyzer_only_delta_checkpointed\": {:.0} }},\n  \
         \"overhead_pct\": {{ \"pipeline\": {overhead_d:.2}, \"analyzer_only\": {cpu_overhead_d:.2}, \
         \"analyzer_only_full_snapshot\": {cpu_overhead:.2} }},\n  \
         \"ms_per_checkpoint\": {per_ckpt_ms_d:.1},\n  \
         \"acceptance_analyzer_only_under_10_pct\": {}\n}}\n",
        ppa::analysis::DEFAULT_COMPACT_EVERY,
        eps(t_base_d),
        eps(t_ckpt_d),
        eps(t_cpu_base_d),
        eps(t_cpu_ckpt_d),
        cpu_overhead_d < 10.0,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_checkpoint_delta.json"
    );
    if let Err(e) = std::fs::write(path, &report) {
        eprintln!("could not record {path}: {e}");
    } else {
        println!("recorded {path}");
    }

    let dir = std::env::temp_dir().join("ppa-checkpoint-bench-criterion");
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    let ckpt = dir.join("state.ckpt");
    let mut group = c.benchmark_group("checkpoint_overhead");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("pipeline_baseline", |b| {
        b.iter(|| pipeline(&jsonl, &oh, None))
    });
    group.bench_function("pipeline_checkpointed", |b| {
        b.iter(|| pipeline(&jsonl, &oh, Some((every, &ckpt))))
    });
    group.bench_function("pipeline_delta_checkpointed", |b| {
        b.iter(|| pipeline_delta(&jsonl, &oh, every, &ckpt))
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, checkpoint_overhead);
criterion_main!(benches);
