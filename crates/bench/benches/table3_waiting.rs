//! Table 3 — per-processor waiting extraction from the approximated
//! execution of loop 17: regenerates the percentages and times the
//! waiting-table construction.

use criterion::{criterion_group, criterion_main, Criterion};
use ppa::metrics::waiting_table;
use ppa::prelude::*;
use ppa_bench::Fixture;

fn table3(c: &mut Criterion) {
    let analysis = ppa::experiments::loop17_analysis();
    println!("\n=== Table 3 (reproduced) ===");
    print!("waiting %: ");
    for row in &analysis.waiting.rows {
        print!(" {:>6.2}", row.sync_pct);
    }
    println!("\n(paper:      4.05   8.09   4.05   2.70   4.05   5.40   2.70   4.05)");

    let f = Fixture::doacross(17, &InstrumentationPlan::full_with_sync());
    let result = event_based(&f.measured, &f.config.overheads).expect("feasible");
    c.bench_function("table3_waiting_table", |b| {
        b.iter(|| waiting_table(&result, f.config.processors))
    });
}

criterion_group!(benches, table3);
criterion_main!(benches);
