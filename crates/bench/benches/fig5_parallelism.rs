//! Figure 5 — parallelism over time in loop 17: regenerates the profile
//! (and its loop-window average, the paper's 7.5) and times profile
//! construction.

use criterion::{criterion_group, criterion_main, Criterion};
use ppa::metrics::{build_timeline, parallelism_profile, render_parallelism};
use ppa::prelude::*;
use ppa_bench::Fixture;

fn fig5(c: &mut Criterion) {
    let analysis = ppa::experiments::loop17_analysis();
    println!("\n=== Figure 5 (reproduced) ===");
    println!(
        "average parallelism over the loop: {:.1} (paper: 7.5)",
        analysis.avg_parallelism
    );
    println!("{}", render_parallelism(&analysis.profile, 72, 8));

    let f = Fixture::doacross(17, &InstrumentationPlan::full_with_sync());
    let result = event_based(&f.measured, &f.config.overheads).expect("feasible");
    let timeline = build_timeline(&result, f.config.processors);
    c.bench_function("fig5_parallelism_profile", |b| {
        b.iter(|| parallelism_profile(&timeline))
    });
    let profile = parallelism_profile(&timeline);
    c.bench_function("fig5_average", |b| {
        b.iter(|| profile.average(ppa::trace::Time::ZERO, ppa::trace::Time::from_micros(3_000)))
    });
}

criterion_group!(benches, fig5);
criterion_main!(benches);
