//! Figure 1 — sequential loop execution: regenerates the measured/actual
//! and approximated/actual bars, and times time-based analysis on each
//! kernel's full-instrumentation trace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppa::prelude::*;
use ppa_bench::Fixture;

fn fig1(c: &mut Criterion) {
    // Regenerate the figure once, printed into the bench log.
    println!("\n=== Figure 1 (reproduced) ===");
    for row in ppa::experiments::fig1() {
        println!(
            "loop {:<2} measured/actual {:>6.2} (paper {:>6})  approx/actual {:>5.3}",
            row.kernel,
            row.measured_ratio,
            row.paper_measured
                .map(|v| format!("{v:.2}"))
                .unwrap_or_default(),
            row.approx_ratio
        );
    }

    let mut group = c.benchmark_group("fig1_time_based_analysis");
    for kernel in [1u8, 19, 22] {
        let f = Fixture::sequential(kernel);
        group.throughput(criterion::Throughput::Elements(f.measured.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(&f.label), &f, |b, f| {
            b.iter(|| time_based(&f.measured, &f.config.overheads).total_time())
        });
    }
    group.finish();
}

criterion_group!(benches, fig1);
criterion_main!(benches);
