//! Streaming engine throughput: events/sec of the incremental analyzer
//! and the sharded runner against the batch reference, on an
//! 8-processor synthetic DOACROSS trace, plus the resident-state saving
//! of the streaming formulation.
//!
//! The trace is sized (~590k events) so the batch reference's
//! `O(trace length)` working set — edge lists, indegrees, the full-trace
//! worklist — no longer fits in cache, which is exactly the regime the
//! bounded-memory streaming engine is for.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ppa::prelude::*;
use std::time::Instant;

/// An 8-processor synthetic workload large enough to time meaningfully.
fn fixture() -> (Trace, OverheadSpec) {
    let cfg = ppa::experiments::experiment_config();
    let mut b = ProgramBuilder::new("stream-throughput");
    let v = b.sync_var();
    let program = b
        .doacross(1, 65536, |body| {
            body.compute("head", 500)
                .compute("mid", 300)
                .compute("tail", 200)
                .await_var(v, -1)
                .compute("cs", 60)
                .advance(v)
        })
        .build()
        .expect("valid workload");
    let measured = run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg)
        .expect("valid program");
    (measured.trace, cfg.overheads)
}

/// Best-of-5 wall time of one run, in seconds.
fn best_of_5<R>(mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f()); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// The incremental-consumer path: push events, drain outputs as they
/// become final (e.g. into a JSONL writer), never materialize the result.
fn drive_stream(trace: &Trace, oh: &OverheadSpec) -> (usize, StreamStats) {
    drive_stream_probed(trace, oh, ppa::analysis::AnalyzerProbes::noop())
}

/// [`drive_stream`] with the analyzer's observability probes supplied by
/// the caller — detached (no-op) or attached to a live registry.
fn drive_stream_probed(
    trace: &Trace,
    oh: &OverheadSpec,
    probes: ppa::analysis::AnalyzerProbes,
) -> (usize, StreamStats) {
    let mut analyzer = EventBasedAnalyzer::with_probes(oh, probes);
    let mut outputs = 0usize;
    for e in trace.iter() {
        analyzer.push(*e).expect("ordered trace");
        while analyzer.next_output().is_some() {
            outputs += 1;
        }
    }
    let tail = analyzer.finish().expect("feasible trace");
    (outputs + tail.outputs.len(), tail.stats)
}

/// Self-overhead ablation: the same streaming consume loop with probes
/// detached vs attached to a live registry, plus the microbenchmarked
/// per-probe cost, so the instrumentation's price is itself a reported
/// number (the paper's own methodology applied to this tool).
fn observability_ablation(trace: &Trace, oh: &OverheadSpec, n: usize) {
    use ppa::obs::{calibrate_self_overhead, Registry};

    let t_off = best_of_5(|| drive_stream(trace, oh));
    let registry = Registry::new();
    let probes = ppa::analysis::AnalyzerProbes::register(&registry);
    let t_on = best_of_5(|| drive_stream_probed(trace, oh, probes.clone()));
    let delta = (t_on - t_off) / t_off * 100.0;
    let per_event_ns = (t_on - t_off) / n as f64 * 1e9;
    let cal = calibrate_self_overhead();

    println!("\n=== observability ablation (streaming consume path) ===");
    println!(
        "instrumentation compiled: {}",
        if ppa::obs::ENABLED {
            "yes"
        } else {
            "no (erased)"
        }
    );
    println!(
        "obs off (detached probes): {:>12.0} events/sec",
        n as f64 / t_off
    );
    println!(
        "obs on  (attached probes): {:>12.0} events/sec ({delta:+.2}% vs off)",
        n as f64 / t_on
    );
    println!("ablated cost: {per_event_ns:.2} ns/event");
    println!(
        "calibrated probe cost: counter inc {:.2} ns, gauge set {:.2} ns, \
         histogram observe {:.2} ns (mean {:.2} ns/probe)",
        cal.counter_inc_ns,
        cal.gauge_set_ns,
        cal.histogram_observe_ns,
        cal.per_probe_ns()
    );
}

/// The consume loop instrumented the way `ppa analyze --stream` is: a
/// `Run` root span with a rotating `AnalyzePush` chunk span per 4096
/// events. With no recorder bound the guards are inert; the ablation
/// compares that against a recorder installed globally.
fn drive_stream_spanned(trace: &Trace, oh: &OverheadSpec) -> usize {
    use ppa::obs::{span_enter, Stage};

    let mut analyzer = EventBasedAnalyzer::new(oh);
    let mut outputs = 0usize;
    let run_span = span_enter(Stage::Run);
    let mut chunk_span: Option<ppa::obs::SpanGuard> = None;
    for (i, e) in trace.iter().enumerate() {
        if i % 4096 == 0 {
            // Rotate: close the old chunk before opening the new one so
            // chunks stay siblings under the root.
            drop(chunk_span.take());
            let mut g = span_enter(Stage::AnalyzePush);
            g.attr_seq(i as u64);
            chunk_span = Some(g);
        }
        analyzer.push(*e).expect("ordered trace");
        while analyzer.next_output().is_some() {
            outputs += 1;
        }
    }
    drop(chunk_span);
    let tail = analyzer.finish().expect("feasible trace");
    drop(run_span);
    outputs + tail.outputs.len()
}

/// Self-trace ablation: the spanned consume loop with span guards inert
/// (no recorder) vs recording into an installed [`SpanRecorder`], the
/// exact configuration `ppa analyze --self-trace` runs in. Records the
/// headline numbers into `BENCH_self_trace.json` at the repo root; the
/// acceptance bar is < 2% throughput cost with the recorder attached.
fn self_trace_ablation(trace: &Trace, oh: &OverheadSpec, n: usize) {
    use ppa::obs::SpanRecorder;

    let t_off = best_of_5(|| drive_stream_spanned(trace, oh));
    let recorder = SpanRecorder::new();
    let _installed = recorder.install_global();
    let t_on = best_of_5(|| drive_stream_spanned(trace, oh));
    let log = recorder.drain();
    let spans_per_run = log.events.len() / 6; // warm-up + 5 timed runs
    let delta = (t_on - t_off) / t_off * 100.0;
    let eps = |secs: f64| n as f64 / secs;

    println!("\n=== self-trace ablation (spanned consume path) ===");
    println!(
        "spans compiled: {}",
        if ppa::obs::ENABLED {
            "yes"
        } else {
            "no (erased)"
        }
    );
    println!(
        "recorder off (inert guards): {:>12.0} events/sec",
        eps(t_off)
    );
    println!(
        "recorder on  (installed)   : {:>12.0} events/sec ({delta:+.2}% vs off)",
        eps(t_on)
    );
    println!("spans per run: {spans_per_run} ({} dropped)", log.dropped);
    println!(
        "acceptance (<2% with recorder attached): {}",
        if delta < 2.0 { "PASS" } else { "FAIL" }
    );

    let report = format!(
        "{{\n  \"bench\": \"self_trace\",\n  \"events\": {n},\n  \
         \"pipeline\": \"streaming consume loop with Run root + AnalyzePush chunk span per 4096 events\",\n  \
         \"spans_per_run\": {spans_per_run},\n  \
         \"events_per_sec\": {{ \"recorder_off\": {:.0}, \"recorder_on\": {:.0} }},\n  \
         \"overhead_pct\": {delta:.2},\n  \
         \"acceptance_under_2_pct\": {}\n}}\n",
        eps(t_off),
        eps(t_on),
        delta < 2.0,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_self_trace.json");
    if let Err(e) = std::fs::write(path, &report) {
        eprintln!("could not record {path}: {e}");
    } else {
        println!("recorded {path}");
    }
}

fn streaming_throughput(c: &mut Criterion) {
    let (trace, oh) = fixture();
    let n = trace.len();

    // Headline comparison: events/sec and resident state.
    let t_batch = best_of_5(|| event_based_reference(&trace, &oh).expect("feasible"));
    let t_stream = best_of_5(|| drive_stream(&trace, &oh));
    let t_wrap = best_of_5(|| event_based(&trace, &oh).expect("feasible"));
    let t_sharded = best_of_5(|| event_based_sharded(&trace, &oh, 4).expect("feasible"));
    let (_, stats) = drive_stream(&trace, &oh);
    let eps = |secs: f64| n as f64 / secs;
    println!("\n=== streaming engine vs batch reference ({n} events, 8 processors) ===");
    println!("batch reference      : {:>12.0} events/sec", eps(t_batch));
    println!(
        "streaming (consume)  : {:>12.0} events/sec ({:.2}x batch)",
        eps(t_stream),
        t_batch / t_stream
    );
    println!(
        "streaming (to result): {:>12.0} events/sec ({:.2}x batch)",
        eps(t_wrap),
        t_batch / t_wrap
    );
    println!(
        "sharded (4 workers)  : {:>12.0} events/sec ({:.2}x batch)",
        eps(t_sharded),
        t_batch / t_sharded
    );
    println!(
        "peak resident state  : {} of {} events ({:.3}%; parked {}, buffered {})",
        stats.peak_resident,
        n,
        100.0 * stats.peak_resident as f64 / n as f64,
        stats.peak_parked,
        stats.peak_buffered,
    );

    observability_ablation(&trace, &oh, n);
    self_trace_ablation(&trace, &oh, n);

    let mut group = c.benchmark_group("streaming_throughput");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("batch_reference", |b| {
        b.iter(|| {
            event_based_reference(&trace, &oh)
                .expect("feasible")
                .total_time()
        })
    });
    group.bench_function("streaming_consume", |b| {
        b.iter(|| drive_stream(&trace, &oh))
    });
    group.bench_function("streaming_to_result", |b| {
        b.iter(|| event_based(&trace, &oh).expect("feasible").total_time())
    });
    group.bench_function("sharded_4", |b| {
        b.iter(|| {
            event_based_sharded(&trace, &oh, 4)
                .expect("feasible")
                .total_time()
        })
    });
    group.finish();
}

criterion_group!(benches, streaming_throughput);
criterion_main!(benches);
