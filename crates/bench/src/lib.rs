//! # ppa-bench — shared benchmark fixtures
//!
//! The Criterion benches (one per paper table/figure, see `benches/`) all
//! need the same prepared inputs: simulated actual and measured runs of
//! the experiment workloads. Building them here keeps each bench focused
//! on what it times and prints.

use ppa::experiments::{experiment_config, sequential_config};
use ppa::prelude::*;

/// A prepared workload: program, configuration, actual run, and a measured
/// run under the given plan.
pub struct Fixture {
    /// Workload label.
    pub label: String,
    /// Simulator configuration used for both runs.
    pub config: SimConfig,
    /// Ground-truth total execution time.
    pub actual_total: Span,
    /// The measured trace to analyze.
    pub measured: Trace,
}

impl Fixture {
    /// Prepares a DOACROSS kernel (3, 4, or 17) under a plan.
    pub fn doacross(kernel: u8, plan: &InstrumentationPlan) -> Fixture {
        let config = experiment_config();
        let program = ppa::lfk::doacross_graph(kernel).expect("doacross kernel");
        let actual = run_actual(&program, &config).expect("valid program");
        let measured = run_measured(&program, plan, &config).expect("valid program");
        Fixture {
            label: format!("lfk{kernel:02}"),
            config,
            actual_total: actual.trace.total_time(),
            measured: measured.trace,
        }
    }

    /// Prepares a sequential Figure-1 kernel under full statement tracing.
    pub fn sequential(kernel: u8) -> Fixture {
        let config = sequential_config();
        let program = ppa::lfk::sequential_graph(kernel).expect("fig1 kernel");
        let actual = run_actual(&program, &config).expect("valid program");
        let measured = run_measured(&program, &InstrumentationPlan::full_statements(), &config)
            .expect("valid program");
        Fixture {
            label: format!("lfk{kernel:02}"),
            config,
            actual_total: actual.trace.total_time(),
            measured: measured.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_prepare() {
        let f = Fixture::doacross(3, &InstrumentationPlan::full_with_sync());
        assert!(f.measured.len() > 1000);
        assert!(!f.actual_total.is_zero());
        let s = Fixture::sequential(1);
        assert_eq!(s.config.processors, 1);
        assert!(s.measured.len() > 500);
    }
}
