//! Trace slicing and redundancy suppression.
//!
//! This crate is the query layer behind `ppa slice` and `ppa analyze
//! --slice`: a small, composable predicate language over trace events
//! ([`SliceSpec`], documented normatively in QUERIES.md), a streaming
//! evaluation engine with exact accounting ([`slice_stream`],
//! [`SliceStats`]), and a run-length redundancy suppressor that
//! collapses repeated per-processor event patterns into counted
//! [`ppa_trace::EventKind::Repeat`] records ([`Suppressor`]).
//!
//! Design constraints, in order:
//!
//! 1. **Exact accounting.** Every input event lands in exactly one
//!    output bucket; `emitted - records + suppressed + filtered +
//!    skipped + lost == expected` whenever the container announces its
//!    event count.
//! 2. **Skip before decode.** Time-window slices push their bounds into
//!    the binary block skip index so non-matching blocks are discarded
//!    from their frame summaries alone — no CRC check, no decode.
//! 3. **Lossless suppression.** A suppressed trace expands (in
//!    `ppa-core`) back to the byte-identical logical stream; the
//!    suppressor and expander share [`ppa_trace::Event::repeat_shifted`]
//!    as their single definition of occurrence arithmetic.

#![warn(missing_docs)]

mod engine;
mod probes;
mod spec;
mod suppress;

/// Compiles and runs QUERIES.md's Rust snippets under `cargo test --doc`.
#[doc = include_str!("../../../QUERIES.md")]
mod queries_doctests {}

pub use engine::{slice_stream, SliceError, SliceOptions, SliceStats};
pub use probes::SliceProbes;
pub use spec::{IdSet, KindSet, ParseError, SliceSpec, TagSet, CLAUSE_KEYWORDS};
pub use suppress::{suppress_events, Suppressor, FIFO_BOUND};
