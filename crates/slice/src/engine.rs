//! The slice engine: predicate evaluation over a trace stream with
//! exact accounting.
//!
//! [`slice_stream`] pulls events from an [`AnyTraceReader`], engages
//! the binary block skip index for the spec's time window, evaluates
//! the [`SliceSpec`] per surviving event, optionally feeds survivors
//! through the [`Suppressor`], and hands physical output events to the
//! caller's sink. Every input event is accounted exactly once — see
//! [`SliceStats`].

use crate::probes::SliceProbes;
use crate::spec::SliceSpec;
use crate::suppress::Suppressor;
use ppa_obs::span_enter;
use ppa_obs::Stage;
use ppa_trace::codec::AnyTraceReader;
use ppa_trace::{Event, EventKind, IoError, ProcessorId};
use std::fmt;
use std::io::Read;

/// Events per [`Stage::Slice`] span, mirroring the analyzer's chunking.
const CHUNK: usize = 4096;

/// Why a slice run stopped.
#[derive(Debug)]
pub enum SliceError {
    /// Reading the input or writing the output failed.
    Io(IoError),
    /// The input contains a repeat record but the run filters or
    /// re-suppresses. Records stand for events the predicate cannot
    /// see (and blocks the skip index discards may hide more), so
    /// suppressed traces must be expanded before slicing.
    SuppressedInput {
        /// Sequence number of the offending record.
        seq: u64,
        /// Processor that carries it.
        proc: ProcessorId,
    },
}

impl fmt::Display for SliceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SliceError::Io(e) => write!(f, "{e}"),
            SliceError::SuppressedInput { seq, proc } => write!(
                f,
                "input contains a repeat record (seq {seq} on {proc}): \
                 expand the trace (`ppa slice --expand`) before slicing \
                 or suppressing it"
            ),
        }
    }
}

impl std::error::Error for SliceError {}

impl From<IoError> for SliceError {
    fn from(e: IoError) -> Self {
        SliceError::Io(e)
    }
}

/// Exact accounting for one slice run.
///
/// Every event of the input stream lands in exactly one bucket:
/// delivered and emitted, delivered and filtered, skipped undecoded by
/// the block index, lost to lenient-mode gaps, or (logically)
/// suppressed into a record. The invariant
/// `emitted - records + suppressed + filtered + skipped_events + lost
/// == expected` holds whenever the container announced its event count
/// ([`SliceStats::conservation_holds`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SliceStats {
    /// Event count announced by the input header (0 = unknown).
    pub expected: u64,
    /// Physical events handed to the sink, repeat records included.
    pub emitted: u64,
    /// Repeat records among `emitted`.
    pub records: u64,
    /// Logical events the emitted records stand for.
    pub suppressed: u64,
    /// Events decoded but rejected by the predicate.
    pub filtered: u64,
    /// Blocks the skip index discarded undecoded.
    pub skipped_blocks: u64,
    /// Events inside those discarded blocks.
    pub skipped_events: u64,
    /// Events lost to lenient-mode gaps.
    pub lost: u64,
}

impl SliceStats {
    /// Input events this run has accounted for, bucket by bucket.
    pub fn accounted(&self) -> u64 {
        (self.emitted - self.records)
            + self.suppressed
            + self.filtered
            + self.skipped_events
            + self.lost
    }

    /// True when the accounting invariant holds (vacuously true for
    /// streams that announced no event count).
    pub fn conservation_holds(&self) -> bool {
        self.expected == 0 || self.accounted() == self.expected
    }
}

/// How [`slice_stream`] should treat the stream.
#[derive(Debug, Clone, Default)]
pub struct SliceOptions {
    /// The predicate; the empty spec selects everything.
    pub spec: SliceSpec,
    /// Collapse repeated patterns in the selected events into repeat
    /// records.
    pub suppress: bool,
    /// Engage the binary block skip index for the spec's time window.
    /// Callers disable this when the input may contain repeat records
    /// (skipped blocks could hide them) — `ppa slice --expand` does.
    pub use_skip_index: bool,
}

/// Runs one slice: reads `reader` to exhaustion, applies `options`, and
/// hands every surviving physical event to `sink` in stream order.
///
/// An empty spec without suppression is an identity copy and passes
/// repeat records through untouched; any filtering or re-suppression
/// instead fails with [`SliceError::SuppressedInput`] on the first
/// record seen.
pub fn slice_stream<R: Read>(
    reader: &mut AnyTraceReader<R>,
    options: &SliceOptions,
    probes: &SliceProbes,
    mut sink: impl FnMut(&Event) -> Result<(), IoError>,
) -> Result<SliceStats, SliceError> {
    let identity = options.spec.is_empty() && !options.suppress;
    if options.use_skip_index {
        if let Some(since) = options.spec.since {
            reader.set_min_time(since);
        }
        if let Some(until) = options.spec.until {
            reader.set_max_time(until);
        }
    }

    let mut stats = SliceStats {
        expected: reader.expected_events() as u64,
        ..SliceStats::default()
    };
    let mut suppressor = options.suppress.then(Suppressor::new);
    let mut accepted: Vec<Event> = Vec::with_capacity(CHUNK);
    let mut outbuf: Vec<Event> = Vec::new();
    let mut done = false;

    while !done {
        accepted.clear();
        {
            let _span = span_enter(Stage::Slice);
            let mut read = 0;
            while read < CHUNK {
                read += 1;
                match reader.next() {
                    None => {
                        done = true;
                        break;
                    }
                    Some(Err(e)) => return Err(SliceError::Io(e)),
                    Some(Ok(event)) => {
                        if !identity && matches!(event.kind, EventKind::Repeat { .. }) {
                            return Err(SliceError::SuppressedInput {
                                seq: event.seq,
                                proc: event.proc,
                            });
                        }
                        if identity || options.spec.matches(&event) {
                            accepted.push(event);
                        } else {
                            stats.filtered += 1;
                            probes.events_filtered.inc();
                        }
                    }
                }
            }
        }

        outbuf.clear();
        match &mut suppressor {
            Some(s) => {
                let _span = span_enter(Stage::Suppress);
                for &event in &accepted {
                    s.push(event, &mut outbuf);
                }
                if done {
                    s.finish(&mut outbuf);
                }
            }
            None => outbuf.extend_from_slice(&accepted),
        }
        for event in &outbuf {
            sink(event)?;
        }
        stats.emitted += outbuf.len() as u64;
        probes.events_emitted.add(outbuf.len() as u64);
    }

    if let Some(s) = &suppressor {
        stats.records = s.records();
        stats.suppressed = s.suppressed();
        probes.records.add(stats.records);
        probes.suppressed_events.add(stats.suppressed);
    }
    stats.skipped_blocks = reader.skipped_blocks() as u64;
    stats.skipped_events = reader.skipped_events();
    stats.lost = reader.events_lost();
    probes.blocks_skipped.add(stats.skipped_blocks);
    probes.events_skipped.add(stats.skipped_events);
    debug_assert!(
        stats.conservation_holds(),
        "slice accounting broken: {stats:?}"
    );
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_trace::codec::{write_trace, TraceFormat};
    use ppa_trace::{EventKind, StatementId, Time, Trace, TraceKind};

    fn fixture(events: usize) -> Trace {
        let mut t = Trace::new(TraceKind::Measured);
        for i in 0..events {
            t.push(Event::new(
                Time::from_nanos(i as u64 * 10),
                ProcessorId((i % 4) as u16),
                i as u64,
                EventKind::Statement {
                    stmt: StatementId((i % 3) as u32),
                },
            ));
        }
        t
    }

    fn encode(trace: &Trace, format: TraceFormat) -> Vec<u8> {
        let mut buf = Vec::new();
        write_trace(trace, &mut buf, format).unwrap();
        buf
    }

    fn run(buf: &[u8], options: &SliceOptions) -> Result<(Vec<Event>, SliceStats), SliceError> {
        let mut reader = AnyTraceReader::open(buf).unwrap();
        let mut out = Vec::new();
        let stats = slice_stream(&mut reader, options, &SliceProbes::noop(), |e| {
            out.push(*e);
            Ok(())
        })?;
        Ok((out, stats))
    }

    #[test]
    fn identity_copy_in_both_formats() {
        let trace = fixture(500);
        for format in [TraceFormat::Jsonl, TraceFormat::Binary] {
            let buf = encode(&trace, format);
            let (out, stats) = run(&buf, &SliceOptions::default()).unwrap();
            assert_eq!(out, trace.events());
            assert_eq!(stats.emitted, 500);
            assert_eq!(stats.filtered, 0);
            assert!(stats.conservation_holds());
        }
    }

    #[test]
    fn window_slice_accounts_exactly() {
        let trace = fixture(10_000);
        for format in [TraceFormat::Jsonl, TraceFormat::Binary] {
            let buf = encode(&trace, format);
            let options = SliceOptions {
                spec: SliceSpec::parse("window=10000..20000 procs=0,2").unwrap(),
                suppress: false,
                use_skip_index: true,
            };
            let (out, stats) = run(&buf, &options).unwrap();
            assert!(out.iter().all(|e| {
                e.time >= Time::from_nanos(10_000)
                    && e.time < Time::from_nanos(20_000)
                    && e.proc.0 % 2 == 0
            }));
            assert_eq!(stats.expected, 10_000);
            assert!(stats.conservation_holds(), "{stats:?}");
            assert_eq!(stats.emitted, out.len() as u64);
            if format == TraceFormat::Binary {
                assert!(stats.skipped_blocks > 0, "skip index unused: {stats:?}");
                assert!(stats.skipped_events > 0);
            }
        }
    }

    #[test]
    fn suppression_accounts_logical_events() {
        let trace = fixture(5_000); // stmt ids cycle 0,1,2 per proc: repetitive
        let buf = encode(&trace, TraceFormat::Binary);
        let options = SliceOptions {
            spec: SliceSpec::default(),
            suppress: true,
            use_skip_index: false,
        };
        let (out, stats) = run(&buf, &options).unwrap();
        assert!(stats.records > 0, "{stats:?}");
        assert!(stats.suppressed > 0);
        assert!((out.len() as u64) < 5_000);
        assert!(stats.conservation_holds(), "{stats:?}");
    }

    #[test]
    fn filtering_suppressed_input_is_refused() {
        let mut trace = Trace::new(TraceKind::Measured);
        trace.push(Event::new(
            Time::from_nanos(0),
            ProcessorId(0),
            0,
            EventKind::Statement {
                stmt: StatementId(0),
            },
        ));
        trace.push(Event::new(
            Time::from_nanos(10),
            ProcessorId(0),
            1,
            EventKind::Repeat {
                len: 1,
                count: 3,
                dt_ns: 10,
                dseq: 1,
                dfield: 0,
            },
        ));
        let buf = encode(&trace, TraceFormat::Binary);

        // Identity copy passes the record through...
        let (out, _) = run(&buf, &SliceOptions::default()).unwrap();
        assert_eq!(out.len(), 2);

        // ...but filtering or re-suppressing refuses it.
        for options in [
            SliceOptions {
                spec: SliceSpec::parse("procs=0").unwrap(),
                suppress: false,
                use_skip_index: false,
            },
            SliceOptions {
                spec: SliceSpec::default(),
                suppress: true,
                use_skip_index: false,
            },
        ] {
            match run(&buf, &options) {
                Err(SliceError::SuppressedInput { seq: 1, .. }) => {}
                other => panic!("expected SuppressedInput, got {other:?}"),
            }
        }
    }
}
