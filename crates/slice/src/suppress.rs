//! Redundancy suppression: run-length detection of repeated
//! per-processor event patterns.
//!
//! The suppressor consumes events in stream (total) order and re-emits
//! them in the same order, replacing each detected run of repeated
//! pattern occurrences with one [`EventKind::Repeat`] record. The
//! record stands at the position of the first suppressed event and
//! carries the pattern length, occurrence count, and the per-occurrence
//! strides; [`Event::repeat_shifted`] defines the exact occurrence
//! arithmetic, which the expander in `ppa-core` inverts, making
//! suppress-then-expand an identity.
//!
//! ## Mechanics
//!
//! Events enter a global bounded FIFO of *slots*; each slot's fate
//! starts [`Fate::Pending`] and is resolved to keep, drop, or
//! become-the-record as detection progresses. Output is drained from
//! the FIFO front as soon as fates settle, so ordering is preserved by
//! construction and latency is bounded by [`FIFO_BOUND`].
//!
//! Per processor, a detector keeps the most recent logical events
//! (at most `2 *` [`REPEAT_MAX_PATTERN`]). With no active run it looks,
//! after every arrival, for the smallest pattern length `L` such that
//! the last `2L` events form two occurrences under a uniform
//! `(dt, dseq, dfield)` stride. A fresh candidate starts *on
//! probation*: it claims nothing until one further event matches its
//! third occurrence, so a spurious short candidate (a repeated element
//! inside a longer pattern) is abandoned with the detection window
//! intact instead of wrecking detection of the real period. With a
//! committed run the detector matches arrivals against the next
//! expected occurrence exactly; any mismatch closes the run.

use ppa_trace::{Event, EventKind, REPEAT_MAX_PATTERN};
use std::collections::{BTreeMap, VecDeque};

/// Detector window: two full occurrences of the longest pattern.
const RECENT_CAP: usize = 2 * REPEAT_MAX_PATTERN;

/// Upper bound on buffered (fate-pending) slots. When the FIFO grows
/// past this, the front slot's fate is forced (candidate events are
/// kept, an open record is closed at its current count) so the stream
/// keeps flowing even if some processor goes silent mid-candidate.
pub const FIFO_BOUND: usize = 1 << 16;

/// What happens to a buffered event when it leaves the FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    /// Not yet decided; blocks the FIFO front.
    Pending,
    /// Emitted as-is.
    Keep,
    /// Suppressed (represented by some record upstream of it).
    Drop,
    /// Replaced by a repeat record; blocks the front while `open`.
    Record {
        len: u32,
        count: u32,
        dt_ns: u64,
        dseq: u64,
        dfield: i64,
        open: bool,
    },
}

#[derive(Debug)]
struct Slot {
    event: Event,
    fate: Fate,
}

/// A recent logical event on one processor. `slot` is `Some` only
/// while the physical copy is still fate-pending in the FIFO (and may
/// therefore still be claimed by a starting run); synthetic entries
/// reconstructed after a run closes have no slot.
#[derive(Debug)]
struct RecentEntry {
    event: Event,
    slot: Option<u64>,
}

#[derive(Debug)]
struct Run {
    /// The kept occurrence the record's pattern refers to, in order.
    pattern: Vec<Event>,
    dt_ns: u64,
    dseq: u64,
    dfield: i64,
    /// Completed suppressed occurrences so far (the record's `count`).
    count: u32,
    /// Slots of the first suppressed occurrence; `occ_slots[0]` holds
    /// the event the record will replace. Claimed only on commit.
    occ_slots: Vec<u64>,
    /// Progress within the next (not yet complete) occurrence.
    matched: usize,
    /// Slots of the partial occurrence in progress.
    cur_slots: Vec<u64>,
    /// False while the run is on probation: a candidate two-occurrence
    /// match that has not yet claimed any slots. Probation exists so a
    /// spurious short candidate (a repeated element *inside* a longer
    /// pattern) can be abandoned without wrecking the detection window
    /// for the real, longer pattern.
    committed: bool,
}

#[derive(Debug, Default)]
struct Detector {
    recent: VecDeque<RecentEntry>,
    run: Option<Run>,
}

/// The per-occurrence stride between two candidate pattern events, if
/// they are stride-compatible: same kind, same non-shifting
/// identifiers, non-decreasing time and sequence. `dfield` is `None`
/// for kinds without an integer field (those must match exactly).
fn stride_between(a: &Event, b: &Event) -> Option<(u64, u64, Option<i64>)> {
    if b.time < a.time || b.seq < a.seq {
        return None;
    }
    let dt = b.time.as_nanos() - a.time.as_nanos();
    let dseq = b.seq - a.seq;
    use EventKind as K;
    let dfield = match (&a.kind, &b.kind) {
        (K::ProgramBegin, K::ProgramBegin) | (K::ProgramEnd, K::ProgramEnd) => None,
        (K::LoopBegin { loop_id: l1 }, K::LoopBegin { loop_id: l2 })
        | (K::LoopEnd { loop_id: l1 }, K::LoopEnd { loop_id: l2 })
            if l1 == l2 =>
        {
            None
        }
        (
            K::IterationBegin {
                loop_id: l1,
                iter: i1,
            },
            K::IterationBegin {
                loop_id: l2,
                iter: i2,
            },
        )
        | (
            K::IterationEnd {
                loop_id: l1,
                iter: i1,
            },
            K::IterationEnd {
                loop_id: l2,
                iter: i2,
            },
        ) if l1 == l2 => Some(i2.wrapping_sub(*i1) as i64),
        (K::Statement { stmt: s1 }, K::Statement { stmt: s2 }) if s1 == s2 => None,
        (K::Advance { var: v1, tag: t1 }, K::Advance { var: v2, tag: t2 })
        | (K::AwaitBegin { var: v1, tag: t1 }, K::AwaitBegin { var: v2, tag: t2 })
        | (K::AwaitEnd { var: v1, tag: t1 }, K::AwaitEnd { var: v2, tag: t2 })
            if v1 == v2 =>
        {
            Some(t2.0.wrapping_sub(t1.0))
        }
        (K::BarrierEnter { barrier: b1 }, K::BarrierEnter { barrier: b2 })
        | (K::BarrierExit { barrier: b1 }, K::BarrierExit { barrier: b2 })
            if b1 == b2 =>
        {
            None
        }
        // Episode ids are identities (repeat shifting leaves them
        // alone), so episode events only repeat on the *same* object:
        // a critical-section loop on one lock compresses, a fork/join
        // wave over fresh task ids does not.
        (K::LockAcquire { lock: l1 }, K::LockAcquire { lock: l2 })
        | (K::LockRelease { lock: l1 }, K::LockRelease { lock: l2 })
            if l1 == l2 =>
        {
            None
        }
        (K::SemAcquire { sem: s1 }, K::SemAcquire { sem: s2 })
        | (K::SemRelease { sem: s1 }, K::SemRelease { sem: s2 })
            if s1 == s2 =>
        {
            None
        }
        (K::TaskFork { task: t1 }, K::TaskFork { task: t2 })
        | (K::TaskJoin { task: t1 }, K::TaskJoin { task: t2 })
            if t1 == t2 =>
        {
            None
        }
        _ => return None,
    };
    Some((dt, dseq, dfield))
}

/// The uniform stride across all `len` pairs `recent[start+j]` →
/// `recent[start+len+j]`, or `None` if the two halves are not one
/// pattern occurrence apart. Field-less pairs contribute no `dfield`
/// constraint; if no pair has a field the stride's `dfield` is 0.
fn uniform_stride(
    recent: &VecDeque<RecentEntry>,
    start: usize,
    len: usize,
) -> Option<(u64, u64, i64)> {
    let mut stride: Option<(u64, u64)> = None;
    let mut dfield: Option<i64> = None;
    for j in 0..len {
        let (dt, dseq, df) =
            stride_between(&recent[start + j].event, &recent[start + len + j].event)?;
        match stride {
            None => stride = Some((dt, dseq)),
            Some(s) if s != (dt, dseq) => return None,
            Some(_) => {}
        }
        if let Some(df) = df {
            match dfield {
                None => dfield = Some(df),
                Some(d) if d != df => return None,
                Some(_) => {}
            }
        }
    }
    let (dt, dseq) = stride?;
    Some((dt, dseq, dfield.unwrap_or(0)))
}

/// Streaming run-length suppressor. Feed events in stream order with
/// [`Suppressor::push`]; call [`Suppressor::finish`] once at the end to
/// flush. Both append output events (kept events and repeat records, in
/// the input's order) to the caller's buffer.
#[derive(Debug, Default)]
pub struct Suppressor {
    fifo: VecDeque<Slot>,
    /// Slot id of `fifo[0]`; slot ids increase by one per push, ever.
    head_id: u64,
    detectors: BTreeMap<u16, Detector>,
    records: u64,
    suppressed: u64,
}

impl Suppressor {
    /// A fresh suppressor with no history.
    pub fn new() -> Suppressor {
        Suppressor::default()
    }

    /// Repeat records emitted so far (drained ones only).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Events suppressed so far — the logical events the emitted and
    /// in-progress records stand for.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    fn set_fate(&mut self, slot: u64, fate: Fate) {
        let idx = (slot - self.head_id) as usize;
        self.fifo[idx].fate = fate;
    }

    /// Accepts the next event in stream order; appends any events whose
    /// fate has settled to `out`.
    ///
    /// Must not be fed [`EventKind::Repeat`] records — the slice engine
    /// rejects those before suppression (suppressed input must be
    /// expanded first).
    pub fn push(&mut self, event: Event, out: &mut Vec<Event>) {
        debug_assert!(
            !matches!(event.kind, EventKind::Repeat { .. }),
            "repeat records must be expanded before re-suppression"
        );
        let id = self.head_id + self.fifo.len() as u64;
        self.fifo.push_back(Slot {
            event,
            fate: Fate::Pending,
        });

        let proc = event.proc.0;
        let mut det = self.detectors.remove(&proc).unwrap_or_default();
        self.advance_detector(&mut det, event, id);
        self.detectors.insert(proc, det);

        self.drain(out);
        while self.fifo.len() > FIFO_BOUND {
            self.force_front();
            self.drain(out);
        }
    }

    /// Flushes: closes every committed run, keeps every still-pending
    /// candidate, and drains the FIFO completely.
    pub fn finish(&mut self, out: &mut Vec<Event>) {
        let procs: Vec<u16> = self.detectors.keys().copied().collect();
        for proc in procs {
            let mut det = self.detectors.remove(&proc).unwrap();
            match &det.run {
                Some(run) if run.committed => self.close_run(&mut det),
                Some(_) => det.run = None, // probation: nothing claimed
                None => {}
            }
            for entry in det.recent.iter_mut() {
                if let Some(slot) = entry.slot.take() {
                    self.set_fate(slot, Fate::Keep);
                }
            }
            self.detectors.insert(proc, det);
        }
        self.drain(out);
        debug_assert!(self.fifo.is_empty());
    }

    fn advance_detector(&mut self, det: &mut Detector, event: Event, id: u64) {
        if let Some(run) = det.run.as_mut() {
            let expected = run.pattern[run.matched].repeat_shifted(
                run.count as u64 + 1,
                run.dt_ns,
                run.dseq,
                run.dfield,
            );
            if event == expected {
                run.cur_slots.push(id);
                run.matched += 1;
                if !run.committed {
                    self.commit_run(det);
                }
                let run = det.run.as_mut().expect("run survives commit");
                if run.matched == run.pattern.len() {
                    let slots = std::mem::take(&mut run.cur_slots);
                    let n = slots.len() as u64;
                    run.matched = 0;
                    run.count += 1;
                    let full = run.count == u32::MAX;
                    for slot in slots {
                        self.set_fate(slot, Fate::Drop);
                    }
                    self.suppressed += n;
                    if full {
                        self.close_run(det);
                    }
                }
                return;
            }
            if run.committed {
                self.close_run(det);
            } else {
                // Abandoned probation: nothing was claimed, and the
                // candidate's events are still (slotted) in `recent`,
                // so a longer pattern can be detected over them.
                det.run = None;
            }
            // fall through: the mismatching event starts fresh detection
        }

        det.recent.push_back(RecentEntry {
            event,
            slot: Some(id),
        });
        if det.recent.len() > RECENT_CAP {
            let evicted = det.recent.pop_front().unwrap();
            if let Some(slot) = evicted.slot {
                self.set_fate(slot, Fate::Keep);
            }
        }
        self.try_start_run(det);
    }

    /// Looks for the smallest pattern length whose last two occurrences
    /// sit at the tail of `det.recent`; if found, opens a probation run
    /// there. Nothing is claimed until the run commits.
    fn try_start_run(&mut self, det: &mut Detector) {
        let n = det.recent.len();
        for len in 1..=REPEAT_MAX_PATTERN.min(n / 2) {
            // The occurrence to suppress must still be physically
            // claimable; the pattern half only has to exist logically.
            if !(n - len..n).all(|i| det.recent[i].slot.is_some()) {
                continue;
            }
            let Some((dt_ns, dseq, dfield)) = uniform_stride(&det.recent, n - 2 * len, len) else {
                continue;
            };
            let pattern: Vec<Event> = (n - 2 * len..n - len)
                .map(|i| det.recent[i].event)
                .collect();
            let occ_slots: Vec<u64> = (n - len..n).map(|i| det.recent[i].slot.unwrap()).collect();
            det.run = Some(Run {
                pattern,
                dt_ns,
                dseq,
                dfield,
                count: 1,
                occ_slots,
                matched: 0,
                cur_slots: Vec::new(),
                committed: false,
            });
            return;
        }
    }

    /// Ends probation: claims the first suppressed occurrence (record +
    /// drops), removes it from the detection window, and settles every
    /// older still-slotted entry as kept physical output.
    fn commit_run(&mut self, det: &mut Detector) {
        let run = det.run.as_mut().expect("commit without run");
        let len = run.pattern.len();
        self.set_fate(
            run.occ_slots[0],
            Fate::Record {
                len: len as u32,
                count: 1,
                dt_ns: run.dt_ns,
                dseq: run.dseq,
                dfield: run.dfield,
                open: true,
            },
        );
        for &slot in &run.occ_slots[1..] {
            self.set_fate(slot, Fate::Drop);
        }
        self.suppressed += len as u64;
        run.committed = true;
        // The occurrence entries are the tail of `recent` (probation
        // admits no new entries); drop them from the window and settle
        // everything older — the run owns the tail from here on, and
        // `recent` is rebuilt at run close.
        det.recent.truncate(det.recent.len() - len);
        for entry in det.recent.iter_mut() {
            if let Some(slot) = entry.slot.take() {
                self.set_fate(slot, Fate::Keep);
            }
        }
    }

    /// Ends `det`'s committed run: settles the partial occurrence as
    /// kept, finalizes the record, and rebuilds `recent` as the run's
    /// logical tail so later detection sees the same history an
    /// expander would.
    fn close_run(&mut self, det: &mut Detector) {
        let run = det.run.take().expect("close_run without active run");
        debug_assert!(run.committed, "close_run on probation run");
        for &slot in &run.cur_slots {
            self.set_fate(slot, Fate::Keep);
        }
        self.set_fate(
            run.occ_slots[0],
            Fate::Record {
                len: run.pattern.len() as u32,
                count: run.count,
                dt_ns: run.dt_ns,
                dseq: run.dseq,
                dfield: run.dfield,
                open: false,
            },
        );
        self.records += 1;

        let mut recent = VecDeque::with_capacity(RECENT_CAP);
        for p in &run.pattern {
            recent.push_back(RecentEntry {
                event: p.repeat_shifted(run.count as u64, run.dt_ns, run.dseq, run.dfield),
                slot: None,
            });
        }
        for p in run.pattern.iter().take(run.matched) {
            recent.push_back(RecentEntry {
                event: p.repeat_shifted(run.count as u64 + 1, run.dt_ns, run.dseq, run.dfield),
                slot: None,
            });
        }
        while recent.len() > RECENT_CAP {
            recent.pop_front();
        }
        det.recent = recent;
    }

    /// Forces the front slot's fate so a bounded FIFO keeps draining.
    fn force_front(&mut self) {
        let front = self.fifo.front().expect("force_front on empty fifo");
        let proc = front.event.proc.0;
        match front.fate {
            Fate::Pending => {
                let id = self.head_id;
                let mut det = self
                    .detectors
                    .remove(&proc)
                    .expect("pending slot has detector");
                let pos = det
                    .recent
                    .iter()
                    .position(|e| e.slot == Some(id))
                    .expect("pending slot tracked in recent");
                det.recent[pos].slot = None;
                // A probation run whose candidate occurrence loses this
                // slot can no longer claim it; abandon the candidate.
                if det
                    .run
                    .as_ref()
                    .is_some_and(|r| !r.committed && r.occ_slots.contains(&id))
                {
                    det.run = None;
                }
                self.set_fate(id, Fate::Keep);
                self.detectors.insert(proc, det);
            }
            Fate::Record { open: true, .. } => {
                let mut det = self
                    .detectors
                    .remove(&proc)
                    .expect("open record has detector");
                self.close_run(&mut det);
                self.detectors.insert(proc, det);
            }
            // Keep/Drop/closed-Record fates drain on their own; drain()
            // only stops on the two cases above.
            _ => unreachable!("force_front on settled slot"),
        }
    }

    fn drain(&mut self, out: &mut Vec<Event>) {
        while let Some(front) = self.fifo.front() {
            match front.fate {
                Fate::Pending | Fate::Record { open: true, .. } => break,
                Fate::Keep => out.push(front.event),
                Fate::Drop => {}
                Fate::Record {
                    len,
                    count,
                    dt_ns,
                    dseq,
                    dfield,
                    open: false,
                } => out.push(Event {
                    time: front.event.time,
                    proc: front.event.proc,
                    seq: front.event.seq,
                    kind: EventKind::Repeat {
                        len,
                        count,
                        dt_ns,
                        dseq,
                        dfield,
                    },
                }),
            }
            self.fifo.pop_front();
            self.head_id += 1;
        }
    }
}

/// Suppresses a whole in-memory event sequence (stream order assumed).
pub fn suppress_events(events: &[Event]) -> Vec<Event> {
    let mut s = Suppressor::new();
    let mut out = Vec::with_capacity(events.len());
    for &e in events {
        s.push(e, &mut out);
    }
    s.finish(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_trace::{ProcessorId, StatementId, SyncTag, SyncVarId, Time};

    fn stmt(t: u64, proc: u16, seq: u64, s: u32) -> Event {
        Event::new(
            Time::from_nanos(t),
            ProcessorId(proc),
            seq,
            EventKind::Statement {
                stmt: StatementId(s),
            },
        )
    }

    fn advance(t: u64, proc: u16, seq: u64, tag: i64) -> Event {
        Event::new(
            Time::from_nanos(t),
            ProcessorId(proc),
            seq,
            EventKind::Advance {
                var: SyncVarId(0),
                tag: SyncTag(tag),
            },
        )
    }

    #[test]
    fn non_repetitive_stream_passes_through() {
        let events: Vec<Event> = (0..20).map(|i| stmt(i * 10, 0, i, i as u32)).collect();
        assert_eq!(suppress_events(&events), events);
    }

    #[test]
    fn single_event_run_collapses() {
        // 100 identical-stride statement events: 1 kept + 1 record(1x99).
        let events: Vec<Event> = (0..100).map(|i| stmt(i * 10, 0, i, 7)).collect();
        let out = suppress_events(&events);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], events[0]);
        assert_eq!(out[1].time, events[1].time);
        assert_eq!(out[1].seq, events[1].seq);
        assert_eq!(
            out[1].kind,
            EventKind::Repeat {
                len: 1,
                count: 99,
                dt_ns: 10,
                dseq: 1,
                dfield: 0,
            }
        );
    }

    #[test]
    fn multi_event_pattern_with_field_stride() {
        // Pattern [stmt(5), advance(tag+1 per occurrence)] repeated 50x.
        let mut events = Vec::new();
        for r in 0..50u64 {
            events.push(stmt(r * 100, 0, 2 * r, 5));
            events.push(advance(r * 100 + 40, 0, 2 * r + 1, r as i64));
        }
        let out = suppress_events(&events);
        assert_eq!(out.len(), 3, "pattern + record expected, got {out:?}");
        assert_eq!(&out[..2], &events[..2]);
        assert_eq!(
            out[2].kind,
            EventKind::Repeat {
                len: 2,
                count: 49,
                dt_ns: 100,
                dseq: 2,
                dfield: 1,
            }
        );
        assert_eq!(out[2].time, events[2].time);
        assert_eq!(out[2].seq, events[2].seq);
    }

    #[test]
    fn critical_section_loop_collapses_and_task_waves_do_not() {
        use ppa_trace::{LockId, TaskId};
        let lock = |t: u64, seq: u64, acquire: bool| {
            Event::new(
                Time::from_nanos(t),
                ProcessorId(0),
                seq,
                if acquire {
                    EventKind::LockAcquire { lock: LockId(3) }
                } else {
                    EventKind::LockRelease { lock: LockId(3) }
                },
            )
        };
        // [lockA(K3), stmt, lockR(K3)] with uniform stride, 40 rounds.
        let mut events = Vec::new();
        for r in 0..40u64 {
            events.push(lock(r * 100, 3 * r, true));
            events.push(stmt(r * 100 + 30, 0, 3 * r + 1, 9));
            events.push(lock(r * 100 + 60, 3 * r + 2, false));
        }
        let out = suppress_events(&events);
        assert_eq!(out.len(), 4, "pattern + record expected, got {out:?}");
        assert_eq!(&out[..3], &events[..3]);
        assert_eq!(
            out[3].kind,
            EventKind::Repeat {
                len: 3,
                count: 39,
                dt_ns: 100,
                dseq: 3,
                dfield: 0,
            }
        );

        // Fork/join waves use a fresh task id per round; episode ids
        // are identities, so nothing may collapse.
        let forks: Vec<Event> = (0..40u64)
            .map(|r| {
                Event::new(
                    Time::from_nanos(r * 100),
                    ProcessorId(0),
                    r,
                    EventKind::TaskFork {
                        task: TaskId(r as u32),
                    },
                )
            })
            .collect();
        assert_eq!(suppress_events(&forks), forks);
    }

    #[test]
    fn interleaved_processors_suppress_independently() {
        // Two procs, events interleaved in time; each proc is a pure
        // run. Output must keep global order.
        let mut events = Vec::new();
        for i in 0..40u64 {
            events.push(stmt(i * 10, (i % 2) as u16, i, 3));
        }
        let out = suppress_events(&events);
        // Each proc: first event kept, rest collapse into one record.
        assert_eq!(out.len(), 4);
        assert!(out.windows(2).all(|w| w[0].order_key() <= w[1].order_key()));
        let records = out
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Repeat { .. }))
            .count();
        assert_eq!(records, 2);
    }

    #[test]
    fn run_break_resumes_cleanly() {
        // A run, an interloper, then another run: both runs collapse,
        // the interloper survives.
        let mut events = Vec::new();
        let mut seq = 0u64;
        for i in 0..30u64 {
            events.push(stmt(i * 10, 0, seq, 1));
            seq += 1;
        }
        events.push(advance(305, 0, seq, 9));
        seq += 1;
        for i in 0..30u64 {
            events.push(stmt(400 + i * 10, 0, seq, 2));
            seq += 1;
        }
        let out = suppress_events(&events);
        assert!(out
            .iter()
            .any(|e| matches!(e.kind, EventKind::Advance { .. })));
        let records: Vec<_> = out
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Repeat { .. }))
            .collect();
        assert_eq!(records.len(), 2, "{out:?}");
        assert!(out.len() < events.len() / 2);
    }

    #[test]
    fn trivial_one_for_one_candidate_is_abandoned() {
        // Two stride-compatible events then a break: the candidate run
        // never leaves probation, so everything passes through.
        let events = vec![stmt(0, 0, 0, 1), stmt(10, 0, 1, 1), advance(20, 0, 2, 0)];
        assert_eq!(suppress_events(&events), events);
    }

    #[test]
    fn counters_account_for_suppressed_events() {
        let events: Vec<Event> = (0..100).map(|i| stmt(i * 10, 0, i, 7)).collect();
        let mut s = Suppressor::new();
        let mut out = Vec::new();
        for &e in &events {
            s.push(e, &mut out);
        }
        s.finish(&mut out);
        assert_eq!(s.records(), 1);
        assert_eq!(s.suppressed(), 99);
        // physical out + logically suppressed - records == input
        assert_eq!(out.len() as u64 - s.records() + s.suppressed(), 100);
    }

    #[test]
    fn stride_requires_matching_ids() {
        // Same kind, different statement ids: no stride, no suppression.
        let events: Vec<Event> = (0..20).map(|i| stmt(i * 10, 0, i, i as u32 % 2)).collect();
        // stmt ids alternate 0,1 — that IS a repeating 2-pattern.
        let out = suppress_events(&events);
        assert!(out.len() < events.len());
        // But irregular ids suppress nothing:
        let irregular: Vec<Event> = (0..20)
            .map(|i| stmt(i * 10, 0, i, [0, 1, 1, 0][i as usize % 4]))
            .collect();
        let out = suppress_events(&irregular);
        assert!(
            out.iter()
                .filter(|e| matches!(e.kind, EventKind::Repeat { .. }))
                .all(|r| matches!(r.kind, EventKind::Repeat { len, .. } if len == 4)),
            "{out:?}"
        );
    }
}
