//! Slice expressions: the composable predicate layer.
//!
//! A slice expression is a whitespace-separated conjunction of
//! `key=value` clauses (see QUERIES.md for the normative grammar).
//! Each clause narrows the selection; within a clause, set members
//! disjoin. [`SliceSpec::parse`] turns an expression into a
//! [`SliceSpec`]; [`SliceSpec::matches`] evaluates it against one
//! event.

use ppa_trace::{Event, EventKind, Time};
use std::fmt;

/// Every clause keyword the parser accepts, in grammar-table order.
///
/// `scripts/check_protocol_doc.py` pins the QUERIES.md grammar table
/// against this list; extend both together.
pub const CLAUSE_KEYWORDS: &[&str] = &[
    "window", "since", "until", "procs", "kind", "var", "tag", "barrier",
];

/// A set of unsigned identifiers, stored as inclusive ranges.
///
/// Parsed from comma-separated elements, each `INT` or `INT..INT`
/// (inclusive on both ends): `0..3,7` is {0,1,2,3,7}.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdSet {
    ranges: Vec<(u64, u64)>,
}

impl IdSet {
    /// True if `v` falls in any range.
    #[inline]
    pub fn contains(&self, v: u64) -> bool {
        self.ranges.iter().any(|&(lo, hi)| lo <= v && v <= hi)
    }

    fn parse(key: &str, value: &str) -> Result<IdSet, ParseError> {
        let ranges = parse_ranges(key, value, |s| {
            s.parse::<u64>()
                .map_err(|_| bad_value(key, value, "expected an unsigned integer"))
        })?;
        Ok(IdSet { ranges })
    }
}

/// A set of signed synchronization tags, stored as inclusive ranges.
///
/// Same element syntax as [`IdSet`] but over `i64`, so negative tags
/// are expressible: `tag=-3,0..100`. The `..` range separator (rather
/// than `-`) keeps negative bounds unambiguous.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagSet {
    ranges: Vec<(i64, i64)>,
}

impl TagSet {
    /// True if `v` falls in any range.
    #[inline]
    pub fn contains(&self, v: i64) -> bool {
        self.ranges.iter().any(|&(lo, hi)| lo <= v && v <= hi)
    }

    fn parse(key: &str, value: &str) -> Result<TagSet, ParseError> {
        let ranges = parse_ranges(key, value, |s| {
            s.parse::<i64>()
                .map_err(|_| bad_value(key, value, "expected an integer"))
        })?;
        Ok(TagSet { ranges })
    }
}

fn parse_ranges<T: Copy + PartialOrd>(
    key: &str,
    value: &str,
    parse_int: impl Fn(&str) -> Result<T, ParseError>,
) -> Result<Vec<(T, T)>, ParseError> {
    if value.is_empty() {
        return Err(bad_value(key, value, "empty set"));
    }
    let mut ranges = Vec::new();
    for elem in value.split(',') {
        let (lo, hi) = match elem.find("..") {
            Some(dot) => {
                let lo = parse_int(&elem[..dot])?;
                let hi = parse_int(&elem[dot + 2..])?;
                (lo, hi)
            }
            None => {
                let v = parse_int(elem)?;
                (v, v)
            }
        };
        if hi < lo {
            return Err(bad_value(key, value, "range upper bound below lower"));
        }
        ranges.push((lo, hi));
    }
    Ok(ranges)
}

/// The eighteen event-kind mnemonics selectable by a `kind=` clause,
/// each paired with its bit in [`KindSet`]. `repeat` records are
/// container artifacts, not selectable kinds — the engine refuses to
/// filter them.
const KIND_MNEMONICS: &[(&str, u32)] = &[
    ("progB", 1 << 0),
    ("progE", 1 << 1),
    ("loopB", 1 << 2),
    ("loopE", 1 << 3),
    ("iterB", 1 << 4),
    ("iterE", 1 << 5),
    ("stmt", 1 << 6),
    ("advance", 1 << 7),
    ("awaitB", 1 << 8),
    ("awaitE", 1 << 9),
    ("barEnter", 1 << 10),
    ("barExit", 1 << 11),
    ("lockA", 1 << 12),
    ("lockR", 1 << 13),
    ("semP", 1 << 14),
    ("semV", 1 << 15),
    ("taskF", 1 << 16),
    ("taskJ", 1 << 17),
];

const GROUP_SYNC: u32 = (1 << 7) | (1 << 8) | (1 << 9);
const GROUP_BARRIER: u32 = (1 << 10) | (1 << 11);
const GROUP_MARKER: u32 = (1 << 6) - 1; // progB..iterE
const GROUP_LOCK: u32 = (1 << 12) | (1 << 13);
const GROUP_SEM: u32 = (1 << 14) | (1 << 15);
const GROUP_TASK: u32 = (1 << 16) | (1 << 17);

/// A set of event kinds, parsed from comma-separated mnemonics
/// (`kind=stmt,advance`) or the group names `sync`, `barrier`,
/// `marker`, `lock`, `sem`, `task`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KindSet {
    bits: u32,
}

impl KindSet {
    /// True if this set selects `kind`. `Repeat` records never match —
    /// they stand for suppressed events of *other* kinds.
    #[inline]
    pub fn contains(&self, kind: &EventKind) -> bool {
        let bit = match kind {
            EventKind::ProgramBegin => 1 << 0,
            EventKind::ProgramEnd => 1 << 1,
            EventKind::LoopBegin { .. } => 1 << 2,
            EventKind::LoopEnd { .. } => 1 << 3,
            EventKind::IterationBegin { .. } => 1 << 4,
            EventKind::IterationEnd { .. } => 1 << 5,
            EventKind::Statement { .. } => 1 << 6,
            EventKind::Advance { .. } => 1 << 7,
            EventKind::AwaitBegin { .. } => 1 << 8,
            EventKind::AwaitEnd { .. } => 1 << 9,
            EventKind::BarrierEnter { .. } => 1 << 10,
            EventKind::BarrierExit { .. } => 1 << 11,
            EventKind::LockAcquire { .. } => 1 << 12,
            EventKind::LockRelease { .. } => 1 << 13,
            EventKind::SemAcquire { .. } => 1 << 14,
            EventKind::SemRelease { .. } => 1 << 15,
            EventKind::TaskFork { .. } => 1 << 16,
            EventKind::TaskJoin { .. } => 1 << 17,
            EventKind::Repeat { .. } => 0,
        };
        self.bits & bit != 0
    }

    fn parse(value: &str) -> Result<KindSet, ParseError> {
        if value.is_empty() {
            return Err(bad_value("kind", value, "empty set"));
        }
        let mut bits = 0u32;
        for name in value.split(',') {
            bits |= match name {
                "sync" => GROUP_SYNC,
                "barrier" => GROUP_BARRIER,
                "marker" => GROUP_MARKER,
                "lock" => GROUP_LOCK,
                "sem" => GROUP_SEM,
                "task" => GROUP_TASK,
                _ => match KIND_MNEMONICS.iter().find(|(m, _)| *m == name) {
                    Some(&(_, bit)) => bit,
                    None => {
                        return Err(bad_value(
                            "kind",
                            value,
                            "unknown kind mnemonic (see QUERIES.md)",
                        ))
                    }
                },
            };
        }
        Ok(KindSet { bits })
    }
}

/// A slice-expression parse error, with enough context to print a
/// useful one-line diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slice expression: {}", self.msg)
    }
}

impl std::error::Error for ParseError {}

fn bad_value(key: &str, value: &str, why: &str) -> ParseError {
    ParseError {
        msg: format!("clause `{key}={value}`: {why}"),
    }
}

/// Parses `TIME`: a non-negative integer with an optional `ns`, `us`,
/// `ms`, or `s` unit suffix (default `ns`).
fn parse_time(key: &str, value: &str) -> Result<Time, ParseError> {
    let (digits, mult) = if let Some(d) = value.strip_suffix("ns") {
        (d, 1u64)
    } else if let Some(d) = value.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = value.strip_suffix("ms") {
        (d, 1_000_000)
    } else if let Some(d) = value.strip_suffix('s') {
        (d, 1_000_000_000)
    } else {
        (value, 1)
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| bad_value(key, value, "expected TIME (integer + optional ns/us/ms/s)"))?;
    let ns = n
        .checked_mul(mult)
        .ok_or_else(|| bad_value(key, value, "time overflows u64 nanoseconds"))?;
    Ok(Time::from_nanos(ns))
}

/// A parsed, composable slice predicate.
///
/// Every field is a conjunct; `None` means "no constraint". The time
/// window is half-open: `since <= t < until`. The episode-selection
/// clauses (`var`, `tag`, `barrier`) only ever match events that carry
/// the corresponding field — a `var=` clause rejects every
/// non-synchronization event outright.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SliceSpec {
    /// Inclusive lower time bound.
    pub since: Option<Time>,
    /// Exclusive upper time bound.
    pub until: Option<Time>,
    /// Emitting-processor selection.
    pub procs: Option<IdSet>,
    /// Event-kind selection.
    pub kinds: Option<KindSet>,
    /// Synchronization-variable selection (sync events only).
    pub vars: Option<IdSet>,
    /// Synchronization-tag selection (sync events only).
    pub tags: Option<TagSet>,
    /// Barrier-id selection (barrier events only).
    pub barriers: Option<IdSet>,
}

impl SliceSpec {
    /// Parses a slice expression: whitespace-separated `key=value`
    /// clauses, conjoined. Each clause key may appear at most once
    /// (`window` counts as both `since` and `until`). The empty
    /// expression parses to the match-everything spec.
    pub fn parse(expr: &str) -> Result<SliceSpec, ParseError> {
        let mut spec = SliceSpec::default();
        for clause in expr.split_whitespace() {
            let (key, value) = clause.split_once('=').ok_or_else(|| ParseError {
                msg: format!("clause `{clause}` is not of the form key=value"),
            })?;
            let dup = |key: &str| ParseError {
                msg: format!("clause `{key}` given more than once"),
            };
            match key {
                "window" => {
                    let dot = value
                        .find("..")
                        .ok_or_else(|| bad_value(key, value, "expected TIME..TIME"))?;
                    let since = parse_time(key, &value[..dot])?;
                    let until = parse_time(key, &value[dot + 2..])?;
                    if until <= since {
                        return Err(bad_value(key, value, "window is empty (until <= since)"));
                    }
                    if spec.since.replace(since).is_some() {
                        return Err(dup("since"));
                    }
                    if spec.until.replace(until).is_some() {
                        return Err(dup("until"));
                    }
                }
                "since" => {
                    if spec.since.replace(parse_time(key, value)?).is_some() {
                        return Err(dup(key));
                    }
                }
                "until" => {
                    if spec.until.replace(parse_time(key, value)?).is_some() {
                        return Err(dup(key));
                    }
                }
                "procs" => {
                    if spec.procs.replace(IdSet::parse(key, value)?).is_some() {
                        return Err(dup(key));
                    }
                }
                "kind" => {
                    if spec.kinds.replace(KindSet::parse(value)?).is_some() {
                        return Err(dup(key));
                    }
                }
                "var" => {
                    if spec.vars.replace(IdSet::parse(key, value)?).is_some() {
                        return Err(dup(key));
                    }
                }
                "tag" => {
                    if spec.tags.replace(TagSet::parse(key, value)?).is_some() {
                        return Err(dup(key));
                    }
                }
                "barrier" => {
                    if spec.barriers.replace(IdSet::parse(key, value)?).is_some() {
                        return Err(dup(key));
                    }
                }
                _ => {
                    return Err(ParseError {
                        msg: format!(
                            "unknown clause key `{key}` (expected one of {})",
                            CLAUSE_KEYWORDS.join(", ")
                        ),
                    })
                }
            }
        }
        if let (Some(since), Some(until)) = (spec.since, spec.until) {
            if until <= since {
                return Err(ParseError {
                    msg: "window is empty (until <= since)".into(),
                });
            }
        }
        Ok(spec)
    }

    /// True when no clause constrains anything — slicing with this spec
    /// is an identity copy.
    pub fn is_empty(&self) -> bool {
        *self == SliceSpec::default()
    }

    /// True when the spec constrains time (and the skip index can help).
    pub fn has_window(&self) -> bool {
        self.since.is_some() || self.until.is_some()
    }

    /// Evaluates the conjunction against one event.
    pub fn matches(&self, e: &Event) -> bool {
        if self.since.is_some_and(|s| e.time < s) || self.until.is_some_and(|u| e.time >= u) {
            return false;
        }
        if let Some(procs) = &self.procs {
            if !procs.contains(e.proc.0 as u64) {
                return false;
            }
        }
        if let Some(kinds) = &self.kinds {
            if !kinds.contains(&e.kind) {
                return false;
            }
        }
        if let Some(vars) = &self.vars {
            match e.kind.sync_var() {
                Some(v) => {
                    if !vars.contains(v.0 as u64) {
                        return false;
                    }
                }
                None => return false,
            }
        }
        if let Some(tags) = &self.tags {
            match e.kind.sync_tag() {
                Some(t) => {
                    if !tags.contains(t.0) {
                        return false;
                    }
                }
                None => return false,
            }
        }
        if let Some(barriers) = &self.barriers {
            match e.kind {
                EventKind::BarrierEnter { barrier } | EventKind::BarrierExit { barrier } => {
                    if !barriers.contains(barrier.0 as u64) {
                        return false;
                    }
                }
                _ => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_trace::{BarrierId, ProcessorId, StatementId, SyncTag, SyncVarId};

    fn ev(t: u64, proc: u16, kind: EventKind) -> Event {
        Event::new(Time::from_nanos(t), ProcessorId(proc), 0, kind)
    }

    fn stmt(t: u64, proc: u16) -> Event {
        ev(
            t,
            proc,
            EventKind::Statement {
                stmt: StatementId(1),
            },
        )
    }

    #[test]
    fn empty_expression_matches_everything() {
        let spec = SliceSpec::parse("").unwrap();
        assert!(spec.is_empty());
        assert!(spec.matches(&stmt(0, 0)));
        assert!(spec.matches(&ev(u64::MAX, 7, EventKind::ProgramEnd)));
    }

    #[test]
    fn window_is_half_open() {
        let spec = SliceSpec::parse("window=100..200").unwrap();
        assert!(!spec.matches(&stmt(99, 0)));
        assert!(spec.matches(&stmt(100, 0)));
        assert!(spec.matches(&stmt(199, 0)));
        assert!(!spec.matches(&stmt(200, 0)));
    }

    #[test]
    fn time_unit_suffixes() {
        let spec = SliceSpec::parse("since=2us until=1ms").unwrap();
        assert_eq!(spec.since, Some(Time::from_nanos(2_000)));
        assert_eq!(spec.until, Some(Time::from_nanos(1_000_000)));
        let spec = SliceSpec::parse("since=1s").unwrap();
        assert_eq!(spec.since, Some(Time::from_nanos(1_000_000_000)));
        assert_eq!(
            SliceSpec::parse("since=5ns").unwrap().since,
            SliceSpec::parse("since=5").unwrap().since,
        );
    }

    #[test]
    fn procs_ranges_and_elements() {
        let spec = SliceSpec::parse("procs=0..3,7").unwrap();
        for p in [0, 1, 2, 3, 7] {
            assert!(spec.matches(&stmt(0, p)), "P{p} should match");
        }
        for p in [4, 5, 6, 8] {
            assert!(!spec.matches(&stmt(0, p)), "P{p} should not match");
        }
    }

    #[test]
    fn kind_mnemonics_and_groups() {
        let spec = SliceSpec::parse("kind=stmt,barEnter").unwrap();
        assert!(spec.matches(&stmt(0, 0)));
        assert!(spec.matches(&ev(
            0,
            0,
            EventKind::BarrierEnter {
                barrier: BarrierId(0)
            }
        )));
        assert!(!spec.matches(&ev(0, 0, EventKind::ProgramBegin)));

        let sync = SliceSpec::parse("kind=sync").unwrap();
        assert!(sync.matches(&ev(
            0,
            0,
            EventKind::Advance {
                var: SyncVarId(0),
                tag: SyncTag(0)
            }
        )));
        assert!(!sync.matches(&stmt(0, 0)));

        let marker = SliceSpec::parse("kind=marker").unwrap();
        assert!(marker.matches(&ev(0, 0, EventKind::ProgramBegin)));
        assert!(!marker.matches(&stmt(0, 0)));
    }

    #[test]
    fn episode_groups_select_their_pairs() {
        use ppa_trace::{LockId, SemId, TaskId};
        let acquire = ev(0, 0, EventKind::LockAcquire { lock: LockId(1) });
        let release = ev(0, 0, EventKind::LockRelease { lock: LockId(1) });
        let sem_p = ev(0, 0, EventKind::SemAcquire { sem: SemId(2) });
        let sem_v = ev(0, 0, EventKind::SemRelease { sem: SemId(2) });
        let fork = ev(0, 0, EventKind::TaskFork { task: TaskId(3) });
        let join = ev(0, 0, EventKind::TaskJoin { task: TaskId(3) });

        let lock = SliceSpec::parse("kind=lock").unwrap();
        assert!(lock.matches(&acquire) && lock.matches(&release));
        assert!(!lock.matches(&sem_p) && !lock.matches(&fork));

        let sem = SliceSpec::parse("kind=sem").unwrap();
        assert!(sem.matches(&sem_p) && sem.matches(&sem_v));
        assert!(!sem.matches(&release));

        let task = SliceSpec::parse("kind=task").unwrap();
        assert!(task.matches(&fork) && task.matches(&join));
        assert!(!task.matches(&sem_v) && !task.matches(&stmt(0, 0)));

        // Individual mnemonics pick one side of a pair, and the
        // `sync` group stays advance/await-only.
        let one = SliceSpec::parse("kind=lockA,semV,taskJ").unwrap();
        assert!(one.matches(&acquire) && one.matches(&sem_v) && one.matches(&join));
        assert!(!one.matches(&release) && !one.matches(&sem_p) && !one.matches(&fork));
        let sync = SliceSpec::parse("kind=sync").unwrap();
        for e in [&acquire, &release, &sem_p, &sem_v, &fork, &join] {
            assert!(!sync.matches(e));
        }
    }

    #[test]
    fn repeat_records_never_match_a_kind_clause() {
        let spec = SliceSpec::parse("kind=stmt,sync,barrier,marker").unwrap();
        let rec = ev(
            0,
            0,
            EventKind::Repeat {
                len: 1,
                count: 1,
                dt_ns: 0,
                dseq: 1,
                dfield: 0,
            },
        );
        assert!(!spec.matches(&rec));
    }

    #[test]
    fn episode_selection_rejects_events_without_the_field() {
        let spec = SliceSpec::parse("var=0").unwrap();
        assert!(!spec.matches(&stmt(0, 0)));
        assert!(spec.matches(&ev(
            0,
            0,
            EventKind::AwaitBegin {
                var: SyncVarId(0),
                tag: SyncTag(5)
            }
        )));

        let tags = SliceSpec::parse("tag=-3,0..100").unwrap();
        assert!(tags.matches(&ev(
            0,
            0,
            EventKind::Advance {
                var: SyncVarId(1),
                tag: SyncTag(-3)
            }
        )));
        assert!(!tags.matches(&ev(
            0,
            0,
            EventKind::Advance {
                var: SyncVarId(1),
                tag: SyncTag(-2)
            }
        )));
        assert!(!tags.matches(&stmt(0, 0)));

        let bars = SliceSpec::parse("barrier=2..4").unwrap();
        assert!(bars.matches(&ev(
            0,
            0,
            EventKind::BarrierExit {
                barrier: BarrierId(3)
            }
        )));
        assert!(!bars.matches(&ev(
            0,
            0,
            EventKind::BarrierExit {
                barrier: BarrierId(5)
            }
        )));
        assert!(!bars.matches(&stmt(0, 0)));
    }

    #[test]
    fn clauses_conjoin() {
        let spec = SliceSpec::parse("window=10..20 procs=1 kind=stmt").unwrap();
        assert!(spec.matches(&stmt(15, 1)));
        assert!(!spec.matches(&stmt(15, 2)));
        assert!(!spec.matches(&stmt(25, 1)));
        assert!(!spec.matches(&ev(15, 1, EventKind::ProgramBegin)));
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "bogus=1",
            "procs",
            "window=20..10",
            "window=5..5",
            "since=10 until=5",
            "window=1..2 since=0",
            "procs=1 procs=2",
            "procs=",
            "procs=3..1",
            "procs=-1",
            "tag=x",
            "kind=nope",
            "since=10xs",
            "since=99999999999999999999",
        ] {
            assert!(SliceSpec::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn keyword_list_matches_parser() {
        // Every advertised keyword parses with a plausible value...
        for (kw, val) in [
            ("window", "1..2"),
            ("since", "1"),
            ("until", "2"),
            ("procs", "0"),
            ("kind", "stmt"),
            ("var", "0"),
            ("tag", "0"),
            ("barrier", "0"),
        ] {
            assert!(CLAUSE_KEYWORDS.contains(&kw));
            assert!(SliceSpec::parse(&format!("{kw}={val}")).is_ok());
        }
        assert_eq!(CLAUSE_KEYWORDS.len(), 8);
    }
}
