//! Observability probes for the slice engine (`ppa_slice_*` metrics).

use ppa_obs::{Counter, Registry};

/// Counters the slice engine updates as it filters, suppresses, and
/// skips. The default ([`SliceProbes::noop`]) is fully detached;
/// attach real metrics with [`SliceProbes::register`].
#[derive(Clone, Debug, Default)]
pub struct SliceProbes {
    /// Physical events written to the slice output, repeat records
    /// included (`ppa_slice_events_emitted_total`).
    pub events_emitted: Counter,
    /// Events read and rejected by the slice predicate
    /// (`ppa_slice_events_filtered_total`).
    pub events_filtered: Counter,
    /// Events skipped *undecoded* via the binary block skip index
    /// (`ppa_slice_events_skipped_total`).
    pub events_skipped: Counter,
    /// Blocks skipped undecoded via the skip index
    /// (`ppa_slice_blocks_skipped_total`).
    pub blocks_skipped: Counter,
    /// Logical events collapsed into repeat records
    /// (`ppa_slice_suppressed_events_total`).
    pub suppressed_events: Counter,
    /// Repeat records emitted (`ppa_slice_records_total`).
    pub records: Counter,
}

impl SliceProbes {
    /// Detached probes: every update is discarded.
    pub fn noop() -> Self {
        SliceProbes::default()
    }

    /// Registers the slice metrics on `registry`.
    pub fn register(registry: &Registry) -> Self {
        SliceProbes {
            events_emitted: registry.counter(
                "ppa_slice_events_emitted_total",
                "Physical events written to the slice output (repeat records included).",
            ),
            events_filtered: registry.counter(
                "ppa_slice_events_filtered_total",
                "Events rejected by the slice predicate.",
            ),
            events_skipped: registry.counter(
                "ppa_slice_events_skipped_total",
                "Events skipped undecoded via the binary block skip index.",
            ),
            blocks_skipped: registry.counter(
                "ppa_slice_blocks_skipped_total",
                "Binary blocks skipped undecoded via the skip index.",
            ),
            suppressed_events: registry.counter(
                "ppa_slice_suppressed_events_total",
                "Logical events collapsed into repeat records.",
            ),
            records: registry.counter(
                "ppa_slice_records_total",
                "Repeat records emitted by redundancy suppression.",
            ),
        }
    }
}
