//! Suppression round-trip identity: for any totally ordered event
//! stream, expanding the suppressed stream reproduces the input
//! exactly. The suppressor lives in this crate; the expander lives in
//! `ppa-core`; [`ppa_trace::Event::repeat_shifted`] is their shared
//! definition of occurrence arithmetic, and these tests are the fence
//! around that contract.

use ppa_core::expand_events;
use ppa_slice::suppress_events;
use ppa_trace::{Event, EventKind, LoopId, ProcessorId, StatementId, SyncTag, SyncVarId, Time};
use proptest::prelude::*;

/// A small closed kind vocabulary: few distinct ids so random streams
/// contain accidental repetition, which is exactly what stresses run
/// detection and closure.
fn kind_strategy() -> impl Strategy<Value = EventKind> {
    prop_oneof![
        Just(EventKind::ProgramBegin),
        Just(EventKind::ProgramEnd),
        (0u32..2).prop_map(|s| EventKind::Statement {
            stmt: StatementId(s)
        }),
        (0u32..2, 0u64..3).prop_map(|(l, i)| EventKind::IterationBegin {
            loop_id: LoopId(l),
            iter: i
        }),
        (0u32..2, -2i64..3).prop_map(|(v, t)| EventKind::Advance {
            var: SyncVarId(v),
            tag: SyncTag(t)
        }),
        (0u32..2, -2i64..3).prop_map(|(v, t)| EventKind::AwaitBegin {
            var: SyncVarId(v),
            tag: SyncTag(t)
        }),
    ]
}

/// Arbitrary totally ordered streams: cumulative times, sequential
/// seqs, a handful of processors.
fn stream_strategy() -> impl Strategy<Value = Vec<Event>> {
    proptest::collection::vec((0u64..3, 0u16..3, kind_strategy()), 0..400).prop_map(|steps| {
        let mut t = 0u64;
        steps
            .into_iter()
            .enumerate()
            .map(|(i, (dt, proc, kind))| {
                t += dt;
                Event::new(Time::from_nanos(t), ProcessorId(proc), i as u64, kind)
            })
            .collect()
    })
}

/// Deliberately repetitive streams: one processor emitting pattern
/// blocks with uniform strides, the regime suppression targets.
fn repetitive_strategy() -> impl Strategy<Value = Vec<Event>> {
    let block = (
        proptest::collection::vec(kind_strategy(), 1..5), // pattern
        1usize..40,                                       // occurrences
        1u64..5,                                          // dt per occurrence step
    );
    proptest::collection::vec(block, 1..5).prop_map(|blocks| {
        let mut events = Vec::new();
        let mut t = 0u64;
        let mut seq = 0u64;
        for (pattern, occurrences, dt) in blocks {
            for _ in 0..occurrences {
                for kind in &pattern {
                    events.push(Event::new(Time::from_nanos(t), ProcessorId(0), seq, *kind));
                    t += dt;
                    seq += 1;
                }
            }
        }
        events
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// expand(suppress(s)) == s for arbitrary streams.
    #[test]
    fn random_stream_round_trips(events in stream_strategy()) {
        let suppressed = suppress_events(&events);
        let expanded = expand_events(&suppressed).unwrap();
        prop_assert_eq!(&expanded, &events);
    }

    /// Same identity on streams built from explicit pattern repetition —
    /// and there suppression must actually shrink the stream.
    #[test]
    fn repetitive_stream_round_trips_and_shrinks(events in repetitive_strategy()) {
        let suppressed = suppress_events(&events);
        let expanded = expand_events(&suppressed).unwrap();
        prop_assert_eq!(&expanded, &events);
        if events.len() >= 32 {
            prop_assert!(
                suppressed.len() < events.len(),
                "no suppression on {} repetitive events", events.len()
            );
        }
    }

    /// The suppressed stream stays totally ordered (records occupy the
    /// slot of the first event they suppress).
    #[test]
    fn suppressed_stream_is_totally_ordered(events in stream_strategy()) {
        let suppressed = suppress_events(&events);
        prop_assert!(suppressed
            .windows(2)
            .all(|w| w[0].order_key() <= w[1].order_key()));
    }
}
