//! Seeded episode-scenario fixtures: write one measured trace per
//! scenario family (spinlock, semaphore, fork/join) as JSONL, for CI
//! smoke tests that need a lock-bearing trace on disk.
//!
//! ```text
//! cargo run --release --example episode_scenarios
//! ```

use ppa::sim::{scenario_trace, ScenarioConfig, ScenarioFamily};
use ppa::trace::{
    write_jsonl, Event, EventKind, LockId, ProcessorId, StatementId, Time, Trace, TraceKind,
};

fn main() {
    for family in ScenarioFamily::ALL {
        let trace = scenario_trace(0xE9150DE, &ScenarioConfig::small(family));
        let path = format!("/tmp/ppa_scenario_{family}.jsonl");
        let file = std::fs::File::create(&path).expect("create scenario fixture");
        write_jsonl(&trace, file).expect("write scenario fixture");
        println!("{path}: {} events over {}", trace.len(), trace.total_time());
    }

    // A perfectly periodic critical-section loop: unlike the jittered
    // scenarios above, this fixture's repeated per-processor pattern
    // collapses under `ppa slice --suppress`, so it feeds the
    // suppress -> expand -> analyze round-trip smoke test.
    let mut events = Vec::new();
    for r in 0..64u64 {
        let t = 100_000 + r * 40_000;
        let ev = |dt: u64, ds: u64, kind: EventKind| {
            let proc = ProcessorId((ds == 3) as u16);
            Event::new(Time::from_nanos(t + dt), proc, 4 * r + ds, kind)
        };
        events.push(ev(0, 0, EventKind::LockAcquire { lock: LockId(7) }));
        events.push(ev(
            10_000,
            1,
            EventKind::Statement {
                stmt: StatementId(5),
            },
        ));
        events.push(ev(20_000, 2, EventKind::LockRelease { lock: LockId(7) }));
        events.push(ev(
            30_000,
            3,
            EventKind::Statement {
                stmt: StatementId(9),
            },
        ));
    }
    let trace = Trace::from_events(TraceKind::Measured, events);
    let path = "/tmp/ppa_lock_periodic.jsonl";
    let file = std::fs::File::create(path).expect("create periodic lock fixture");
    write_jsonl(&trace, file).expect("write periodic lock fixture");
    println!("{path}: {} events over {}", trace.len(), trace.total_time());
}
