//! Quickstart: measure a DOACROSS loop, then recover its actual
//! performance from the perturbed trace.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The flow below is the paper in miniature:
//! 1. describe a parallel loop with a cross-iteration dependence;
//! 2. simulate it *without* instrumentation (the unknowable-in-practice
//!    ground truth the simulator gives us for free);
//! 3. simulate it *with* full tracing — the measured run is several times
//!    slower and its waiting pattern is distorted;
//! 4. apply event-based perturbation analysis to the measured trace and
//!    compare all three.

use ppa::experiments::experiment_config;
use ppa::prelude::*;

fn main() {
    // 1. A DOACROSS loop: 800ns of independent work per iteration, then a
    //    60ns critical-section update ordered by advance/await (iteration
    //    i waits for iteration i-1).
    let mut builder = ProgramBuilder::new("quickstart");
    let v = builder.sync_var();
    let program = builder
        .serial([("setup", 2_000u64)])
        .doacross(1, 256, |body| {
            body.compute("independent work", 800)
                .await_var(v, -1)
                .compute("shared update", 60)
                .advance(v)
                .compute("store", 200)
        })
        .serial([("teardown", 2_000u64)])
        .build()
        .expect("program is well-formed");

    let cfg = experiment_config();

    // 2. Ground truth.
    let actual = run_actual(&program, &cfg).expect("simulation succeeds");
    println!("actual total time:       {}", actual.trace.total_time());

    // 3. Measured run under full statement + synchronization tracing.
    let plan = InstrumentationPlan::full_with_sync();
    let measured = run_measured(&program, &plan, &cfg).expect("simulation succeeds");
    let slowdown = measured.trace.total_time().ratio(actual.trace.total_time());
    println!(
        "measured total time:     {}   ({slowdown:.2}x slowdown, {} events)",
        measured.trace.total_time(),
        measured.trace.len()
    );

    // 4. Event-based perturbation analysis.
    let approx = event_based(&measured.trace, &cfg.overheads).expect("trace is feasible");
    let accuracy = approx.total_time().ratio(actual.trace.total_time());
    println!(
        "approximated total time: {}   ({:+.2}% error vs actual)",
        approx.total_time(),
        (accuracy - 1.0) * 100.0
    );

    // Compare with the naive model that ignores dependencies.
    let naive = time_based(&measured.trace, &cfg.overheads);
    let naive_ratio = naive.total_time().ratio(actual.trace.total_time());
    println!(
        "time-based (naive):      {}   ({:+.2}% error vs actual)",
        naive.total_time(),
        (naive_ratio - 1.0) * 100.0
    );

    // Waiting structure of the approximated execution.
    println!("\napproximated per-processor waiting:");
    for p in 0..cfg.processors {
        let w = approx.sync_wait(ProcessorId(p as u16));
        println!("  P{p}: {w}");
    }
}
