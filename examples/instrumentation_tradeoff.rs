//! The Instrumentation Uncertainty Principle, quantified — and its
//! apparent violation.
//!
//! ```text
//! cargo run --release --example instrumentation_tradeoff
//! ```
//!
//! The paper's §1 states that data volume and accuracy are antithetical;
//! §5.2 then shows the twist: instrumenting *more* (adding
//! synchronization events on top of full statement tracing) produces
//! *better* approximations, because the extra events carry exactly the
//! semantic information perturbation analysis needs. This example sweeps
//! instrumentation scope on loop 3 and prints intrusion vs. accuracy for
//! the best analysis each scope permits.

use ppa::experiments::experiment_config;
use ppa::prelude::*;

fn main() {
    let cfg = experiment_config();
    let program = ppa::lfk::doacross_graph(3).expect("loop 3 exists");
    let actual = run_actual(&program, &cfg).expect("simulation succeeds");
    let actual_time = actual.trace.total_time();

    // The loop's statement ids, for selective plans.
    let body_ids: Vec<_> = program
        .loops()
        .next()
        .unwrap()
        .body
        .iter()
        .map(|s| s.id)
        .collect();

    struct Scope {
        name: &'static str,
        plan: InstrumentationPlan,
    }
    let scopes = vec![
        Scope {
            name: "none",
            plan: InstrumentationPlan::none(),
        },
        Scope {
            name: "half the statements",
            plan: {
                let mut p = InstrumentationPlan::selective(
                    body_ids.iter().copied().step_by(2).collect::<Vec<_>>(),
                );
                p.sync_ops = false;
                p.barriers = false;
                p
            },
        },
        Scope {
            name: "all statements",
            plan: InstrumentationPlan::full_statements(),
        },
        Scope {
            name: "statements + sync",
            plan: InstrumentationPlan::full_with_sync(),
        },
    ];

    println!("loop 3, actual time {actual_time}\n");
    println!(
        "{:<22} {:>8} {:>10} {:>12} {:>14}",
        "instrumentation", "events", "slowdown", "best model", "approx error"
    );
    for scope in scopes {
        let measured = run_measured(&program, &scope.plan, &cfg).expect("simulation succeeds");
        let slowdown = measured.trace.total_time().ratio(actual_time);

        // The richest analysis the recorded events allow.
        let (model, approx) = if scope.plan.sync_ops {
            let a = event_based(&measured.trace, &cfg.overheads).expect("feasible");
            ("event-based", a.total_time())
        } else if scope.plan.statements {
            (
                "time-based",
                time_based(&measured.trace, &cfg.overheads).total_time(),
            )
        } else {
            // Nothing recorded: no analysis possible; the "approximation"
            // is no information at all.
            ("(no data)", Span::ZERO)
        };

        let err = if approx.is_zero() {
            "n/a".to_string()
        } else {
            format!("{:+.1}%", (approx.ratio(actual_time) - 1.0) * 100.0)
        };
        println!(
            "{:<22} {:>8} {:>9.2}x {:>12} {:>14}",
            scope.name,
            measured.trace.len(),
            slowdown,
            model,
            err
        );
    }

    println!(
        "\nThe last row intrudes the most and approximates the best: the extra \
         synchronization events buy the analysis its accuracy (paper §5.2)."
    );
}
