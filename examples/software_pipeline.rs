//! Beyond the case study: dependence distance and multi-variable
//! synchronization.
//!
//! ```text
//! cargo run --release --example software_pipeline
//! ```
//!
//! The paper's three loops are all distance-1, single-variable
//! DOACROSSes. The machinery is general (§4.2's semantics allow any
//! constant distance and any number of variables); this example shows
//! both knobs:
//!
//! 1. a distance sweep — larger dependence distances overlap more
//!    iterations, so actual time falls while the analysis stays exact;
//! 2. a two-variable body — a software pipeline where each iteration
//!    waits for two different predecessors.

use ppa::experiments::experiment_config;
use ppa::prelude::*;

fn distance_workload(d: u64) -> Program {
    let mut b = ProgramBuilder::new(format!("distance-{d}"));
    let v = b.sync_var();
    b.doacross(d, 512, |body| {
        body.compute("head", 300)
            .await_var(v, -(d as i64))
            .compute("cs", 400)
            .advance(v)
    })
    .build()
    .expect("valid")
}

fn two_variable_workload() -> Program {
    let mut b = ProgramBuilder::new("two-vars");
    let flow = b.sync_var(); // distance-1 state chain
    let anti = b.sync_var(); // distance-3 buffer reuse
    b.doacross(1, 256, |body| {
        body.compute("produce", 700)
            .await_var(flow, -1)
            .await_var(anti, -3)
            .compute("update", 150)
            .advance(flow)
            .advance(anti)
            .compute("consume", 250)
    })
    .build()
    .expect("valid")
}

fn main() {
    let cfg = experiment_config();
    let plan = InstrumentationPlan::full_with_sync();

    println!("dependence-distance sweep (512 iterations, cs 400ns):");
    println!(
        "{:<10} {:>14} {:>10} {:>12}",
        "distance", "actual", "slowdown", "approx err"
    );
    for d in [1u64, 2, 4, 8] {
        let program = distance_workload(d);
        let actual = run_actual(&program, &cfg).expect("valid");
        let measured = run_measured(&program, &plan, &cfg).expect("valid");
        let approx = event_based(&measured.trace, &cfg.overheads).expect("feasible");
        println!(
            "{:<10} {:>14} {:>9.2}x {:>+11.2}%",
            d,
            actual.trace.total_time().to_string(),
            measured.trace.total_time().ratio(actual.trace.total_time()),
            (approx.total_time().ratio(actual.trace.total_time()) - 1.0) * 100.0
        );
    }

    println!("\ntwo-variable pipeline (flow distance 1, anti distance 3):");
    let program = two_variable_workload();
    let actual = run_actual(&program, &cfg).expect("valid");
    let measured = run_measured(&program, &plan, &cfg).expect("valid");
    let approx = event_based(&measured.trace, &cfg.overheads).expect("feasible");
    println!("  actual:       {}", actual.trace.total_time());
    println!(
        "  measured:     {} ({:.2}x, {} sync events)",
        measured.trace.total_time(),
        measured.trace.total_time().ratio(actual.trace.total_time()),
        measured.trace.sync_event_count()
    );
    println!(
        "  approximated: {} ({:+.2}% error)",
        approx.total_time(),
        (approx.total_time().ratio(actual.trace.total_time()) - 1.0) * 100.0
    );

    // Waiting split by variable in the approximated execution.
    let mut per_var: std::collections::BTreeMap<ppa::trace::SyncVarId, ppa::trace::Span> =
        Default::default();
    for a in &approx.awaits {
        *per_var.entry(a.var).or_default() += a.wait;
    }
    println!("  approximated waiting by variable:");
    for (var, wait) in per_var {
        println!("    {var}: {wait}");
    }
}
