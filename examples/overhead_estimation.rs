//! Estimating instrumentation overheads from calibration runs.
//!
//! ```text
//! cargo run --release --example overhead_estimation
//! ```
//!
//! Perturbation analysis takes measured overheads as input; the paper
//! determined them in vitro (§2). This example closes the loop entirely
//! inside the toolkit: run a calibration workload twice (uninstrumented
//! and instrumented), *estimate* the per-event-kind overheads from the
//! trace pair, then analyze an unrelated workload with the estimated spec
//! and show the approximation is as good as with the true one.

use ppa::analysis::{estimate_overheads, event_based};
use ppa::experiments::experiment_config;
use ppa::prelude::*;

fn calibration_program() -> Program {
    let mut b = ProgramBuilder::new("calibration");
    let v = b.sync_var();
    b.doacross(1, 256, |body| {
        body.compute("head", 40_000)
            .await_var(v, -1)
            .compute_unobservable("cs", 60)
            .advance(v)
    })
    .build()
    .expect("valid")
}

fn main() {
    let cfg = experiment_config();

    // 1. Calibrate: trace pair of a wait-free workload.
    let cal = calibration_program();
    let cal_actual = run_actual(&cal, &cfg).expect("valid");
    let cal_measured =
        run_measured(&cal, &InstrumentationPlan::full_with_sync(), &cfg).expect("valid");
    let estimate = estimate_overheads(&cal_actual.trace, &cal_measured.trace, &cfg.overheads);

    println!(
        "estimated overheads from {} calibration events:",
        cal_measured.trace.len()
    );
    for k in &estimate.kinds {
        println!(
            "  {:<9} {:>10}   ({} samples, spread {} .. {})",
            k.kind,
            k.median.to_string(),
            k.samples,
            k.min,
            k.max
        );
    }

    // 2. Apply to a different workload: Livermore loop 17.
    let target = ppa::lfk::doacross_graph(17).expect("loop 17");
    let actual = run_actual(&target, &cfg).expect("valid");
    let measured =
        run_measured(&target, &InstrumentationPlan::full_with_sync(), &cfg).expect("valid");

    let with_true = event_based(&measured.trace, &cfg.overheads).expect("feasible");
    let with_estimated = event_based(&measured.trace, &estimate.spec).expect("feasible");

    let actual_total = actual.trace.total_time();
    println!("\nloop 17 totals:");
    println!("  actual:                    {actual_total}");
    println!(
        "  measured:                  {} ({:.2}x)",
        measured.trace.total_time(),
        measured.trace.total_time().ratio(actual_total)
    );
    println!(
        "  approx (true overheads):   {} ({:+.2}%)",
        with_true.total_time(),
        (with_true.total_time().ratio(actual_total) - 1.0) * 100.0
    );
    println!(
        "  approx (estimated):        {} ({:+.2}%)",
        with_estimated.total_time(),
        (with_estimated.total_time().ratio(actual_total) - 1.0) * 100.0
    );

    let err = (with_estimated.total_time().ratio(actual_total) - 1.0).abs();
    assert!(err < 0.05, "estimated-spec analysis drifted: {err}");
    println!(
        "\nestimated-spec analysis is within {:.2}% of actual.",
        err * 100.0
    );
}
