//! Trace plumbing: generate, serialize, reload, validate, and inspect a
//! measured trace — plus what happens when a trace is corrupted.
//!
//! ```text
//! cargo run --release --example trace_explorer
//! ```

use ppa::experiments::experiment_config;
use ppa::prelude::*;
use ppa::trace::{read_jsonl, write_csv, write_jsonl};

fn main() {
    let cfg = experiment_config();
    let program = ppa::lfk::doacross_graph(3).expect("loop 3 exists");
    let measured = run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg)
        .expect("simulation succeeds");
    let trace = measured.trace;

    println!(
        "measured trace: {} events over {}",
        trace.len(),
        trace.total_time()
    );
    println!(
        "processors: {:?}",
        trace.processors().iter().map(|p| p.0).collect::<Vec<_>>()
    );
    println!("sync events: {}", trace.sync_event_count());

    // Event-kind census.
    let mut census: std::collections::BTreeMap<&'static str, usize> = Default::default();
    for e in trace.iter() {
        *census.entry(e.kind.mnemonic()).or_default() += 1;
    }
    println!("\nevent census:");
    for (kind, count) in &census {
        println!("  {kind:<9} {count}");
    }

    // Round-trip through JSONL.
    let dir = std::env::temp_dir();
    let jsonl_path = dir.join("ppa_trace_explorer.jsonl");
    let csv_path = dir.join("ppa_trace_explorer.csv");
    write_jsonl(
        &trace,
        std::fs::File::create(&jsonl_path).expect("create file"),
    )
    .expect("write jsonl");
    write_csv(
        &trace,
        std::fs::File::create(&csv_path).expect("create file"),
    )
    .expect("write csv");
    let reloaded =
        read_jsonl(std::fs::File::open(&jsonl_path).expect("open file")).expect("read jsonl");
    assert_eq!(trace, reloaded, "JSONL round-trip is lossless");
    println!(
        "\nwrote {} and {}",
        jsonl_path.display(),
        csv_path.display()
    );

    // Validation: the real trace pairs cleanly...
    let index = pair_sync_events(&trace).expect("measured traces are feasible");
    println!(
        "\nsync pairing: {} awaits, {} advances, {} barrier episodes",
        index.awaits.len(),
        index.advances.len(),
        index.barriers.len()
    );
    let waited_in_measurement = index
        .awaits
        .iter()
        .filter(|p| {
            // In the measured trace an await "looked like" it waited when
            // awaitE trails awaitB by more than the instrumentation cost.
            let b = trace.events()[p.begin].time;
            let e = trace.events()[p.end].time;
            (e - b) > cfg.overheads.await_end_instr + cfg.overheads.s_nowait
        })
        .count();
    println!("awaits that (apparently) waited in the measurement: {waited_in_measurement}");

    // ... and a corrupted one does not.
    let mut events: Vec<Event> = trace.events().to_vec();
    events.retain(|e| !matches!(e.kind, EventKind::Advance { tag, .. } if tag.0 == 5));
    let corrupted = Trace::from_events(TraceKind::Measured, events);
    match pair_sync_events(&corrupted) {
        Err(err) => println!("\ncorrupted trace correctly rejected: {err}"),
        Ok(_) => unreachable!("a missing advance must be detected"),
    }

    // The analysis sees the same truth through the error type.
    match event_based(&corrupted, &cfg.overheads) {
        Err(AnalysisError::Trace(err)) => {
            println!("event-based analysis rejected it too: {err}")
        }
        other => unreachable!("expected trace error, got {other:?}"),
    }
}
