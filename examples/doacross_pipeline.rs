//! The full loop-17 analysis pipeline (Tables 2–3, Figures 4–5 of the
//! paper) in one program, showing how the pieces compose:
//!
//! ```text
//! cargo run --release --example doacross_pipeline
//! ```
//!
//! simulate actual → simulate measured → event-based analysis →
//! waiting table → timeline → parallelism profile, with each product
//! compared against the simulator's ground truth.

use ppa::experiments::experiment_config;
use ppa::metrics::{
    build_timeline, format_waiting_table, parallelism_profile, render_parallelism, render_timeline,
    waiting_table,
};
use ppa::prelude::*;

fn main() {
    let cfg = experiment_config();
    let program = ppa::lfk::doacross_graph(17).expect("loop 17 exists");

    let actual = run_actual(&program, &cfg).expect("simulation succeeds");
    let measured = run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg)
        .expect("simulation succeeds");
    let analysis = event_based(&measured.trace, &cfg.overheads).expect("trace is feasible");

    println!("Livermore loop 17, implicit conditional computation");
    println!("----------------------------------------------------");
    println!("actual:       {}", actual.trace.total_time());
    println!(
        "measured:     {}  ({:.2}x)",
        measured.trace.total_time(),
        measured.trace.total_time().ratio(actual.trace.total_time())
    );
    println!(
        "approximated: {}  ({:+.2}% error)",
        analysis.total_time(),
        (analysis.total_time().ratio(actual.trace.total_time()) - 1.0) * 100.0
    );

    // Table 3: per-processor waiting of the approximated execution.
    let table = waiting_table(&analysis, cfg.processors);
    println!(
        "\n{}",
        format_waiting_table("per-processor DOACROSS waiting", &table)
    );

    // Ground truth comparison the paper could not make.
    let truth = &actual.stats.loops[0];
    let total = actual.trace.total_time();
    print!("ground truth: ");
    for ps in &truth.per_proc {
        print!(" {:>7.2}%", 100.0 * ps.sync_wait.ratio(total));
    }
    println!();

    // Figure 4: waiting timeline.
    let timeline = build_timeline(&analysis, cfg.processors);
    println!("\napproximated waiting behavior ('#' active, '.' waiting):");
    println!("{}", render_timeline(&timeline, 80));

    // Figure 5: parallelism profile.
    let profile = parallelism_profile(&timeline);
    let window = (
        analysis
            .trace
            .iter()
            .find(|e| matches!(e.kind, EventKind::LoopBegin { .. }))
            .map(|e| e.time)
            .unwrap_or(Time::ZERO),
        analysis
            .trace
            .events()
            .iter()
            .rev()
            .find(|e| matches!(e.kind, EventKind::LoopEnd { .. }))
            .map(|e| e.time)
            .unwrap_or(Time::ZERO),
    );
    println!(
        "parallelism over time (avg over loop: {:.1}, peak {}):",
        profile.average(window.0, window.1),
        profile.peak()
    );
    println!("{}", render_parallelism(&profile, 80, cfg.processors));
}
