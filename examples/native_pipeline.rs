//! The native (real-thread) pipeline: calibrate, measure, analyze —
//! on actual OS threads with real clocks, where the "actual" time is
//! itself a noisy measurement.
//!
//! ```text
//! cargo run --release --example native_pipeline
//! ```
//!
//! Also demonstrates the *real* Livermore loop 3: an inner product whose
//! accumulation is ordered across threads by an advance/await chain, and
//! whose result is bit-identical to the sequential kernel.

use ppa::lfk::data::fill;
use ppa::lfk::kernels::k03_with;
use ppa::native::{doacross_inner_product, native_pipeline_demo};

fn main() {
    println!("== native measure -> analyze -> compare ==\n");
    match native_pipeline_demo() {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("pipeline failed: {e}");
            std::process::exit(1);
        }
    }

    println!("== ordered DOACROSS reduction across thread counts ==\n");
    let n = 100_000;
    let z = fill(n, 301, 1.0);
    let x = fill(n, 302, 1.0);
    let reference = k03_with(&z, &x);
    println!("sequential inner product: {reference:.12}");
    for threads in [1, 2, 4, 8] {
        let start = std::time::Instant::now();
        let value = doacross_inner_product(&z, &x, threads);
        let elapsed = start.elapsed();
        let identical = value.to_bits() == reference.to_bits();
        println!(
            "{threads} thread(s): {value:.12}  [{}] in {elapsed:?}",
            if identical {
                "bit-identical"
            } else {
                "MISMATCH"
            }
        );
        assert!(
            identical,
            "DOACROSS ordering must reproduce sequential addition order"
        );
    }
}
